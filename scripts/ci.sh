#!/usr/bin/env bash
# CI entry point: build, test, format, lint.
#
# The full pipeline needs the crates.io registry (dev-dependencies:
# proptest / criterion / serde_json). On an offline machine `cargo` cannot
# even compute the lockfile, so we probe first and fall back to
# scripts/offline_check.sh, which builds and tests the internal
# (registry-free) dependency chain with bare rustc.
set -euo pipefail
cd "$(dirname "$0")/.."

probe_registry() {
    # `cargo metadata` resolves the dependency graph; it fails fast when the
    # registry is unreachable and no lockfile/cache can satisfy it.
    cargo metadata --format-version 1 >/dev/null 2>&1
}

if ! probe_registry; then
    echo "ci.sh: crates.io registry unavailable — running offline checks only" >&2
    exec "$(dirname "$0")/offline_check.sh"
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> jinjing lint (examples/data fixtures)"
# Static analysis over the shipped example specs: warnings/notes are
# expected (the running example is deliberately broken), but any
# error-severity finding — or a failure to parse the fixtures at all —
# fails CI (`lint` exits 4 on errors, 1 on bad input).
cargo run --release -p jinjing-cli --bin jinjing -- lint \
    --network examples/data/figure1-network.json \
    --acls examples/data/figure1-acls.json \
    --intent examples/data/running-example.lai \
    --format json >/dev/null

echo "==> parallel-scaling smoke (small WAN) — regenerates BENCH_check.json"
# The scaling harness itself asserts byte-identical check reports across
# 1/2/4/8 threads and cold/warm caches; the smoke step additionally
# verifies the emitted artifact is strict JSON with a non-zero warm cache
# hit rate.
cargo run --release -p jinjing-bench --bin figures -- par --small \
    --bench-out BENCH_check.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_check.json"))
assert d["benchmark"] == "check" and d["network"] == "small", d
assert any(r["warm"]["cache_hit_rate"] > 0 for r in d["runs"]), "no cache hits"
print(f"BENCH_check.json: {len(d['runs'])} runs, warm hit rate "
      f"{max(r['warm']['cache_hit_rate'] for r in d['runs']):.2f}")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_check.json probe" >&2
fi

echo "==> incremental-replay smoke (small WAN) — regenerates BENCH_incr.json"
# The replay itself asserts every session re-check byte-identical to a cold
# per-step check; the smoke step additionally verifies the artifact is
# strict JSON and that the headline claim holds: the session solved far
# fewer (class, path) pairs than the cold per-step ceiling.
cargo run --release -p jinjing-bench --bin figures -- incr --small \
    --bench-out BENCH_incr.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_incr.json"))
assert d["benchmark"] == "incr" and d["network"] == "small", d
assert d["dirty_pairs_total"] * 2 < d["pairs_ceiling_total"], \
    f"incremental pruning regressed: {d['dirty_pairs_total']} dirty vs ceiling {d['pairs_ceiling_total']}"
print(f"BENCH_incr.json: {d['steps']} steps, {d['dirty_pairs_total']} dirty pairs "
      f"vs ceiling {d['pairs_ceiling_total']}, speedup {d['speedup']}x")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_incr.json probe" >&2
fi

echo "==> cargo fmt --all --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "ci.sh: rustfmt not installed — skipping format check" >&2
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "ci.sh: clippy not installed — skipping lint" >&2
fi

echo "ci.sh: all checks passed"
