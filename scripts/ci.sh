#!/usr/bin/env bash
# CI entry point: build, test, format, lint.
#
# The full pipeline needs the crates.io registry (dev-dependencies:
# proptest / criterion / serde_json). On an offline machine `cargo` cannot
# even compute the lockfile, so we probe first and fall back to
# scripts/offline_check.sh, which builds and tests the internal
# (registry-free) dependency chain with bare rustc.
set -euo pipefail
cd "$(dirname "$0")/.."

probe_registry() {
    # `cargo metadata` resolves the dependency graph; it fails fast when the
    # registry is unreachable and no lockfile/cache can satisfy it.
    cargo metadata --format-version 1 >/dev/null 2>&1
}

if ! probe_registry; then
    echo "ci.sh: crates.io registry unavailable — running offline checks only" >&2
    exec "$(dirname "$0")/offline_check.sh"
fi

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> jinjing lint (examples/data fixtures)"
# Static analysis over the shipped example specs: warnings/notes are
# expected (the running example is deliberately broken), but any
# error-severity finding — or a failure to parse the fixtures at all —
# fails CI (`lint` exits 4 on errors, 1 on bad input).
cargo run --release -p jinjing-cli --bin jinjing -- lint \
    --network examples/data/figure1-network.json \
    --acls examples/data/figure1-acls.json \
    --intent examples/data/running-example.lai \
    --format json >/dev/null

echo "==> jinjing lint --intent tenant=FILE (cross-tenant examples)"
# The disjoint pair is clean: gating on JL301 must still exit 0.
cargo run --release -p jinjing-cli --bin jinjing -- lint \
    --network examples/data/figure1-network.json \
    --acls examples/data/figure1-acls.json \
    --intent alpha=examples/data/tenant-alpha.lai \
    --intent gamma=examples/data/tenant-gamma.lai \
    --deny JL301 --format json >/dev/null
# The conflicting pair carries a solver-certified JL301: denying the
# JL3xx family must gate with exit 4 (any other exit fails CI).
rc=0
cargo run --release -p jinjing-cli --bin jinjing -- lint \
    --network examples/data/figure1-network.json \
    --acls examples/data/figure1-acls.json \
    --intent alpha=examples/data/tenant-alpha.lai \
    --intent beta=examples/data/tenant-beta.lai \
    --priority alpha,beta \
    --deny 'JL3*' --format sarif >/dev/null || rc=$?
if [ "$rc" -ne 4 ]; then
    echo "ci.sh: expected the conflicting tenant pair to gate with exit 4, got $rc" >&2
    exit 1
fi

echo "==> parallel-scaling smoke (small WAN) — regenerates BENCH_check.json"
# The scaling harness itself asserts byte-identical check reports across
# 1/2/4/8 threads and cold/warm caches; the smoke step additionally
# verifies the emitted artifact is strict JSON with a non-zero warm cache
# hit rate.
cargo run --release -p jinjing-bench --bin figures -- par --small \
    --bench-out BENCH_check.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_check.json"))
assert d["benchmark"] == "check" and d["network"] == "small", d
assert any(r["warm"]["cache_hit_rate"] > 0 for r in d["runs"]), "no cache hits"
print(f"BENCH_check.json: {len(d['runs'])} runs, warm hit rate "
      f"{max(r['warm']['cache_hit_rate'] for r in d['runs']):.2f}")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_check.json probe" >&2
fi

echo "==> incremental-replay smoke (small WAN) — regenerates BENCH_incr.json"
# The replay itself asserts every session re-check byte-identical to a cold
# per-step check; the smoke step additionally verifies the artifact is
# strict JSON and that the headline claim holds: the session solved far
# fewer (class, path) pairs than the cold per-step ceiling.
cargo run --release -p jinjing-bench --bin figures -- incr --small \
    --bench-out BENCH_incr.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_incr.json"))
assert d["benchmark"] == "incr" and d["network"] == "small", d
assert d["dirty_pairs_total"] * 2 < d["pairs_ceiling_total"], \
    f"incremental pruning regressed: {d['dirty_pairs_total']} dirty vs ceiling {d['pairs_ceiling_total']}"
print(f"BENCH_incr.json: {d['steps']} steps, {d['dirty_pairs_total']} dirty pairs "
      f"vs ceiling {d['pairs_ceiling_total']}, speedup {d['speedup']}x")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_incr.json probe" >&2
fi

echo "==> rollout-plan smoke (certified update sequencing)"
# The committed relocation target is feasible but order-sensitive
# (A:3-out must tighten before C:1 clears): `plan` must exit 0 and emit
# one wave certificate per wave, with every decomposed step scheduled.
plan_dir="$(mktemp -d)"
cargo run --release -q -p jinjing-cli --bin jinjing -- plan \
    --network examples/data/figure1-network.json \
    --acls examples/data/figure1-acls.json \
    --intent examples/data/rollout-scope.lai \
    --target examples/data/rollout-target.deltas \
    --format json >"$plan_dir/plan.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$plan_dir/plan.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["command"] == "plan" and not d["core"], d
assert len(d["certificates"]) == len(d["waves"]) >= 1, d
scheduled = sorted(dev for wave in d["waves"] for dev in wave)
assert scheduled == sorted(s["device"] for s in d["steps"]), d
assert all(c["commuting"] for c in d["certificates"]), d
print(f"plan.json: {len(d['steps'])} steps in {len(d['waves'])} waves, "
      f"all certificates commuting")
EOF
else
    grep -q '"command":"plan"' "$plan_dir/plan.json"
fi
# The impossible target (clear D:2 leaks traffic 1/2 in any order) must
# gate with exit 3 and name the infeasibility core.
rc=0
cargo run --release -q -p jinjing-cli --bin jinjing -- plan \
    --network examples/data/figure1-network.json \
    --acls examples/data/figure1-acls.json \
    --intent examples/data/rollout-scope.lai \
    --target examples/data/rollout-impossible.deltas \
    --format json >"$plan_dir/impossible.json" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "ci.sh: expected the impossible rollout to exit 3, got $rc" >&2
    exit 1
fi
grep -q '"core":\["D"\]' "$plan_dir/impossible.json"
rm -rf "$plan_dir"

echo "==> rollout-synthesis smoke (small WAN) — regenerates BENCH_plan.json"
# The generator itself cold-replays every certified prefix state; the
# smoke step additionally verifies the artifact's shape and the headline
# claim: the planner's probe work stays well under the cold per-prefix
# ceiling, and every wave in a feasible scenario carries a certificate.
cargo run --release -p jinjing-bench --bin figures -- plan \
    --bench-out BENCH_plan.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_plan.json"))
assert d["benchmark"] == "plan" and d["network"] == "small", d
assert d["dirty_pairs_total"] * 2 <= d["pairs_ceiling_total"], \
    f"plan probe pruning regressed: {d['dirty_pairs_total']} dirty vs ceiling {d['pairs_ceiling_total']}"
for s in d["scenarios"]:
    if s["feasible"]:
        assert s["certificates"] == s["waves"] >= 1, s
    else:
        assert s["core"] >= 1 and s["waves"] == 0, s
assert any(not s["feasible"] for s in d["scenarios"]), "no infeasible scenario"
print(f"BENCH_plan.json: {d['steps']} steps over {len(d['scenarios'])} scenarios, "
      f"{d['dirty_pairs_total']} dirty pairs vs ceiling {d['pairs_ceiling_total']}")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_plan.json probe" >&2
fi

echo "==> daemon smoke (serve ⇄ call round trip, threads 1 and 4)"
# Boot the verification daemon on an ephemeral port, drive it with the
# `jinjing call` thin client — a check (exit 3: the running example is
# inconsistent), a session open → rejected delta (exit 3) → delete, a live
# /metrics scrape — then drain it with /v1/shutdown and require a clean
# exit. Once single-threaded, once with a 4-wide engine: the wire bytes
# and exit codes must not care.
serve_smoke() {
    local threads="$1" dir pid addr sid rc
    dir="$(mktemp -d)"
    printf 'step open-d2\nset D:2 default permit\n' >"$dir/edit.deltas"
    JINJING_THREADS="$threads" cargo run --release -p jinjing-cli --bin jinjing -- serve \
        --network examples/data/figure1-network.json \
        --acls examples/data/figure1-acls.json \
        --addr 127.0.0.1:0 --port-file "$dir/port" >"$dir/serve.log" 2>&1 &
    pid=$!
    for _ in $(seq 1 100); do [ -s "$dir/port" ] && break; sleep 0.1; done
    [ -s "$dir/port" ] || { cat "$dir/serve.log" >&2; return 1; }
    addr="$(cat "$dir/port")"
    jj() { cargo run --release -q -p jinjing-cli --bin jinjing -- call --addr "$addr" "$@"; }

    rc=0
    jj --path /v1/check --body-file examples/data/running-example.lai \
        >"$dir/check.json" || rc=$?
    [ "$rc" -eq 3 ] || { echo "expected exit 3 from /v1/check, got $rc" >&2; return 1; }
    grep -q '"verdict":"inconsistent' "$dir/check.json"

    jj --path /v1/sessions --body-file examples/data/running-example.lai >"$dir/open.json"
    sid="$(sed -n 's/.*"id":"\(s[0-9]*\)".*/\1/p' "$dir/open.json")"
    [ -n "$sid" ] || { echo "no session id in $(cat "$dir/open.json")" >&2; return 1; }
    rc=0
    jj --path "/v1/sessions/$sid/delta" --body-file "$dir/edit.deltas" \
        >"$dir/delta.json" || rc=$?
    [ "$rc" -eq 3 ] || { echo "expected exit 3 from a rejected delta, got $rc" >&2; return 1; }
    grep -q '"rejected":1' "$dir/delta.json"
    jj --method DELETE --path "/v1/sessions/$sid" >/dev/null

    jj --method GET --path /metrics >"$dir/metrics.txt"
    grep -q '^jinjing_serve_requests_total ' "$dir/metrics.txt"
    grep -q '^jinjing_serve_deltas_rejected 1' "$dir/metrics.txt"

    jj --path /v1/shutdown >/dev/null
    wait "$pid" || { echo "daemon exited non-zero after drain" >&2; return 1; }
    rm -rf "$dir"
}
serve_smoke 1
serve_smoke 4

echo "==> serve-throughput smoke — regenerates BENCH_serve.json"
# The harness itself asserts every HTTP response body byte-identical to
# the in-process rendering; the smoke step verifies the artifact's shape
# and that nothing was shed at the bench's queue depth.
cargo run --release -p jinjing-bench --bin figures -- serve \
    --bench-out BENCH_serve.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_serve.json"))
assert d["benchmark"] == "serve" and d["bodies_identical"] is True, d
assert d["requests"] == d["clients"] * 25 and d["shed"] == 0, d
print(f"BENCH_serve.json: {d['requests']} requests over {d['clients']} clients, "
      f"p50 {d['p50_us']}us, {d['throughput_rps']} req/s")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_serve.json probe" >&2
fi

echo "==> shard smoke (coordinator + 2 backends: byte-parity + streaming)"
# Boot two stock jinjing-serve backends and a jinjing-shard coordinator
# fronting them, then require (a) the coordinator's /v1/check and /v1/lint
# bodies byte-identical to a lone daemon's (the byte-identity merge
# contract, over real sockets), (b) the thin client's --shards lint
# fan-out rendering the same bytes, and (c) the chunked streaming form
# emitting per-shard progress docs before an identical final chunk.
shard_smoke() {
    local dir bpid1 bpid2 cpid addr1 caddr rc
    dir="$(mktemp -d)"
    for i in 1 2; do
        cargo run --release -q -p jinjing-cli --bin jinjing -- serve \
            --network examples/data/figure1-network.json \
            --acls examples/data/figure1-acls.json \
            --addr 127.0.0.1:0 --port-file "$dir/b$i.port" >"$dir/b$i.log" 2>&1 &
        eval "bpid$i=\$!"
    done
    for _ in $(seq 1 100); do [ -s "$dir/b1.port" ] && [ -s "$dir/b2.port" ] && break; sleep 0.1; done
    [ -s "$dir/b1.port" ] && [ -s "$dir/b2.port" ] || { cat "$dir"/b*.log >&2; return 1; }
    addr1="$(cat "$dir/b1.port")"
    cargo run --release -q -p jinjing-cli --bin jinjing -- shard \
        --network examples/data/figure1-network.json \
        --acls examples/data/figure1-acls.json \
        --backends "$(cat "$dir/b1.port"),$(cat "$dir/b2.port")" \
        --addr 127.0.0.1:0 --port-file "$dir/coord.port" >"$dir/coord.log" 2>&1 &
    cpid=$!
    for _ in $(seq 1 100); do [ -s "$dir/coord.port" ] && break; sleep 0.1; done
    [ -s "$dir/coord.port" ] || { cat "$dir/coord.log" >&2; return 1; }
    caddr="$(cat "$dir/coord.port")"
    jj() { cargo run --release -q -p jinjing-cli --bin jinjing -- call "$@"; }

    # Byte-parity: coordinator vs lone daemon, both gating with exit 3.
    rc=0
    jj --addr "$caddr" --path /v1/check \
        --body-file examples/data/running-example.lai >"$dir/coord-check.json" || rc=$?
    [ "$rc" -eq 3 ] || { echo "expected exit 3 from the sharded check, got $rc" >&2; return 1; }
    rc=0
    jj --addr "$addr1" --path /v1/check \
        --body-file examples/data/running-example.lai >"$dir/solo-check.json" || rc=$?
    [ "$rc" -eq 3 ] || { echo "expected exit 3 from the lone daemon, got $rc" >&2; return 1; }
    cmp "$dir/coord-check.json" "$dir/solo-check.json" \
        || { echo "sharded check drifted from the single-process bytes" >&2; return 1; }

    jj --addr "$caddr" --path /v1/lint \
        --body-file examples/data/running-example.lai >"$dir/coord-lint.json"
    jj --addr "$addr1" --path /v1/lint \
        --body-file examples/data/running-example.lai >"$dir/solo-lint.json"
    cmp "$dir/coord-lint.json" "$dir/solo-lint.json" \
        || { echo "sharded lint drifted from the single-process bytes" >&2; return 1; }

    # The thin client's own lint fan-out renders the same bytes too.
    jj --shards "$(cat "$dir/b1.port"),$(cat "$dir/b2.port")" --path /v1/lint \
        --body-file examples/data/running-example.lai >"$dir/client-lint.json"
    cmp "$dir/client-lint.json" "$dir/solo-lint.json" \
        || { echo "call --shards lint drifted from the single-process bytes" >&2; return 1; }

    # Streaming probe: chunked transfer, >=2 progress docs, final chunk
    # byte-identical to the plain response.
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$caddr" examples/data/running-example.lai "$dir/coord-check.json" <<'EOF'
import http.client, sys
addr, intent_path, plain_path = sys.argv[1:4]
body = open(intent_path, "rb").read()
conn = http.client.HTTPConnection(addr, timeout=60)
conn.request("POST", "/v1/check", body, {"X-Jinjing-Stream": "1"})
resp = conn.getresponse()
assert resp.status == 200, resp.status
assert resp.getheader("Transfer-Encoding") == "chunked", resp.getheaders()
assert resp.getheader("X-Jinjing-Exit") is None, "streamed responses carry no exit header"
data = resp.read()
conn.close()
plain = open(plain_path, "rb").read()
assert data.endswith(plain), "final streamed bytes != plain response"
progress = data[: len(data) - len(plain)].decode()
docs = [l for l in progress.splitlines() if l.strip()]
assert len(docs) >= 2, f"want a progress doc per shard, got {docs!r}"
assert all('"shards":2' in d for d in docs), docs
print(f"shard streaming: {len(docs)} progress docs, final chunk identical")
EOF
    else
        echo "ci.sh: python3 not installed — skipping the streaming probe" >&2
    fi

    jj --addr "$caddr" --path /v1/shutdown >/dev/null
    wait "$cpid" || { echo "coordinator exited non-zero after drain" >&2; return 1; }
    for i in 1 2; do
        jj --addr "$(cat "$dir/b$i.port")" --path /v1/shutdown >/dev/null
    done
    wait "$bpid1" "$bpid2" || { echo "a backend exited non-zero after drain" >&2; return 1; }
    rm -rf "$dir"
}
shard_smoke

echo "==> shard-partition smoke (small WAN) — regenerates BENCH_shard.json"
# The harness itself asserts the consistent-hash partition exact (dirty
# pairs and solver queries sum to the unsharded totals at every width);
# the smoke step verifies the artifact's shape and the zero-duplication
# headline.
cargo run --release -p jinjing-bench --bin figures -- shard \
    --bench-out BENCH_shard.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_shard.json"))
assert d["benchmark"] == "shard" and d["network"] == "small", d
assert d["partition_exact"] is True, d
base = d["baseline"]
for w in d["widths"]:
    assert w["dirty_pairs_sum"] == base["dirty_pairs"], w
    assert w["queries_sum"] == base["queries"], w
assert [w["shards"] for w in d["widths"]] == [1, 2, 4, 8], d
print(f"BENCH_shard.json: {base['dirty_pairs']} pairs / {base['queries']} queries "
      f"partitioned exactly at widths 1/2/4/8")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_shard.json probe" >&2
fi

echo "==> warm-solver smoke (medium WAN) — regenerates BENCH_solve.json"
# The microbench itself asserts warm verdicts identical to cold rebuilds
# and the fix search's solver constructions strictly below the per-k cold
# loop; the smoke step verifies the artifact's shape and the headline
# ≥2x warm-over-cold claim. Medium (the default size) on purpose: the
# committed baseline is medium, unlike the small check/incr artifacts.
cargo run --release -p jinjing-bench --bin figures -- solve \
    --bench-out BENCH_solve.json >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
d = json.load(open("BENCH_solve.json"))
assert d["benchmark"] == "solve" and d["network"] == "medium", d
assert d["speedup"] >= 2.0, f"warm speedup below 2x: {d['speedup']}"
assert d["fix"]["ascend"]["builders"] < d["fix"]["cold_loop_builders"], \
    f"fix no longer beats the per-k cold loop: {d['fix']}"
print(f"BENCH_solve.json: {d['queries']} queries over {d['chains']} chains, "
      f"warm speedup {d['speedup']}x, fix builders "
      f"{d['fix']['ascend']['builders']} vs cold loop {d['fix']['cold_loop_builders']}")
EOF
else
    echo "ci.sh: python3 not installed — skipping BENCH_solve.json probe" >&2
fi

echo "==> perf regression gate (vs committed BENCH_*.json)"
# Compare this run's regenerated bench artifacts against the committed
# baselines (read back out of git — the working-tree copies were just
# overwritten above). >25% slower fails CI; locally (CI unset, no
# --strict) it only warns, because laptops are noisy.
if command -v python3 >/dev/null 2>&1; then
    python3 scripts/perf_gate.py
else
    echo "ci.sh: python3 not installed — skipping perf gate" >&2
fi

echo "==> cargo fmt --all --check"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "ci.sh: rustfmt not installed — skipping format check" >&2
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "ci.sh: clippy not installed — skipping lint" >&2
fi

echo "ci.sh: all checks passed"
