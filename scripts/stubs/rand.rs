//! Registry-free build stub for the `rand` facade.
//!
//! `scripts/offline_check.sh` compiles this as `--crate-name rand` on
//! machines without crates.io access, so the synthetic-WAN layers
//! (`jinjing-wan`, `jinjing-bench`) build and run offline. It provides
//! exactly the surface those crates use — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `RngExt::{random, random_range}` — over
//! a splitmix64 core: deterministic per seed and statistically fine for
//! workload generation, but **not** the real `rand` crate (different
//! streams, no cryptographic claims). The online build (`cargo`) never
//! sees this file.

#![forbid(unsafe_code)]

/// Concrete generators.
pub mod rngs {
    /// Splitmix64 stand-in for `rand::rngs::StdRng`.
    pub struct StdRng(pub(crate) u64);

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding, as the real crate spells it.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng(state ^ 0xD6E8_FEB8_6659_FD93)
    }
}

/// Types producible by `RngExt::random`.
pub trait Random: Sized {
    /// Map one uniform 64-bit draw onto `Self`.
    fn from_u64(v: u64) -> Self;
}

impl Random for f64 {
    fn from_u64(v: u64) -> f64 {
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for bool {
    fn from_u64(v: u64) -> bool {
        v & 1 == 1
    }
}

/// Ranges samplable by `RngExt::random_range`.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range!(i32, i64, u32, u64, usize);

/// The modern `rand` method surface (`Rng` in older editions).
pub trait RngExt {
    /// `rng.random::<T>()`.
    fn random<T: Random>(&mut self) -> T;
    /// `rng.random_range(range)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for rngs::StdRng {
    fn random<T: Random>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
