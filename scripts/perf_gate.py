#!/usr/bin/env python3
"""Performance regression gate over the committed BENCH_*.json baselines.

The CI pipeline regenerates BENCH_check.json / BENCH_incr.json /
BENCH_serve.json / BENCH_solve.json / BENCH_plan.json /
BENCH_shard.json in the working tree (scripts/ci.sh),
which means the files on disk are *this run's* numbers. The honest
baseline is whatever the repository last committed, so this gate reads
the old numbers out of git (`git show <ref>:BENCH_x.json`, default ref
HEAD) and compares:

    check  -> fastest cold wall_ms across the thread sweep
    incr   -> incr_wall_ms (the session replay)
    serve  -> p99_us (untraced request latency)
    solve  -> warm_wall_ms (steady-state warm re-query pass)
    plan   -> plan_wall_ms (rollout synthesis over all campaigns)
    shard  -> shard_wall_ms (the 4-shard critical path: slowest slice)

A metric regresses when it is more than 25% slower than the baseline
(and slower by more than a small absolute epsilon, so microsecond jitter
on a near-zero metric cannot fail a build). Tracing overhead
(p99_traced_us vs p99_us) is reported informationally against a 5%
budget but never gates: the traced pass is serial while the untraced
load is concurrent, so the two distributions are not directly
comparable on a noisy machine.

Exit codes: 0 ok (or soft-fail), 1 regression under --strict (or when
the CI environment variable is set), 2 usage/input error.
"""

import json
import os
import subprocess
import sys

THRESHOLD = 1.25  # >25% slower than baseline = regression
TRACE_BUDGET = 1.05  # informational: traced p99 within 5% of untraced

# (file, metric label, extractor, absolute epsilon in the metric's unit)
GATES = [
    ("BENCH_check.json", "check cold wall_ms (best thread count)",
     lambda d: min(r["cold"]["wall_ms"] for r in d["runs"]), 1.0),
    ("BENCH_incr.json", "incr incr_wall_ms",
     lambda d: d["incr_wall_ms"], 1.0),
    ("BENCH_serve.json", "serve p99_us",
     lambda d: d["p99_us"], 1000.0),
    ("BENCH_solve.json", "solve warm_wall_ms",
     lambda d: d["warm_wall_ms"], 1.0),
    ("BENCH_plan.json", "plan plan_wall_ms",
     lambda d: d["plan_wall_ms"], 1.0),
    ("BENCH_shard.json", "shard shard_wall_ms (4-shard critical path)",
     lambda d: d["shard_wall_ms"], 1.0),
]


def committed(ref, path):
    """The baseline JSON committed at `ref`, or None if absent there."""
    try:
        out = subprocess.run(
            ["git", "show", f"{ref}:{path}"],
            capture_output=True, check=True, text=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(out)
    except json.JSONDecodeError:
        return None


def main(argv):
    strict = "--strict" in argv or os.environ.get("CI", "") != ""
    ref = "HEAD"
    if "--baseline-ref" in argv:
        i = argv.index("--baseline-ref")
        if i + 1 >= len(argv):
            print("perf_gate.py: --baseline-ref needs a git ref", file=sys.stderr)
            return 2
        ref = argv[i + 1]

    regressions = []
    for path, label, extract, epsilon in GATES:
        if not os.path.exists(path):
            print(f"perf_gate.py: {path} missing from the working tree — skipping")
            continue
        with open(path) as f:
            try:
                current = extract(json.load(f))
            except (json.JSONDecodeError, KeyError, ValueError) as e:
                print(f"perf_gate.py: {path} unreadable ({e})", file=sys.stderr)
                return 2
        base_doc = committed(ref, path)
        if base_doc is None:
            print(f"perf_gate.py: no {path} at {ref} — skipping (new baseline)")
            continue
        try:
            base = extract(base_doc)
        except (KeyError, ValueError):
            print(f"perf_gate.py: {path} at {ref} predates this metric — skipping")
            continue
        ratio = current / base if base > 0 else float("inf")
        verdict = "ok"
        if current > base * THRESHOLD and current - base > epsilon:
            verdict = "REGRESSION"
            regressions.append((label, base, current, ratio))
        print(f"perf_gate.py: {label}: baseline {base:g}, current {current:g} "
              f"({ratio:.2f}x) — {verdict}")

    # Informational tracing-overhead report (never gates; see module docs).
    if os.path.exists("BENCH_serve.json"):
        with open("BENCH_serve.json") as f:
            d = json.load(f)
        traced, plain = d.get("p99_traced_us"), d.get("p99_us")
        if traced and plain:
            ratio = traced / plain
            note = "within" if ratio <= TRACE_BUDGET else "outside"
            print(f"perf_gate.py: tracing overhead: traced p99 {traced}us vs "
                  f"untraced p99 {plain}us ({ratio:.2f}x, {note} the "
                  f"{(TRACE_BUDGET - 1) * 100:.0f}% budget; informational)")

    if regressions:
        for label, base, current, ratio in regressions:
            print(f"perf_gate.py: {label} regressed: {base:g} -> {current:g} "
                  f"({ratio:.2f}x > {THRESHOLD:.2f}x)", file=sys.stderr)
        if strict:
            return 1
        print("perf_gate.py: soft-fail (no --strict and CI unset) — not gating")
    else:
        print("perf_gate.py: no regressions beyond the "
              f"{(THRESHOLD - 1) * 100:.0f}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
