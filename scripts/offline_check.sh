#!/usr/bin/env bash
# Registry-free verification of the internal dependency chain.
#
# The workspace's external deps (proptest/criterion/serde_json/rand) only sit
# in the outer layers (property suites, benches, CLI/spec JSON). Everything
# inner — acl, obs, solver, lai, net (without the `spec` feature), core — is
# std-only, so on a machine without crates.io access we can still build and
# test the heart of the system with bare rustc:
#
#   rlibs:  acl → obs → par → {solver, lai, net} → lint → core → serve →
#           shard → cli (+ the scripts/stubs/rand.rs facade → wan → bench)
#   tests:  acl unit, obs unit, par unit, solver unit, lint unit, core unit,
#           serve unit, shard unit, cli unit (offline subset), wan unit,
#           tests/obs_integration.rs,
#           tests/lint_integration.rs, tests/lint_multi.rs,
#           tests/par_determinism.rs,
#           tests/running_example.rs, tests/wan_integration.rs,
#           tests/incr_oracle.rs (+ a JINJING_THREADS=4 re-run),
#           tests/cli_golden.rs (+ a JINJING_THREADS=4 re-run),
#           tests/serve_integration.rs (+ a JINJING_THREADS=4 re-run),
#           tests/shard_integration.rs (+ a JINJING_THREADS=4 re-run),
#           tests/trace_export.rs,
#           tests/warm_solver.rs (+ a JINJING_THREADS=4 re-run),
#           tests/plan_oracle.rs (+ a JINJING_THREADS=4 re-run)
#   bench:  the `figures` binary's `incr --small` replay, regenerating
#           BENCH_incr.json into $OUT and sanity-probing its shape, plus a
#           `figures serve` loopback daemon smoke writing BENCH_serve.json,
#           a `figures solve --small` warm-solver smoke writing
#           BENCH_solve.json, a `figures plan` rollout-synthesis smoke
#           writing BENCH_plan.json, and a `figures shard` partition smoke
#           writing BENCH_shard.json
#
# serde-dependent code (spec JSON, CLI loaders, serde_json round-trips) is
# compiled out under `--cfg jinjing_offline`; `rand` is satisfied by the
# committed splitmix64 stub in scripts/stubs/rand.rs. The full check still
# runs under `cargo test`.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-$(mktemp -d /tmp/jinjing-offline.XXXXXX)}"
mkdir -p "$OUT"
RUSTC=(rustc --edition 2021 -C opt-level=1 -L "$OUT")

rlib() { # rlib <crate_snake> <path> [--extern ...]
    local name="$1" src="$2"
    shift 2
    echo "==> rlib $name"
    "${RUSTC[@]}" --crate-type rlib --crate-name "$name" "$src" \
        -o "$OUT/lib$name.rlib" "$@"
}

tbin() { # tbin <bin_name> <src> [--extern ...]
    local name="$1" src="$2"
    shift 2
    echo "==> test $name"
    "${RUSTC[@]}" --test --crate-name "$name" "$src" -o "$OUT/$name" "$@"
    "$OUT/$name" -q
}

A="--extern jinjing_acl=$OUT/libjinjing_acl.rlib"
O="--extern jinjing_obs=$OUT/libjinjing_obs.rlib"

rlib jinjing_acl crates/acl/src/lib.rs
rlib jinjing_obs crates/obs/src/lib.rs
rlib jinjing_par crates/par/src/lib.rs
rlib jinjing_solver crates/solver/src/lib.rs $A $O
rlib jinjing_lai crates/lai/src/lib.rs $A
rlib jinjing_net crates/net/src/lib.rs $A # no --cfg feature="spec": serde-free
rlib jinjing_lint crates/lint/src/lib.rs $A $O \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" # no `spec` feature
rlib jinjing_core crates/core/src/lib.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"
rlib jinjing_serve crates/serve/src/lib.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib"
rlib jinjing_shard crates/shard/src/lib.rs $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib"
rlib jinjing_cli crates/cli/src/lib.rs --cfg jinjing_offline $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib" \
    --extern jinjing_shard="$OUT/libjinjing_shard.rlib"
rlib rand scripts/stubs/rand.rs
rlib jinjing_wan crates/wan/src/lib.rs $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern rand="$OUT/librand.rlib"
rlib jinjing_bench crates/bench/src/lib.rs $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_wan="$OUT/libjinjing_wan.rlib" \
    --extern rand="$OUT/librand.rlib"

tbin acl_unit crates/acl/src/lib.rs
tbin obs_unit crates/obs/src/lib.rs
tbin par_unit crates/par/src/lib.rs
tbin solver_unit crates/solver/src/lib.rs $A $O
tbin lint_unit crates/lint/src/lib.rs $A $O \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_par="$OUT/libjinjing_par.rlib"
tbin core_unit crates/core/src/lib.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"
tbin obs_integration tests/obs_integration.rs --cfg jinjing_offline $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib"
tbin par_determinism tests/par_determinism.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin lint_integration tests/lint_integration.rs --cfg jinjing_offline $A \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"
tbin lint_multi tests/lint_multi.rs $A $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"
tbin serve_unit crates/serve/src/lib.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib"
tbin shard_unit crates/shard/src/lib.rs $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib"
tbin cli_unit crates/cli/src/lib.rs --cfg jinjing_offline $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib" \
    --extern jinjing_shard="$OUT/libjinjing_shard.rlib"
tbin running_example tests/running_example.rs $A \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin wan_unit crates/wan/src/lib.rs $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern rand="$OUT/librand.rlib"
tbin wan_integration tests/wan_integration.rs $A $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_wan="$OUT/libjinjing_wan.rlib"
tbin incr_oracle tests/incr_oracle.rs $A $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin plan_oracle tests/plan_oracle.rs $A \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin cli_golden tests/cli_golden.rs --cfg jinjing_offline $A $O \
    --extern jinjing_cli="$OUT/libjinjing_cli.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin serve_integration tests/serve_integration.rs $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib"
tbin shard_integration tests/shard_integration.rs $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib" \
    --extern jinjing_shard="$OUT/libjinjing_shard.rlib"
tbin trace_export tests/trace_export.rs --cfg jinjing_offline $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib"
tbin warm_solver tests/warm_solver.rs \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib"

# The determinism half of the incremental contract: the oracle suites and
# the golden files must hold verbatim under a 4-worker default too — and
# the daemon must render the same bytes when the engine runs 4-wide.
echo "==> re-run incr_oracle + plan_oracle + cli_golden + serve_integration + shard_integration + warm_solver + lint_multi with JINJING_THREADS=4"
JINJING_THREADS=4 "$OUT/incr_oracle" -q
JINJING_THREADS=4 "$OUT/plan_oracle" -q
JINJING_THREADS=4 "$OUT/cli_golden" -q
JINJING_THREADS=4 "$OUT/serve_integration" -q
JINJING_THREADS=4 "$OUT/shard_integration" -q
JINJING_THREADS=4 "$OUT/warm_solver" -q
# The cross-tenant gate equivalent of ci.sh's two-tenant CLI step: the
# committed example pair runs through engine::lint_multi inside this
# suite (the real `jinjing lint --intent tenant=FILE` binary needs the
# serde-backed loaders, which the offline build compiles out).
JINJING_THREADS=4 "$OUT/lint_multi" -q

# Incremental-replay smoke: regenerate BENCH_incr.json (into $OUT — the
# committed copy is refreshed by scripts/ci.sh's online path) and check
# the headline claim: dirty pairs ≪ the cold per-step pair ceiling.
echo "==> figures incr --small (BENCH_incr.json smoke)"
"${RUSTC[@]}" -C opt-level=2 --crate-name figures crates/bench/src/bin/figures.rs \
    -o "$OUT/figures" $A $O \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_wan="$OUT/libjinjing_wan.rlib" \
    --extern jinjing_bench="$OUT/libjinjing_bench.rlib" \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib" \
    --extern jinjing_serve="$OUT/libjinjing_serve.rlib"
"$OUT/figures" incr --small --bench-out "$OUT/BENCH_incr.json" >/dev/null
grep -q '"benchmark":"incr"' "$OUT/BENCH_incr.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/BENCH_incr.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["benchmark"] == "incr" and d["network"] == "small", d
assert d["dirty_pairs_total"] * 2 < d["pairs_ceiling_total"], \
    f"incremental pruning regressed: {d['dirty_pairs_total']} dirty vs ceiling {d['pairs_ceiling_total']}"
print(f"BENCH_incr.json: {d['steps']} steps, {d['dirty_pairs_total']} dirty pairs "
      f"vs ceiling {d['pairs_ceiling_total']}, speedup {d['speedup']}x")
EOF
else
    echo "offline_check.sh: python3 not installed — skipping BENCH_incr.json probe" >&2
fi

# Daemon smoke: `figures serve` spins up a loopback jinjing-serve instance,
# drives 100 concurrent /v1/check requests plus a session delta round, and
# asserts every response body matches the in-process rendering byte for
# byte. Run it single- and 4-threaded: the wire bytes must not care how
# wide the engine runs.
echo "==> figures serve (loopback daemon smoke, BENCH_serve.json)"
JINJING_THREADS=1 "$OUT/figures" serve --bench-out "$OUT/BENCH_serve.json" >/dev/null
grep -q '"bodies_identical":true' "$OUT/BENCH_serve.json"
JINJING_THREADS=4 "$OUT/figures" serve --bench-out "$OUT/BENCH_serve.json" >/dev/null
grep -q '"bodies_identical":true' "$OUT/BENCH_serve.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/BENCH_serve.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["benchmark"] == "serve" and d["bodies_identical"] is True, d
assert d["requests"] == d["clients"] * 25 and d["shed"] == 0, d
print(f"BENCH_serve.json: {d['requests']} requests over {d['clients']} clients, "
      f"p50 {d['p50_us']}us, {d['throughput_rps']} req/s, shed {d['shed']}")
EOF
else
    echo "offline_check.sh: python3 not installed — skipping BENCH_serve.json probe" >&2
fi

# Flight-recorder smoke: `figures trace` runs the Figure 1 check with the
# recorder armed (asserting the plan bytes match an untraced run) and
# dumps the Chrome trace_event JSON; the probe checks the export is
# strict JSON with balanced B/E spans and monotone timestamps per track.
echo "==> figures trace (flight-recorder Chrome export smoke)"
"$OUT/figures" trace --trace-out "$OUT/trace_smoke.json" >/dev/null
grep -q '"traceEvents"' "$OUT/trace_smoke.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/trace_smoke.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["displayTimeUnit"] == "ms", d
assert d["otherData"]["dropped_events"] == 0, d
evs = d["traceEvents"]
assert evs, "empty capture"
open_spans, last_ts = {}, {}
for e in evs:
    tid, ph = e["tid"], e["ph"]
    assert e["pid"] == 1, e
    if ph == "B":
        open_spans[tid] = open_spans.get(tid, 0) + 1
    elif ph == "E":
        assert open_spans.get(tid, 0) > 0, f"E without B on tid {tid}"
        open_spans[tid] -= 1
    if "ts" in e:
        assert e["ts"] >= last_ts.get(tid, -1.0), f"ts not monotone on tid {tid}"
        last_ts[tid] = e["ts"]
assert all(n == 0 for n in open_spans.values()), f"unbalanced: {open_spans}"
spans = {e["name"] for e in evs if e["ph"] == "B"}
assert {"engine.run", "check.pair", "solver.query"} <= spans, spans
print(f"trace_smoke.json: {len(evs)} events over {len(last_ts)} track(s), "
      f"balanced and monotone")
EOF
else
    echo "offline_check.sh: python3 not installed — skipping trace probe" >&2
fi

# Warm-solver smoke: `figures solve --small` replays the differential
# query workload cold (fresh encode + solve per query) and warm (one
# persistent family per chain, assumption-scoped class pins), asserting
# verdict equality internally; the probe checks the headline claims —
# warm re-queries beat cold rebuilds, and the fix minimal-change search
# constructs strictly fewer solvers than the per-k cold loop would.
echo "==> figures solve --small (warm-solver microbench smoke, BENCH_solve.json)"
"$OUT/figures" solve --small --bench-out "$OUT/BENCH_solve.json" >/dev/null
grep -q '"benchmark":"solve"' "$OUT/BENCH_solve.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/BENCH_solve.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["benchmark"] == "solve" and d["network"] == "small", d
assert d["speedup"] > 0, d
assert d["warm"]["builds"] == d["chains"], d
assert d["fix"]["ascend"]["builders"] < d["fix"]["cold_loop_builders"], \
    f"fix no longer beats the per-k cold loop: {d['fix']}"
print(f"BENCH_solve.json: {d['queries']} queries over {d['chains']} chains, "
      f"warm speedup {d['speedup']}x, fix builders "
      f"{d['fix']['ascend']['builders']} vs cold loop {d['fix']['cold_loop_builders']}")
EOF
else
    echo "offline_check.sh: python3 not installed — skipping BENCH_solve.json probe" >&2
fi

# Rollout-synthesis smoke: `figures plan` synthesizes certified plans for
# the seeded update campaigns (drain / staged_swap / no_order), asserting
# internally that the rendered plan bytes are thread-count-independent;
# the probe checks the headline claims — every wave of a feasible plan
# carries a certificate, the no-order campaign reports a core, and the
# planner's probe work stays within half the cold per-prefix ceiling.
echo "==> figures plan (rollout-synthesis smoke, BENCH_plan.json)"
"$OUT/figures" plan --bench-out "$OUT/BENCH_plan.json" >/dev/null
grep -q '"benchmark":"plan"' "$OUT/BENCH_plan.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/BENCH_plan.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["benchmark"] == "plan" and d["network"] == "small", d
assert d["dirty_pairs_total"] * 2 <= d["pairs_ceiling_total"], \
    f"plan probe pruning regressed: {d['dirty_pairs_total']} dirty vs ceiling {d['pairs_ceiling_total']}"
for s in d["scenarios"]:
    if s["feasible"]:
        assert s["certificates"] == s["waves"] >= 1, s
    else:
        assert s["core"] >= 1 and s["waves"] == 0, s
assert any(not s["feasible"] for s in d["scenarios"]), "no infeasible scenario"
print(f"BENCH_plan.json: {d['steps']} steps over {len(d['scenarios'])} scenarios, "
      f"{d['dirty_pairs_total']} dirty pairs vs ceiling {d['pairs_ceiling_total']}")
EOF
else
    echo "offline_check.sh: python3 not installed — skipping BENCH_plan.json probe" >&2
fi

# Shard-partition smoke: `figures shard` checks the same small-WAN
# workload unsharded and restricted to each slice of a 1/2/4/8-way
# consistent-hash partition, asserting internally that per-shard dirty
# pairs and solver queries sum to the unsharded totals; the probe checks
# the artifact's shape and the zero-duplication headline.
echo "==> figures shard (consistent-hash partition smoke, BENCH_shard.json)"
"$OUT/figures" shard --bench-out "$OUT/BENCH_shard.json" >/dev/null
grep -q '"benchmark":"shard"' "$OUT/BENCH_shard.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$OUT/BENCH_shard.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["benchmark"] == "shard" and d["network"] == "small", d
assert d["partition_exact"] is True, d
base = d["baseline"]
for w in d["widths"]:
    assert w["dirty_pairs_sum"] == base["dirty_pairs"], w
    assert w["queries_sum"] == base["queries"], w
assert [w["shards"] for w in d["widths"]] == [1, 2, 4, 8], d
print(f"BENCH_shard.json: {base['dirty_pairs']} pairs / {base['queries']} queries "
      f"partitioned exactly at widths 1/2/4/8")
EOF
else
    echo "offline_check.sh: python3 not installed — skipping BENCH_shard.json probe" >&2
fi

echo "offline_check.sh: all offline checks passed (artifacts in $OUT)"
