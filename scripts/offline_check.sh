#!/usr/bin/env bash
# Registry-free verification of the internal dependency chain.
#
# The workspace's external deps (proptest/criterion/serde_json/rand) only sit
# in the outer layers (property suites, benches, CLI/spec JSON). Everything
# inner — acl, obs, solver, lai, net (without the `spec` feature), core — is
# std-only, so on a machine without crates.io access we can still build and
# test the heart of the system with bare rustc:
#
#   rlibs:  acl → obs → par → {solver, lai, net} → lint → core
#   tests:  acl unit, obs unit, par unit, solver unit, lint unit, core unit,
#           tests/obs_integration.rs, tests/lint_integration.rs,
#           tests/par_determinism.rs
#
# The integration test's serde_json round-trip is compiled out under
# `--cfg jinjing_offline` (the full check still runs under `cargo test`).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-$(mktemp -d /tmp/jinjing-offline.XXXXXX)}"
mkdir -p "$OUT"
RUSTC=(rustc --edition 2021 -C opt-level=1 -L "$OUT")

rlib() { # rlib <crate_snake> <path> [--extern ...]
    local name="$1" src="$2"
    shift 2
    echo "==> rlib $name"
    "${RUSTC[@]}" --crate-type rlib --crate-name "$name" "$src" \
        -o "$OUT/lib$name.rlib" "$@"
}

tbin() { # tbin <bin_name> <src> [--extern ...]
    local name="$1" src="$2"
    shift 2
    echo "==> test $name"
    "${RUSTC[@]}" --test --crate-name "$name" "$src" -o "$OUT/$name" "$@"
    "$OUT/$name" -q
}

A="--extern jinjing_acl=$OUT/libjinjing_acl.rlib"
O="--extern jinjing_obs=$OUT/libjinjing_obs.rlib"

rlib jinjing_acl crates/acl/src/lib.rs
rlib jinjing_obs crates/obs/src/lib.rs
rlib jinjing_par crates/par/src/lib.rs
rlib jinjing_solver crates/solver/src/lib.rs $A $O
rlib jinjing_lai crates/lai/src/lib.rs $A
rlib jinjing_net crates/net/src/lib.rs $A # no --cfg feature="spec": serde-free
rlib jinjing_lint crates/lint/src/lib.rs $A $O \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" # no `spec` feature
rlib jinjing_core crates/core/src/lib.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"

tbin acl_unit crates/acl/src/lib.rs
tbin obs_unit crates/obs/src/lib.rs
tbin par_unit crates/par/src/lib.rs
tbin solver_unit crates/solver/src/lib.rs $A $O
tbin lint_unit crates/lint/src/lib.rs $A $O \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin core_unit crates/core/src/lib.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_solver="$OUT/libjinjing_solver.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"
tbin obs_integration tests/obs_integration.rs --cfg jinjing_offline $O \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib"
tbin par_determinism tests/par_determinism.rs $A $O \
    --extern jinjing_par="$OUT/libjinjing_par.rlib" \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib"
tbin lint_integration tests/lint_integration.rs --cfg jinjing_offline $A \
    --extern jinjing_core="$OUT/libjinjing_core.rlib" \
    --extern jinjing_lai="$OUT/libjinjing_lai.rlib" \
    --extern jinjing_net="$OUT/libjinjing_net.rlib" \
    --extern jinjing_lint="$OUT/libjinjing_lint.rlib"

echo "offline_check.sh: all offline checks passed (artifacts in $OUT)"
