//! ACL migration (§5 and §7 Scenario 3).
//!
//! Without arguments, runs the paper's worked example: migrate the ACLs of
//! interfaces A1 and D2 of the Figure 1 subnet onto {C1, C2, D1} while
//! preserving reachability — reproducing the ACL equivalence classes of
//! Table 3, the DEC split of §5.3 and the synthesized decisions of
//! Table 4b.
//!
//! With a size argument (`small` / `medium` / `large`), runs the §8
//! migration experiment instead: drain every aggregation-layer ACL of a
//! synthetic WAN and regenerate equivalent filtering at the edge layer.
//!
//! ```sh
//! cargo run --release -p jinjing-examples --example migration
//! cargo run --release -p jinjing-examples --example migration -- medium
//! ```

use jinjing_core::check::check_exact;
use jinjing_core::figure1::Figure1;
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_core::resolve::resolve;
use jinjing_core::Task;
use jinjing_lai::{parse_program, print_program, validate, Command};
use jinjing_wan::{build_wan, scenarios, NetSize, WanParams};

fn figure1_migration() {
    println!("== ACL migration on the Figure 1 subnet (§5) ==\n");
    let fig = Figure1::new();
    let src = r#"
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1 to PermitAll
modify D:2 to PermitAll
generate
"#;
    println!("LAI program:{src}");
    let program = validate(parse_program(src).expect("parse")).expect("validate");
    let task: Task = resolve(&fig.net, &program, &fig.config).expect("resolve");
    let report = generate(&fig.net, &task, &GenerateConfig::default()).expect("generate");
    println!(
        "ACL equivalence classes: {} (Table 3 has 4)\nAECs needing a DEC split: {} (§5.3 splits [1]AEC)\nDECs created: {}",
        report.aec_count, report.aecs_split, report.dec_count
    );
    println!("sequence-encoding rows: {}\n", report.rows);
    let topo = fig.net.topology();
    for name in ["C1", "C2", "D1"] {
        let slot = fig.slot(name);
        let acl = report.generated.get(slot).expect("synthesized");
        println!(
            "--- synthesized {}-in ---\n{acl}\n",
            topo.iface_name(slot.iface)
        );
    }
    let verdict = check_exact(&fig.net, &task.scope, &task.before, &report.generated, &[]);
    println!(
        "exact verification: {}",
        if verdict.is_consistent() {
            "reachability preserved on every path"
        } else {
            "VIOLATION (bug!)"
        }
    );
}

fn wan_migration(size: NetSize) {
    println!("== §8 migration experiment, {} network ==\n", size.label());
    let wan = build_wan(&WanParams::preset(size));
    println!(
        "devices: {}, ACL slots: {}, installed rules: {}",
        wan.net.topology().device_count(),
        wan.all_acl_slots().len(),
        wan.installed_rules()
    );
    let sc = scenarios::migration(&wan);
    println!(
        "LAI program: {} statements ({} lines printed)",
        jinjing_lai::printer::statement_count(&sc.program),
        print_program(&sc.program).lines().count()
    );
    assert_eq!(sc.task.command, Command::Generate);
    let t = std::time::Instant::now();
    let report = generate(&wan.net, &sc.task, &GenerateConfig::default()).expect("generate");
    let elapsed = t.elapsed();
    println!(
        "generated {} rules across {} edge slots in {:?}",
        report.rules_final,
        sc.task.allow.len(),
        elapsed
    );
    println!(
        "  phases: derive AEC {:?} | solve {:?} | synthesize {:?}",
        report.phases.derive_aec, report.phases.solve, report.phases.synthesize
    );
    println!(
        "  classes: {} AECs, {} split into {} DECs",
        report.aec_count, report.aecs_split, report.dec_count
    );
    let t = std::time::Instant::now();
    let verdict = check_exact(
        &wan.net,
        &sc.task.scope,
        &sc.task.before,
        &report.generated,
        &[],
    );
    println!(
        "exact verification in {:?}: {}",
        t.elapsed(),
        if verdict.is_consistent() {
            "reachability preserved"
        } else {
            "VIOLATION (bug!)"
        }
    );
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        None => figure1_migration(),
        Some("small") => wan_migration(NetSize::Small),
        Some("medium") => wan_migration(NetSize::Medium),
        Some("large") => wan_migration(NetSize::Large),
        Some(other) => {
            eprintln!("unknown size {other:?}; expected small|medium|large");
            std::process::exit(1);
        }
    }
}
