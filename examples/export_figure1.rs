//! Export the Figure 1 running example as on-disk specs for the `jinjing`
//! CLI, then show the command lines to replay the paper's workflow.
//!
//! ```sh
//! cargo run --release -p jinjing-examples --example export_figure1
//! cargo run --release -p jinjing-cli --bin jinjing -- run \
//!     --network examples/data/figure1-network.json \
//!     --acls examples/data/figure1-acls.json \
//!     --intent examples/data/running-example.lai
//! ```

use jinjing_core::figure1::Figure1;
use jinjing_net::spec::{AclConfigSpec, NetworkSpec, RouteSpec};

const INTENT: &str = r#"# The paper's Figure 3 intent: clean up C and D, with `check`.
# Change the last line to `fix` to let Jinjing repair the plan.
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}

scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
check
"#;

fn main() {
    let fig = Figure1::new();
    let mut spec = NetworkSpec::from_network(&fig.net);
    // Figure 1's multipath routing is hand-crafted, so export the FIBs as
    // static routes (recomputed shortest paths alone would not reproduce
    // the figure's per-edge traffic labels).
    let topo = fig.net.topology();
    for dev in topo.devices() {
        for entry in fig.net.fib(dev).entries() {
            spec.routes.push(RouteSpec {
                device: topo.device(dev).name.clone(),
                prefix: entry.prefix.to_string(),
                out: topo.iface_name(entry.out),
            });
        }
    }
    let acls = AclConfigSpec::from_config(&fig.net, &fig.config);

    std::fs::create_dir_all("examples/data").expect("create examples/data");
    let net_path = "examples/data/figure1-network.json";
    let acl_path = "examples/data/figure1-acls.json";
    let lai_path = "examples/data/running-example.lai";
    std::fs::write(net_path, serde_json::to_string_pretty(&spec).unwrap())
        .expect("write network spec");
    std::fs::write(acl_path, serde_json::to_string_pretty(&acls).unwrap()).expect("write acl spec");
    std::fs::write(lai_path, INTENT).expect("write intent");

    // Round-trip sanity: the rebuilt network reproduces the figure's paths.
    let rebuilt = spec.build().expect("rebuild");
    let scope = jinjing_net::Scope::whole(rebuilt.topology());
    let a1 = rebuilt.topology().iface_by_name("A", "1").unwrap();
    let class = jinjing_net::fib::prefix_set(&jinjing_net::fib::pfx("2.0.0.0/8"));
    let paths = rebuilt.paths_for_class(&scope, a1, &class);
    assert_eq!(paths.len(), 2, "traffic 2 keeps its two paths");

    println!("wrote {net_path}\nwrote {acl_path}\nwrote {lai_path}\n");
    println!("replay the paper's workflow with:\n");
    println!(
        "  cargo run --release -p jinjing-cli --bin jinjing -- run \\\n      --network {net_path} --acls {acl_path} --intent {lai_path}"
    );
}
