//! §7 Scenario 1: isolating a service area.
//!
//! A new service S is deployed behind the backbone with prefix
//! `1.2.0.0/16`. The operators must isolate traffic between S and the
//! gateway R3 (which manages an important private subnet), but cannot
//! simply add a deny on R3 — that could side-effect un-recycled IP
//! segments inside R3's network. They express the intent with two
//! `control … isolate` statements and let Jinjing `generate` the ACLs.
//!
//! ```sh
//! cargo run --release -p jinjing-examples --example isolate_service
//! ```

use jinjing_acl::Packet;
use jinjing_core::check::check_exact;
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_core::resolve::resolve;
use jinjing_lai::{parse_program, validate};
use jinjing_net::fib::{pfx, prefix_set};
use jinjing_net::{AclConfig, Network, TopologyBuilder};

/// Build the scenario network:
///
/// ```text
///   backbone ══ R1:s ─┐             ┌─ R3:net ══ private subnet
///                     R1:d ── R3:a ─┤              (9.9.0.0/16)
///   backbone ══ R2:s ─┐             │
///                     R2:d ── R3:b ─┘
/// ```
///
/// S (`1.2.0.0/16`) and other backbone prefixes are reachable via both R1
/// and R2.
fn build() -> (Network, AclConfig) {
    let mut tb = TopologyBuilder::new();
    let r1 = tb.device("R1");
    let r2 = tb.device("R2");
    let r3 = tb.device("R3");
    let r1s = tb.iface(r1, "s");
    let r1d = tb.iface(r1, "d");
    let r2s = tb.iface(r2, "s");
    let r2d = tb.iface(r2, "d");
    let r3a = tb.iface(r3, "a");
    let r3b = tb.iface(r3, "b");
    let r3net = tb.iface(r3, "net");
    tb.link(r1d, r3a);
    tb.link(r2d, r3b);
    let mut net = Network::new(tb.build());
    // Backbone prefixes: the new service S and an unrelated service.
    net.announce(pfx("1.2.0.0/16"), r1s);
    net.announce(pfx("1.2.0.0/16"), r2s);
    net.announce(pfx("8.8.0.0/16"), r1s);
    net.announce(pfx("8.8.0.0/16"), r2s);
    // R3's private subnet.
    net.announce(pfx("9.9.0.0/16"), r3net);
    net.compute_routes();
    // Traffic matrix: backbone traffic (including S's) enters at R1:s/R2:s
    // toward the subnet; subnet traffic enters at R3:net toward the
    // backbone.
    let toward_subnet = prefix_set(&pfx("9.9.0.0/16"));
    net.set_entering(r1s, toward_subnet.clone());
    net.set_entering(r2s, toward_subnet);
    let toward_backbone = prefix_set(&pfx("1.2.0.0/16")).union(&prefix_set(&pfx("8.8.0.0/16")));
    net.set_entering(r3net, toward_backbone);
    (net, AclConfig::new())
}

const INTENT: &str = r#"
scope R1:*, R2:*, R3:*
allow R1:*-in, R2:*-in, R3:*-in
control R1:s, R2:s -> R3:net isolate src 1.2.0.0/16
control R3:net -> R1:s, R2:s isolate dst 1.2.0.0/16
generate
"#;

fn main() {
    println!("== §7 Scenario 1: isolating service S (1.2.0.0/16) from R3 ==");
    let (net, config) = build();
    println!("{}", net.topology());
    println!("LAI program:{INTENT}");
    let program = validate(parse_program(INTENT).expect("parse")).expect("validate");
    let task = resolve(&net, &program, &config).expect("resolve");
    let t = std::time::Instant::now();
    let report = generate(&net, &task, &GenerateConfig::default()).expect("generate");
    println!("plan generated in {:?}\n", t.elapsed());
    for slot in report.generated.slots() {
        let acl = report.generated.get(slot).expect("slot");
        if acl.is_empty() {
            continue;
        }
        println!(
            "--- generated {}-{} ---\n{acl}\n",
            net.topology().iface_name(slot.iface),
            slot.dir
        );
    }
    // Verify against the desired reachability.
    let verdict = check_exact(
        &net,
        &task.scope,
        &task.before,
        &report.generated,
        &task.controls,
    );
    println!(
        "exact verification: {}",
        if verdict.is_consistent() {
            "desired reachability achieved"
        } else {
            "VIOLATION (bug!)"
        }
    );
    // Spot-check the semantics on concrete packets.
    let scope = task.scope.clone();
    let from_s = Packet::new(0x0102_0304, 0x0909_0101, 40000, 443, 6); // S → subnet
    let from_other = Packet::new(0x0808_0101, 0x0909_0101, 40000, 443, 6); // other → subnet
    for (label, pkt, expect) in [
        ("service S -> subnet", from_s, false),
        ("other service -> subnet", from_other, true),
    ] {
        let mut permitted = false;
        for path in net.all_paths_for_class(&scope, &jinjing_acl::PacketSet::singleton(&pkt)) {
            if report.generated.path_permits(&path, &pkt) {
                permitted = true;
            }
        }
        println!(
            "  {label}: {} (expected {})",
            if permitted { "permitted" } else { "isolated" },
            if expect { "permitted" } else { "isolated" }
        );
        assert_eq!(permitted, expect, "{label}");
    }
}
