//! Quickstart: the paper's running example (§3.2, Figure 3) end to end.
//!
//! The operator wants to "clean up" the ACLs on devices C and D of the
//! Figure 1 subnet by moving their deny rules onto device A. She writes the
//! intent in LAI, `check`s it (Jinjing finds the plan breaks traffic 1 and
//! 2 on the direct path through D), then asks Jinjing to `fix` it.
//!
//! ```sh
//! cargo run --release -p jinjing-examples --example quickstart
//! ```

use jinjing_core::check::CheckOutcome;
use jinjing_core::engine::{render_plan, run, EngineConfig, ReportKind};
use jinjing_core::figure1::Figure1;
use jinjing_core::resolve::resolve;
use jinjing_lai::{parse_program, validate};

const INTENT_BODY: &str = r#"
# Updated ACLs shipped with the intent (Figure 3).
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}

# Region: the whole subnet; only A and B may change.
scope A:*, B:*, C:*, D:*
allow A:*, B:*

# Requirement: the proposed update.
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

fn main() {
    let fig = Figure1::new();
    let topo = fig.net.topology();
    println!("== Jinjing quickstart: the Figure 1 running example ==\n");
    println!("{topo}");

    // ---- Step 1: check the manually written update. ----
    let check_src = format!("{INTENT_BODY}check\n");
    println!("LAI program:\n{check_src}");
    let program = validate(parse_program(&check_src).expect("parse")).expect("validate");
    let task = resolve(&fig.net, &program, &fig.config).expect("resolve");
    let report = run(&fig.net, &task, &EngineConfig::default()).expect("engine");
    match &report.kind {
        ReportKind::Check(r) => match &r.outcome {
            CheckOutcome::Consistent => println!("check: consistent (unexpected!)"),
            CheckOutcome::Inconsistent(v) => {
                println!("check: INCONSISTENT —");
                println!("  witness packet : {}", v.packet);
                println!("  violated path  : {}", v.path.display(topo));
                println!(
                    "  desired {} but the update {}s it\n",
                    if v.desired { "permit" } else { "deny" },
                    if v.actual { "permit" } else { "deny" }
                );
            }
        },
        _ => unreachable!("command was check"),
    }

    // ---- Step 2: fix it. ----
    let fix_src = format!("{INTENT_BODY}fix\n");
    let program = validate(parse_program(&fix_src).expect("parse")).expect("validate");
    let task = resolve(&fig.net, &program, &fig.config).expect("resolve");
    let report = run(&fig.net, &task, &EngineConfig::default()).expect("engine");
    let ReportKind::Fix(plan) = &report.kind else {
        unreachable!("command was fix")
    };
    println!(
        "fix: repaired with {} neighborhoods",
        plan.neighborhoods.len()
    );
    for (i, n) in plan.neighborhoods.iter().enumerate() {
        println!("  neighborhood {i}: {n}");
    }
    println!("\nFixing rules added:");
    for (slot, rule) in &plan.added_rules {
        println!("  {}-{}: {}", topo.iface_name(slot.iface), slot.dir, rule);
    }
    println!("\nDeployable plan (changed slots):");
    for (_, name, acl) in render_plan(&fig.net, &fig.config, &plan.fixed) {
        println!("--- {name} ---\n{acl}");
    }
    println!("\nFinal verdict: {}", report.verdict());
}
