//! §7 Scenario 2: the hidden complexity of moving ACLs from ingress to
//! egress interfaces.
//!
//! A cell gateway G filters backbone traffic on its uplink *ingress*
//! interface. A network upgrade asks for the ACLs to move to the gateway's
//! *egress* interfaces (facing the cell). The move looks innocuous — all
//! southbound traffic still crosses the same rules — but intra-cell traffic
//! between the internal routers only traverses the gateway's egress
//! interfaces, so it suddenly hits rules it never saw before. Jinjing's
//! `check` reports the breakage within the original reachability, and
//! `fix` produces the offset rules.
//!
//! ```sh
//! cargo run --release -p jinjing-examples --example ingress_egress
//! ```

use jinjing_acl::{parse::parse_acl, Packet};
use jinjing_core::check::{check_configs, CheckConfig, CheckOutcome};
use jinjing_core::engine::render_plan;
use jinjing_core::fix::{fix, FixConfig};
use jinjing_core::Task;
use jinjing_lai::Command;
use jinjing_net::fib::{pfx, prefix_set};
use jinjing_net::{AclConfig, Network, Scope, Slot, TopologyBuilder};

/// The cell:
///
/// ```text
///   backbone ══ G:up
///                G:c1 ── I1:g    I1:dn ══ hosts 10.1.0.0/16
///                G:c2 ── I2:g    I2:dn ══ hosts 10.2.0.0/16
/// ```
///
/// Intra-cell traffic I1↔I2 hairpins through G, using only G's egress
/// (cell-facing) interfaces.
fn build() -> (Network, AclConfig, [Slot; 3]) {
    let mut tb = TopologyBuilder::new();
    let g = tb.device("G");
    let i1 = tb.device("I1");
    let i2 = tb.device("I2");
    let up = tb.iface(g, "up");
    let gc1 = tb.iface(g, "c1");
    let gc2 = tb.iface(g, "c2");
    let i1g = tb.iface(i1, "g");
    let i1dn = tb.iface(i1, "dn");
    let i2g = tb.iface(i2, "g");
    let i2dn = tb.iface(i2, "dn");
    tb.link(gc1, i1g);
    tb.link(gc2, i2g);
    let mut net = Network::new(tb.build());
    net.announce(pfx("10.1.0.0/16"), i1dn);
    net.announce(pfx("10.2.0.0/16"), i2dn);
    net.announce(pfx("0.0.0.0/1"), up); // "the internet"
    net.compute_routes();
    // Traffic matrix: backbone traffic enters at the uplink; host traffic
    // enters at the downlinks (toward the other cell and the internet).
    let cell = prefix_set(&pfx("10.1.0.0/16")).union(&prefix_set(&pfx("10.2.0.0/16")));
    net.set_entering(up, cell.clone());
    let out1 = prefix_set(&pfx("10.2.0.0/16")).union(&prefix_set(&pfx("0.0.0.0/1")));
    net.set_entering(i1dn, out1);
    let out2 = prefix_set(&pfx("10.1.0.0/16")).union(&prefix_set(&pfx("0.0.0.0/1")));
    net.set_entering(i2dn, out2);

    // The gateway's ingress policy: block a quarantined segment and an
    // attack source.
    let policy = parse_acl(
        "deny dst 10.1.9.0/24     # quarantined segment\n\
         deny src 66.6.0.0/16     # known-bad sources\n\
         default permit\n",
    )
    .expect("policy parses");
    let mut config = AclConfig::new();
    config.set(Slot::ingress(up), policy);
    (
        net,
        config,
        [Slot::ingress(up), Slot::egress(gc1), Slot::egress(gc2)],
    )
}

fn main() {
    println!("== §7 Scenario 2: moving gateway ACLs from ingress to egress ==\n");
    let (net, before, [up_in, gc1_out, gc2_out]) = build();
    println!("{}", net.topology());
    let topo = net.topology();

    // The proposed update: same rules, relocated to the egress interfaces.
    let mut after = before.clone();
    let policy = before.get(up_in).expect("uplink policy").clone();
    after.clear(up_in);
    after.set(gc1_out, policy.clone());
    after.set(gc2_out, policy);

    let scope = Scope::whole(topo);
    println!("checking the relocation plan…");
    let report =
        check_configs(&net, &scope, &before, &after, &[], &CheckConfig::default()).expect("check");
    match &report.outcome {
        CheckOutcome::Consistent => println!("consistent (unexpected!)"),
        CheckOutcome::Inconsistent(v) => {
            println!("INCONSISTENT, exactly as §7 warns:");
            println!("  witness packet: {}", v.packet);
            println!("  violated path : {}", v.path.display(topo));
            println!("  (intra-cell traffic now hits the relocated rules)\n");
        }
    }

    // Demonstrate the concrete breakage: I2 → quarantined segment of I1 was
    // never filtered before (it bypasses the uplink) but dies now.
    let intra = Packet::new(0x0a02_0101, 0x0a01_0905, 1234, 80, 6);
    let class = jinjing_acl::PacketSet::singleton(&intra);
    for path in net.all_paths_for_class(&scope, &class) {
        println!(
            "  path {}: before={} after={}",
            path.display(topo),
            if before.path_permits(&path, &intra) {
                "permit"
            } else {
                "deny"
            },
            if after.path_permits(&path, &intra) {
                "permit"
            } else {
                "deny"
            },
        );
    }

    // Fix: allow changes on the gateway only.
    let task = Task {
        scope: scope.clone(),
        allow: vec![up_in, gc1_out, gc2_out],
        before: before.clone(),
        after,
        modified: vec![up_in, gc1_out, gc2_out],
        controls: Vec::new(),
        command: Command::Fix,
    };
    let plan = fix(&net, &task, &FixConfig::default()).expect("fix");
    println!(
        "\nfix: {} rules across {} neighborhoods",
        plan.added_rules.len(),
        plan.neighborhoods.len()
    );
    for (_, name, acl) in render_plan(&net, &task.after, &plan.fixed) {
        println!("--- {name} (after fixing) ---\n{acl}");
    }
    let verdict = jinjing_core::check::check_exact(&net, &scope, &before, &plan.fixed, &[]);
    println!(
        "\nexact verification: {}",
        if verdict.is_consistent() {
            "reachability fully restored"
        } else {
            "VIOLATION (bug!)"
        }
    );
}
