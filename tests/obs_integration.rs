//! Integration tests for the observability subsystem on the Figure 1
//! running example: the engine's span tree has the expected shape, the
//! solver counters are consistent with `CheckReport::solver_stats`, and the
//! `--metrics-out` JSON is strict enough for serde_json to parse.

use jinjing_core::check::CheckOutcome;
use jinjing_core::engine::{run, EngineConfig, ReportKind};
use jinjing_core::figure1::Figure1;
use jinjing_core::resolve::resolve;
use jinjing_lai::{parse_program, validate};

const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
}
acl A3' { deny dst 7.0.0.0/8 }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

fn run_with_obs(src: &str) -> jinjing_core::engine::Report {
    let fig = Figure1::new();
    let program = validate(parse_program(src).expect("parse")).expect("validate");
    let task = resolve(&fig.net, &program, &fig.config).expect("resolve");
    run(&fig.net, &task, &EngineConfig::default()).expect("engine")
}

#[test]
fn check_snapshot_has_span_tree_and_solver_metrics() {
    let report = run_with_obs(&format!("{RUNNING_EXAMPLE_BODY}check\n"));
    let snap = &report.obs;

    // Span tree shape: root → engine.run → check → {preprocess, refine,
    // paths, solve}.
    let engine = snap
        .spans
        .child("engine.run")
        .expect("engine.run span present");
    assert_eq!(engine.count, 1);
    let check = engine.child("check").expect("check under engine.run");
    assert_eq!(check.count, 1);
    for phase in [
        "check.preprocess",
        "check.refine",
        "check.paths",
        "check.solve",
    ] {
        assert!(
            check.child(phase).is_some(),
            "missing child span {phase}; got {:?}",
            check.children.iter().map(|c| &c.name).collect::<Vec<_>>()
        );
    }

    // The Figure 1 check does real solver work: non-zero check.solve time.
    let solve = check.child("check.solve").unwrap();
    assert!(solve.count >= 1);
    assert!(solve.total_ns > 0, "check.solve must record elapsed time");
    // Parent spans cover their children.
    let child_total: u64 = check.children.iter().map(|c| c.total_ns).sum();
    assert!(
        check.total_ns >= child_total,
        "span nesting is hierarchical"
    );

    // Solver counters are consistent with the report's aggregate stats:
    // every CircuitBuilder query ran with the collector attached, so the
    // histogram sums equal the merged per-class totals.
    let ReportKind::Check(r) = &report.kind else {
        panic!("expected check")
    };
    assert!(matches!(r.outcome, CheckOutcome::Inconsistent(_)));
    assert!(snap.counter("solver.queries") >= 1);
    let hist_sum = |name: &str| snap.histogram(name).map_or(0, |h| h.sum);
    assert_eq!(hist_sum("solver.decisions"), r.solver_stats.decisions);
    assert_eq!(hist_sum("solver.propagations"), r.solver_stats.propagations);
    assert_eq!(hist_sum("solver.conflicts"), r.solver_stats.conflicts);
    assert_eq!(hist_sum("solver.learned"), r.solver_stats.learned);
    let depth_hist = snap.histogram("solver.max_depth").expect("depth histogram");
    assert_eq!(depth_hist.max, r.solver_stats.max_depth);

    // Report durations come from the same spans.
    assert_eq!(solve.total_ns, r.t_solve.as_nanos() as u64);
    assert_eq!(snap.counter("check.runs"), 1);
}

#[test]
fn fix_snapshot_nests_certification_check_and_times_phases() {
    let report = run_with_obs(&format!("{RUNNING_EXAMPLE_BODY}fix\n"));
    let snap = &report.obs;
    let engine = snap.spans.child("engine.run").expect("engine.run");
    let fix = engine.child("fix").expect("fix under engine.run");
    // The certification check nests *inside* the fix span.
    assert!(fix.child("check").is_some(), "nested certification check");
    for phase in ["fix.enumerate", "fix.enlarge", "fix.place", "fix.simplify"] {
        assert!(fix.child(phase).is_some(), "missing {phase}");
    }

    let ReportKind::Fix(plan) = &report.kind else {
        panic!("expected fix")
    };
    // FixPlan phase durations mirror the span totals exactly (same guard).
    let span_ns = |name: &str| fix.child(name).map_or(0, |s| s.total_ns);
    assert_eq!(
        span_ns("fix.enumerate"),
        plan.phases.enumerate.as_nanos() as u64
    );
    assert_eq!(
        span_ns("fix.enlarge"),
        plan.phases.enlarge.as_nanos() as u64
    );
    assert_eq!(span_ns("fix.place"), plan.phases.place.as_nanos() as u64);
    assert_eq!(
        span_ns("fix.simplify"),
        plan.phases.simplify.as_nanos() as u64
    );
    assert!(plan.phases.enumerate.as_nanos() > 0, "enumeration did work");
    assert!(plan.phases.place.as_nanos() > 0, "placement did work");
    assert_eq!(
        snap.counter("fix.neighborhoods"),
        plan.neighborhoods.len() as u64
    );
    assert_eq!(
        snap.counter("fix.added_rules"),
        plan.added_rules.len() as u64
    );
}

#[test]
fn generate_snapshot_has_phase_spans_matching_report() {
    let src = r#"
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1 to PermitAll
modify D:2 to PermitAll
generate
"#;
    let report = run_with_obs(src);
    let snap = &report.obs;
    let gen = snap
        .spans
        .child("engine.run")
        .and_then(|e| e.child("generate"))
        .expect("generate span");
    let ReportKind::Generate(g) = &report.kind else {
        panic!("expected generate")
    };
    let span_ns = |name: &str| gen.child(name).map_or(0, |s| s.total_ns);
    assert_eq!(
        span_ns("generate.aec"),
        g.phases.derive_aec.as_nanos() as u64
    );
    assert_eq!(span_ns("generate.solve"), g.phases.solve.as_nanos() as u64);
    assert_eq!(
        span_ns("generate.synthesize"),
        g.phases.synthesize.as_nanos() as u64
    );
    let aec_hist = snap.histogram("generate.aec_count").expect("aec histogram");
    assert_eq!(aec_hist.sum, g.aec_count as u64);
}

// `scripts/offline_check.sh` compiles this file with bare rustc and no
// registry access; the serde_json round-trip is the one test that needs an
// external crate, so it is compiled out under `--cfg jinjing_offline`.
#[cfg(not(jinjing_offline))]
#[test]
fn snapshot_json_is_strict_and_complete() {
    let report = run_with_obs(&format!("{RUNNING_EXAMPLE_BODY}check\n"));
    let json = report.obs.to_json();

    // The acceptance bar: a real JSON parser (serde_json) accepts the
    // hand-rolled writer's output and finds the full span tree in it.
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    let spans = v.get("spans").expect("spans key");
    assert_eq!(spans["name"], "root");
    let engine = &spans["children"][0];
    assert_eq!(engine["name"], "engine.run");
    assert_eq!(engine["count"], 1);
    let check = engine["children"]
        .as_array()
        .unwrap()
        .iter()
        .find(|c| c["name"] == "check")
        .expect("check span in JSON");
    let names: Vec<&str> = check["children"]
        .as_array()
        .unwrap()
        .iter()
        .map(|c| c["name"].as_str().unwrap())
        .collect();
    assert!(names.contains(&"check.solve"), "{names:?}");

    // Metric sections exist with the documented shapes.
    assert!(v["counters"]["solver.queries"].as_u64().unwrap() >= 1);
    let dec = &v["histograms"]["solver.decisions"];
    assert!(dec["count"].as_u64().unwrap() >= 1);
    assert!(dec["p50"].is_u64() || dec["p50"].is_number());
    assert!(v["events"].is_array());
    // Events carry the check verdict.
    assert!(v["events"]
        .as_array()
        .unwrap()
        .iter()
        .any(|e| e["name"] == "check.verdict"));

    // Stable output: serializing the same snapshot twice is byte-identical.
    assert_eq!(json, report.obs.to_json());
}

/// Duration-accounting regression: the old per-iteration loop `+=`-ed path
/// and solve time into the report *and* opened a fresh span guard per
/// iteration, so the two books could drift apart. Both now derive from one
/// fold of the same worker-measured aggregates, so report durations and
/// span totals must be byte-equal — serial or parallel.
#[test]
fn check_durations_are_span_derived_for_every_thread_count() {
    for threads in [1usize, 4] {
        let fig = Figure1::new();
        let src = format!("{RUNNING_EXAMPLE_BODY}check\n");
        let program = validate(parse_program(&src).expect("parse")).expect("validate");
        let task = resolve(&fig.net, &program, &fig.config).expect("resolve");
        let cfg = EngineConfig {
            threads,
            ..EngineConfig::default()
        };
        let report = run(&fig.net, &task, &cfg).expect("engine");
        let snap = &report.obs;
        let check = snap
            .spans
            .child("engine.run")
            .and_then(|e| e.child("check"))
            .expect("check span");
        let ReportKind::Check(r) = &report.kind else {
            panic!("expected check")
        };
        let span = |name: &str| {
            check
                .child(name)
                .unwrap_or_else(|| panic!("missing {name} (threads={threads})"))
        };
        assert_eq!(
            span("check.preprocess").total_ns,
            r.t_preprocess.as_nanos() as u64,
            "threads={threads}"
        );
        assert_eq!(
            span("check.refine").total_ns,
            r.t_refine.as_nanos() as u64,
            "threads={threads}"
        );
        assert_eq!(
            span("check.paths").total_ns,
            r.t_paths.as_nanos() as u64,
            "threads={threads}"
        );
        assert_eq!(
            span("check.solve").total_ns,
            r.t_solve.as_nanos() as u64,
            "threads={threads}"
        );
        // Span counts carry the fold sizes: one entry per folded class /
        // query, never the speculative overshoot.
        let paths = span("check.paths");
        assert!(
            paths.count >= 1 && paths.count <= r.fec_count as u64,
            "threads={threads}: {} classes folded of {}",
            paths.count,
            r.fec_count
        );
        assert!(span("check.solve").count >= 1);
        // A fresh per-run cache starts cold: the first stage-1 query is a
        // miss, and the hit/miss split covers every cached lookup.
        assert!(
            snap.counter("check.cache_miss") >= 1,
            "threads={threads}: cold cache must miss first"
        );
    }
}

#[test]
fn collectors_are_isolated_between_runs() {
    // Two engine runs with default configs must not share state: each
    // EngineConfig::default() makes a fresh collector.
    let a = run_with_obs(&format!("{RUNNING_EXAMPLE_BODY}check\n"));
    let b = run_with_obs(&format!("{RUNNING_EXAMPLE_BODY}check\n"));
    assert_eq!(a.obs.counter("check.runs"), 1);
    assert_eq!(b.obs.counter("check.runs"), 1);
}
