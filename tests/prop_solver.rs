//! Property tests for the CDCL solver and circuit layer: the solver agrees
//! with brute-force enumeration on random small formulas, models always
//! satisfy the formula, and the arithmetic circuits (comparators,
//! cardinality counters) agree with concrete arithmetic.

use jinjing_acl::packet::{Field, Packet};
use jinjing_solver::card::counter_outputs;
use jinjing_solver::cdcl::{SolveResult, Solver};
use jinjing_solver::lit::{Lit, Var};
use jinjing_solver::{CircuitBuilder, HeaderVars};
use proptest::prelude::*;

/// A random clause over `n` variables as non-zero DIMACS-style ints.
fn clause(n: usize) -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec((1..=n as i32, any::<bool>()), 1..4).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, s)| if s { v } else { -v })
            .collect()
    })
}

fn formula() -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (2usize..9)
        .prop_flat_map(|n| prop::collection::vec(clause(n), 0..30).prop_map(move |cs| (n, cs)))
}

fn brute_force(n: usize, clauses: &[Vec<i32>]) -> Option<u64> {
    'outer: for bits in 0u64..(1 << n) {
        for c in clauses {
            let sat = c.iter().any(|&s| {
                let v = (bits >> (s.unsigned_abs() - 1)) & 1 == 1;
                if s > 0 {
                    v
                } else {
                    !v
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return Some(bits);
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CDCL verdict equals brute force, and SAT models check out.
    #[test]
    fn cdcl_agrees_with_brute_force((n, clauses) in formula()) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for c in &clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&i| Lit::new(vars[(i.unsigned_abs() - 1) as usize], i > 0))
                .collect();
            s.add_clause(&lits);
        }
        let expected = brute_force(n, &clauses);
        let verdict = s.solve();
        prop_assert_eq!(verdict == SolveResult::Sat, expected.is_some());
        if verdict == SolveResult::Sat {
            for c in &clauses {
                let ok = c.iter().any(|&i| {
                    let l = Lit::new(vars[(i.unsigned_abs() - 1) as usize], i > 0);
                    s.model_value(l)
                });
                prop_assert!(ok, "model violates {:?}", c);
            }
        }
    }

    /// Solving under unit assumptions equals solving with the units added.
    #[test]
    fn assumptions_equal_added_units((n, clauses) in formula(), picks in prop::collection::vec((0usize..8, any::<bool>()), 0..3)) {
        let build = |extra: &[(usize, bool)]| {
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|&i| Lit::new(vars[(i.unsigned_abs() - 1) as usize], i > 0))
                    .collect();
                s.add_clause(&lits);
            }
            for &(v, pos) in extra {
                let l = Lit::new(vars[v % n], pos);
                s.add_clause(&[l]);
            }
            (s, vars)
        };
        let (mut with_clauses, _) = build(&picks.iter().map(|&(v, p)| (v, p)).collect::<Vec<_>>());
        let (mut with_assumptions, vars) = build(&[]);
        let assumptions: Vec<Lit> = picks.iter().map(|&(v, p)| Lit::new(vars[v % n], p)).collect();
        prop_assert_eq!(
            with_clauses.solve(),
            with_assumptions.solve_with(&assumptions)
        );
    }

    /// Counter outputs equal the true count for random input forcings.
    #[test]
    fn counter_matches_popcount(values in prop::collection::vec(any::<bool>(), 1..10)) {
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = values.iter().map(|_| c.input()).collect();
        let outs = counter_outputs(&mut c, &inputs);
        for (l, &v) in inputs.iter().zip(&values) {
            let lit = if v { *l } else { !*l };
            c.assert(lit);
        }
        prop_assert_eq!(c.solve(), SolveResult::Sat);
        let count = values.iter().filter(|&&v| v).count();
        for (j, &o) in outs.iter().enumerate() {
            prop_assert_eq!(c.model_value(o), count > j);
        }
    }

    /// Range comparator circuits agree with integer comparison on every
    /// field.
    #[test]
    fn range_circuits_match_arithmetic(
        p in (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>()),
        lo in any::<u16>(),
        span in any::<u16>(),
    ) {
        let packet = Packet::new(p.0, p.1, p.2, p.3, p.4);
        let field = Field::DstPort;
        let lo = lo as u64;
        let hi = (lo + span as u64).min(field.max_value());
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let g = h.field_range(&mut c, field, lo, hi);
        h.assert_packet(&mut c, &packet);
        prop_assert_eq!(c.solve(), SolveResult::Sat);
        let v = packet.field(field);
        prop_assert_eq!(c.model_value(g), lo <= v && v <= hi);
    }

    /// Prefix circuits agree with prefix membership.
    #[test]
    fn prefix_circuits_match(addr in any::<u32>(), len in 0u32..=32, dip in any::<u32>()) {
        let prefix = jinjing_acl::IpPrefix::new(addr, len);
        let packet = Packet::to_dst(dip);
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let g = h.field_prefix(&mut c, Field::DstIp, prefix.addr() as u64, prefix.len());
        h.assert_packet(&mut c, &packet);
        prop_assert_eq!(c.solve(), SolveResult::Sat);
        prop_assert_eq!(c.model_value(g), prefix.contains(dip));
    }

    /// Model decoding inverts packet assertion.
    #[test]
    fn decode_inverts_assert(p in (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>(), any::<u8>())) {
        let packet = Packet::new(p.0, p.1, p.2, p.3, p.4);
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        h.assert_packet(&mut c, &packet);
        prop_assert_eq!(c.solve(), SolveResult::Sat);
        prop_assert_eq!(h.decode(&c), packet);
    }
}
