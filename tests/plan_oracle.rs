//! Oracle suite for the rollout planner (`jinjing_core::plan`): the
//! strongest evidence for the synthesis contract.
//!
//! Four oracles, in increasing strictness:
//!
//! 1. **Cold prefix replay.** On xorshift-random diamond networks with
//!    random base→target edits, every prefix state of a feasible plan's
//!    chain is replayed through a *cold* [`check_configs`] and through a
//!    fresh session probe, and the two reports must be byte-identical
//!    (modulo wall-clock) — the probe-soundness claim the planner's
//!    certificates rest on.
//! 2. **Wave commutation.** For every wave of every feasible plan, every
//!    permutation of the wave's members is applied step-by-step: states
//!    reached with the same applied *set* must be identical configs, and
//!    every partial interleaving state must be cold-consistent — the
//!    [`WaveCertificate::commuting`] claim, tested literally.
//! 3. **Exhaustive infeasibility.** Every infeasible verdict (all
//!    instances here have ≤ 5 steps) is verified by exhaustively
//!    enumerating monotone chains in the subset lattice with cold checks
//!    as the safety oracle: the full step set admits no safe ordering,
//!    the reported core admits none on its own, and dropping any single
//!    core member admits one (deletion-minimality).
//! 4. **Variant agreement.** Each instance is synthesized under threads
//!    {1, 4} × warm-solver {on, off}; all four plans (waves, certificates,
//!    cores, search stats) must be identical.
//!
//! The whole file is std-only (hand-rolled xorshift, no proptest/serde)
//! so `scripts/offline_check.sh` runs it with bare rustc.

use jinjing_acl::{Acl, Action, IpPrefix, PacketSet, Rule};
use jinjing_core::check::{check_configs, CheckConfig, CheckReport};
use jinjing_core::plan::{
    apply_steps, decompose, synthesize, PlanConfig, PlanOutcome, PlanStep, RolloutPlan,
};
use jinjing_core::{CheckSession, IncrConfig, ScopeSolver};
use jinjing_net::fib::{pfx, prefix_set};
use jinjing_net::{AclConfig, Network, Scope, Slot, TopologyBuilder};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic randomness: xorshift64* (std-only, seed-stable).
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

// ---------------------------------------------------------------------------
// Random diamond networks: S ─{M1,M2}─ T with per-prefix routing choice.
// Four devices ⇒ the per-device decomposition yields ≤ 4 steps, so the
// subset lattice is small enough to enumerate exhaustively.
// ---------------------------------------------------------------------------

struct Scenario {
    net: Network,
    slots: Vec<Slot>,
    prefixes: u32,
}

fn diamond(rng: &mut Rng) -> Scenario {
    let mut tb = TopologyBuilder::new();
    let s = tb.device("S");
    let m1 = tb.device("M1");
    let m2 = tb.device("M2");
    let t = tb.device("T");
    let s_ext = tb.iface(s, "ext");
    let s_u = tb.iface(s, "u");
    let s_d = tb.iface(s, "d");
    let m1_l = tb.iface(m1, "l");
    let m1_r = tb.iface(m1, "r");
    let m2_l = tb.iface(m2, "l");
    let m2_r = tb.iface(m2, "r");
    let t_u = tb.iface(t, "u");
    let t_d = tb.iface(t, "d");
    let t_ext = tb.iface(t, "ext");
    tb.link(s_u, m1_l);
    tb.link(m1_r, t_u);
    tb.link(s_d, m2_l);
    tb.link(m2_r, t_d);
    let mut net = Network::new(tb.build());

    let prefixes = 2 + rng.below(3) as u32; // 2..=4 announced /8s
    let p = |n: u32| pfx(&format!("{n}.0.0.0/8"));
    let mut entering = PacketSet::empty();
    for n in 1..=prefixes {
        match rng.below(3) {
            0 => {
                net.fib_mut(s).add(p(n), s_u);
            }
            1 => {
                net.fib_mut(s).add(p(n), s_d);
            }
            _ => {
                net.fib_mut(s).add(p(n), s_u);
                net.fib_mut(s).add(p(n), s_d);
            }
        }
        net.fib_mut(m1).add(p(n), m1_r);
        net.fib_mut(m2).add(p(n), m2_r);
        net.fib_mut(t).add(p(n), t_ext);
        net.announce(p(n), t_ext);
        entering = entering.union(&prefix_set(&p(n)));
    }
    net.set_entering(s_ext, entering);

    let slots = vec![
        Slot::ingress(s_ext),
        Slot::egress(s_u),
        Slot::egress(s_d),
        Slot::ingress(m1_l),
        Slot::ingress(m2_l),
        Slot::ingress(t_u),
        Slot::ingress(t_d),
        Slot::egress(t_ext),
    ];
    Scenario {
        net,
        slots,
        prefixes,
    }
}

fn random_rule(rng: &mut Rng, prefixes: u32) -> Rule {
    let n = 1 + rng.below(prefixes as usize) as u32;
    let permit = rng.chance(50);
    if rng.chance(50) {
        Rule::on_dst(Action::from_bool(permit), IpPrefix::new(n << 24, 8))
    } else {
        let sub = rng.below(4) as u32;
        Rule::on_dst(
            Action::from_bool(permit),
            IpPrefix::new(n << 24 | sub << 16, 16),
        )
    }
}

fn random_acl(rng: &mut Rng, prefixes: u32) -> Acl {
    let n_rules = 1 + rng.below(3);
    let rules = (0..n_rules).map(|_| random_rule(rng, prefixes)).collect();
    let default = Action::from_bool(rng.chance(80));
    Acl::new(rules, default)
}

fn random_config(rng: &mut Rng, sc: &Scenario) -> AclConfig {
    let mut cfg = AclConfig::new();
    for &slot in &sc.slots {
        if rng.chance(40) {
            cfg.set(slot, random_acl(rng, sc.prefixes));
        }
    }
    cfg
}

/// A random base→target campaign: 1–3 slot rewrites/clears on top of base.
fn random_target(rng: &mut Rng, sc: &Scenario, base: &AclConfig) -> AclConfig {
    let mut target = base.clone();
    for _ in 0..1 + rng.below(3) {
        let slot = sc.slots[rng.below(sc.slots.len())];
        if rng.chance(30) {
            target.clear(slot);
        } else {
            target.set(slot, random_acl(rng, sc.prefixes));
        }
    }
    target
}

// ---------------------------------------------------------------------------
// Canonical renderings: everything but wall-clock.
// ---------------------------------------------------------------------------

fn canon_report(r: &CheckReport) -> String {
    format!(
        "{:?}|{}|{}|{:?}|{}|{}",
        r.outcome, r.fec_count, r.paths_checked, r.solver_stats, r.encoded_rules, r.total_rules
    )
}

/// Canonical plan rendering: steps, waves/core by device name, full
/// certificates, full search stats. Two plans with equal canon are
/// operationally the same artifact.
fn canon_plan(plan: &RolloutPlan) -> String {
    let mut out = String::new();
    for s in &plan.steps {
        out.push_str(&format!("step {} edits={};", s.device, s.edits.len()));
    }
    match &plan.outcome {
        PlanOutcome::Feasible {
            waves,
            certificates,
        } => {
            for (w, c) in waves.iter().zip(certificates) {
                let devs: Vec<&str> = w.iter().map(|&i| plan.steps[i].device.as_str()).collect();
                out.push_str(&format!(
                    "wave [{}] commuting={} fec={} paths={} dirty={} state={:?};",
                    devs.join(","),
                    c.commuting,
                    c.fec_count,
                    c.paths_checked,
                    c.dirty_pairs,
                    c.state
                ));
            }
        }
        PlanOutcome::Infeasible { core } => {
            let devs: Vec<&str> = core.iter().map(|&i| plan.steps[i].device.as_str()).collect();
            out.push_str(&format!("core [{}];", devs.join(",")));
        }
    }
    out.push_str(&format!("{:?}", plan.stats));
    out
}

// ---------------------------------------------------------------------------
// The exhaustive safety lattice: cold checks memoized per applied SET
// (state depends only on the set), monotone-chain reachability by DFS.
// This is the brute-force ground truth the planner must agree with.
// ---------------------------------------------------------------------------

struct Lattice<'a> {
    net: &'a Network,
    scope: &'a Scope,
    base: &'a AclConfig,
    steps: &'a [PlanStep],
    memo: HashMap<u32, bool>,
}

impl Lattice<'_> {
    fn safe(&mut self, mask: u32) -> bool {
        if mask == 0 {
            return true;
        }
        if let Some(&v) = self.memo.get(&mask) {
            return v;
        }
        let idx: Vec<usize> = (0..self.steps.len())
            .filter(|&i| mask & (1 << i) != 0)
            .collect();
        let state = apply_steps(self.base, self.steps, &idx);
        let report = check_configs(
            self.net,
            self.scope,
            self.base,
            &state,
            &[],
            &CheckConfig::default(),
        )
        .expect("cold lattice check");
        let v = report.outcome.is_consistent();
        self.memo.insert(mask, v);
        v
    }

    /// Does ANY ordering of the steps in `universe` pass only through
    /// safe states? Every ordering is a monotone chain adding one step at
    /// a time, so DFS over the lattice is an exhaustive enumeration.
    fn feasible(&mut self, universe: u32) -> bool {
        let mut dead = HashSet::new();
        self.dfs(universe, 0, &mut dead)
    }

    fn dfs(&mut self, universe: u32, applied: u32, dead: &mut HashSet<u32>) -> bool {
        if applied == universe {
            return true;
        }
        if dead.contains(&applied) {
            return false;
        }
        for i in 0..self.steps.len() {
            let bit = 1u32 << i;
            if universe & bit == 0 || applied & bit != 0 {
                continue;
            }
            if self.safe(applied | bit) && self.dfs(universe, applied | bit, dead) {
                return true;
            }
        }
        dead.insert(applied);
        false
    }
}

/// All permutations of `items` (small: waves have ≤ 4 members here).
fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<usize> = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, x);
            out.push(tail);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The main oracle: ≥3 seeds × random campaigns, four synthesis variants,
// cold replay of every prefix state, wave permutation testing, and
// exhaustive verification of every infeasibility core.
// ---------------------------------------------------------------------------

const TRIALS: usize = 8;

#[test]
fn random_campaigns_replay_cold_and_verify_exhaustively() {
    let mut feasible_nontrivial = 0usize;
    let mut infeasible_seen = 0usize;
    let mut multi_wave_seen = 0usize;

    for seed in [1u64, 7, 42] {
        let mut rng = Rng::new(seed);
        let sc = diamond(&mut rng);
        let scope = Scope::whole(sc.net.topology());

        for trial in 0..TRIALS {
            let base = random_config(&mut rng, &sc);
            let target = random_target(&mut rng, &sc, &base);
            let steps = decompose(&sc.net, &base, &target);
            if steps.is_empty() {
                continue;
            }
            assert!(
                steps.len() <= 5,
                "seed {seed} trial {trial}: diamond campaigns stay exhaustively checkable"
            );
            let tag = format!("seed {seed} trial {trial}");

            // Variant agreement: threads {1, 4} × warm {on, off} must
            // produce the identical plan artifact.
            let mut plans: Vec<(String, RolloutPlan)> = Vec::new();
            for threads in [1usize, 4] {
                for warm_on in [true, false] {
                    let cfg = CheckConfig {
                        threads,
                        warm: warm_on.then(|| Arc::new(ScopeSolver::new())),
                        ..CheckConfig::default()
                    };
                    let plan = synthesize(
                        &sc.net,
                        &scope,
                        &[],
                        &base,
                        &target,
                        &cfg,
                        &PlanConfig::default(),
                    )
                    .expect("synthesize");
                    plans.push((format!("threads={threads} warm={warm_on}"), plan));
                }
            }
            let want_canon = canon_plan(&plans[0].1);
            for (label, plan) in &plans[1..] {
                assert_eq!(
                    canon_plan(plan),
                    want_canon,
                    "{tag} [{label}] diverged from [{}]",
                    plans[0].0
                );
            }
            let plan = &plans[0].1;

            match &plan.outcome {
                PlanOutcome::Feasible {
                    waves,
                    certificates,
                } => {
                    if plan.steps.len() >= 2 {
                        feasible_nontrivial += 1;
                    }
                    if waves.len() >= 2 {
                        multi_wave_seen += 1;
                    }
                    assert_eq!(certificates.len(), waves.len(), "{tag}");
                    replay_feasible_plan(&sc.net, &scope, &base, plan, waves, certificates, &tag);
                }
                PlanOutcome::Infeasible { core } => {
                    infeasible_seen += 1;
                    verify_core_exhaustively(&sc.net, &scope, &base, plan, core, &tag);
                }
            }
        }
    }

    // The generator must exercise both verdicts and real ordering
    // constraints, or the oracle is vacuous.
    assert!(
        feasible_nontrivial > 0,
        "no multi-step feasible campaign generated"
    );
    assert!(infeasible_seen > 0, "no infeasible campaign generated");
    assert!(multi_wave_seen > 0, "no multi-wave plan generated");
}

/// Oracles 1 + 2 for one feasible plan: cold replay of every prefix
/// state (byte-compared against a fresh session probe), certificate
/// cross-check at wave boundaries, and full wave-permutation testing.
fn replay_feasible_plan(
    net: &Network,
    scope: &Scope,
    base: &AclConfig,
    plan: &RolloutPlan,
    waves: &[Vec<usize>],
    certificates: &[jinjing_core::plan::WaveCertificate],
    tag: &str,
) {
    // A fresh probe session over the same base: its report for any state
    // must be byte-identical to the cold check of that state.
    let session = CheckSession::with_configs(
        net,
        scope.clone(),
        Vec::new(),
        base.clone(),
        CheckConfig::default(),
        IncrConfig::default(),
    )
    .expect("probe session opens");

    let mut applied: Vec<usize> = Vec::new();
    for (wi, wave) in waves.iter().enumerate() {
        // Every prefix state of the flattened chain replays cold.
        for &i in wave {
            applied.push(i);
            let state = apply_steps(base, &plan.steps, &applied);
            let cold = check_configs(net, scope, base, &state, &[], &CheckConfig::default())
                .expect("cold replay");
            assert!(
                cold.outcome.is_consistent(),
                "{tag}: prefix state {applied:?} failed its cold replay"
            );
            let (probed, _) = session.probe(&state).expect("probe");
            assert_eq!(
                canon_report(&probed),
                canon_report(&cold),
                "{tag}: probe of {applied:?} not byte-identical to cold check"
            );
        }
        // Wave-boundary certificate matches the cold report's workload
        // fields and the cumulative device set.
        let state = apply_steps(base, &plan.steps, &applied);
        let cold = check_configs(net, scope, base, &state, &[], &CheckConfig::default())
            .expect("cold boundary");
        let cert = &certificates[wi];
        assert!(cert.commuting, "{tag}: wave {wi} certificate");
        assert_eq!(cert.fec_count, cold.fec_count, "{tag}: wave {wi} fec");
        assert_eq!(
            cert.paths_checked, cold.paths_checked,
            "{tag}: wave {wi} paths"
        );
        let mut devs: Vec<String> = applied
            .iter()
            .map(|&i| plan.steps[i].device.clone())
            .collect();
        devs.sort();
        assert_eq!(cert.state, devs, "{tag}: wave {wi} cumulative state");

        // Oracle 2: every wave-internal interleaving yields the same
        // intermediate states (keyed by applied set) and passes only
        // through cold-consistent states.
        let pre: Vec<usize> = applied[..applied.len() - wave.len()].to_vec();
        let mut states_by_set: HashMap<u32, AclConfig> = HashMap::new();
        for perm in permutations(wave) {
            let mut cur = pre.clone();
            for &i in &perm {
                cur.push(i);
                let mask: u32 = cur.iter().map(|&j| 1u32 << j).sum();
                let state = apply_steps(base, &plan.steps, &cur);
                match states_by_set.get(&mask) {
                    Some(prev) => assert_eq!(
                        prev, &state,
                        "{tag}: wave {wi} interleaving {perm:?} reached a different \
                         config for the same applied set"
                    ),
                    None => {
                        let cold =
                            check_configs(net, scope, base, &state, &[], &CheckConfig::default())
                                .expect("cold interleaving");
                        assert!(
                            cold.outcome.is_consistent(),
                            "{tag}: wave {wi} interleaving {perm:?} passed through an \
                             unsafe state at {cur:?}"
                        );
                        states_by_set.insert(mask, state);
                    }
                }
            }
        }
    }
    // The full chain lands exactly on the target diff.
    assert_eq!(applied.len(), plan.steps.len(), "{tag}: all steps applied");
}

/// Oracle 3 for one infeasible verdict: exhaustive lattice enumeration
/// confirms no safe ordering of the full step set, none of the core on
/// its own, and one for every core-minus-one-member subset.
fn verify_core_exhaustively(
    net: &Network,
    scope: &Scope,
    base: &AclConfig,
    plan: &RolloutPlan,
    core: &[usize],
    tag: &str,
) {
    assert!(!core.is_empty(), "{tag}: empty infeasibility core");
    let mut lattice = Lattice {
        net,
        scope,
        base,
        steps: &plan.steps,
        memo: HashMap::new(),
    };
    let universe: u32 = (0..plan.steps.len()).map(|i| 1u32 << i).sum();
    assert!(
        !lattice.feasible(universe),
        "{tag}: planner said infeasible but exhaustive enumeration found a safe ordering"
    );
    let core_mask: u32 = core.iter().map(|&i| 1u32 << i).sum();
    assert!(
        !lattice.feasible(core_mask),
        "{tag}: core {core:?} admits a safe ordering on its own"
    );
    for &i in core {
        let without = core_mask & !(1u32 << i);
        assert!(
            lattice.feasible(without),
            "{tag}: core not deletion-minimal — dropping step {i} ({}) is still infeasible",
            plan.steps[i].device
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism across repeated synthesis: same inputs, same artifact —
// including the stats block (the search itself is deterministic).
// ---------------------------------------------------------------------------

#[test]
fn synthesis_is_deterministic() {
    let mut rng = Rng::new(1729);
    let sc = diamond(&mut rng);
    let scope = Scope::whole(sc.net.topology());
    let base = random_config(&mut rng, &sc);
    let target = random_target(&mut rng, &sc, &base);
    let run = || {
        synthesize(
            &sc.net,
            &scope,
            &[],
            &base,
            &target,
            &CheckConfig::default(),
            &PlanConfig::default(),
        )
        .expect("synthesize")
    };
    let a = run();
    let b = run();
    assert_eq!(canon_plan(&a), canon_plan(&b));
    // pairs_ceiling dominates the dirty-pair work by the ≥2× margin the
    // BENCH gate enforces (differential sessions beat cold replay).
    if a.stats.prefix_checks > 0 {
        assert!(
            a.stats.dirty_pairs * 2 <= a.stats.pairs_ceiling,
            "dirty {} ceiling {}",
            a.stats.dirty_pairs,
            a.stats.pairs_ceiling
        );
    }
}

