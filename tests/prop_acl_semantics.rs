//! Property tests over ACL semantics: parsing, evaluation vs compiled
//! permit-sets, simplification, the differential-rule machinery (Theorem
//! 4.1), and both solver encodings against concrete evaluation.

use jinjing_acl::diff::AclDiff;
use jinjing_acl::parse::{parse_acl, parse_rule};
use jinjing_acl::simplify::simplify;
use jinjing_acl::{Acl, Action, IpPrefix, MatchSpec, Packet, PortRange, Proto, Rule};
use jinjing_solver::aclenc::{encode, Encoding};
use jinjing_solver::cdcl::SolveResult;
use jinjing_solver::{CircuitBuilder, HeaderVars};
use proptest::prelude::*;

#[allow(dead_code)]
fn prefix() -> impl Strategy<Value = IpPrefix> {
    (any::<u32>(), 0u32..=32).prop_map(|(a, l)| IpPrefix::new(a, l))
}

/// Prefixes clustered in a small space so rules overlap (like real ACLs).
fn clustered_prefix() -> impl Strategy<Value = IpPrefix> {
    (0u32..16, 8u32..=24).prop_map(|(n, l)| IpPrefix::new(n << 24 | 0x0001_0000, l))
}

fn match_spec() -> impl Strategy<Value = MatchSpec> {
    (
        prop_oneof![3 => Just(IpPrefix::any()), 1 => clustered_prefix()],
        prop_oneof![1 => Just(IpPrefix::any()), 3 => clustered_prefix()],
        prop_oneof![3 => Just(PortRange::any()), 1 => (0u16..100).prop_map(|l| PortRange::new(l, l + 900))],
        prop_oneof![3 => Just(PortRange::any()), 1 => (0u16..1000).prop_map(|l| PortRange::new(l, l + 23))],
        prop_oneof![4 => Just(None), 1 => Just(Some(Proto::Tcp)), 1 => Just(Some(Proto::Udp))],
    )
        .prop_map(|(src, dst, sport, dport, proto)| MatchSpec {
            src,
            dst,
            sport,
            dport,
            proto,
        })
}

fn rule() -> impl Strategy<Value = Rule> {
    (any::<bool>(), match_spec()).prop_map(|(permit, m)| Rule::new(Action::from_bool(permit), m))
}

fn acl() -> impl Strategy<Value = Acl> {
    (prop::collection::vec(rule(), 0..8), any::<bool>())
        .prop_map(|(rules, dp)| Acl::new(rules, Action::from_bool(dp)))
}

/// Packets biased into the clustered space so they actually hit rules.
fn packet() -> impl Strategy<Value = Packet> {
    (
        prop_oneof![1 => any::<u32>(), 2 => (0u32..16, any::<u16>()).prop_map(|(n, x)| n << 24 | 0x0001_0000 | x as u32)],
        prop_oneof![1 => any::<u32>(), 2 => (0u32..16, any::<u16>()).prop_map(|(n, x)| n << 24 | 0x0001_0000 | x as u32)],
        any::<u16>(),
        0u16..1100,
        prop_oneof![Just(6u8), Just(17u8), any::<u8>()],
    )
        .prop_map(|(s, d, sp, dp, pr)| Packet::new(s, d, sp, dp, pr))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display → parse is the identity for rules.
    #[test]
    fn rule_roundtrip(r in rule()) {
        let printed = r.to_string();
        let back = parse_rule(&printed).expect("printed rule parses");
        prop_assert_eq!(back, r, "{}", printed);
    }

    /// Display → parse is the identity for whole ACLs.
    #[test]
    fn acl_roundtrip(a in acl()) {
        let printed = a.to_string().replace("(default ", "default ").replace(')', "");
        let back = parse_acl(&printed).expect("printed acl parses");
        prop_assert_eq!(back.rules(), a.rules());
        prop_assert_eq!(back.default_action(), a.default_action());
    }

    /// The compiled permit-set agrees with first-match evaluation.
    #[test]
    fn permit_set_matches_eval(a in acl(), p in packet()) {
        prop_assert_eq!(a.permit_set().contains(&p), a.permits(&p));
    }

    /// Simplification preserves the decision model and never grows.
    #[test]
    fn simplify_preserves_semantics(a in acl(), p in packet()) {
        let (s, stats) = simplify(&a);
        prop_assert!(s.len() <= a.len());
        prop_assert_eq!(stats.after, s.len());
        prop_assert_eq!(s.eval(&p), a.eval(&p));
        prop_assert!(s.equivalent(&a));
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_idempotent(a in acl()) {
        let (s1, _) = simplify(&a);
        let (s2, _) = simplify(&s1);
        prop_assert_eq!(s1.rules(), s2.rules());
    }

    /// Theorem 4.1, concretely: wherever the full pair disagrees, the
    /// packet lies in the differential cover, and the reduced pair
    /// reproduces the disagreement pattern on the cover.
    #[test]
    fn theorem_4_1(a in acl(), b in acl(), p in packet()) {
        let d = AclDiff::compute(&a, &b);
        let full_agree = a.permits(&p) == b.permits(&p);
        if !full_agree {
            prop_assert!(d.cover.contains(&p), "disagreement outside cover");
        }
        if d.cover.contains(&p) {
            // Inside the cover, reduced decisions equal full decisions.
            prop_assert_eq!(d.reduced_before.permits(&p), a.permits(&p));
            prop_assert_eq!(d.reduced_after.permits(&p), b.permits(&p));
        } else {
            // Outside, the reduced pair agrees with itself.
            prop_assert_eq!(
                d.reduced_before.permits(&p),
                d.reduced_after.permits(&p)
            );
        }
    }

    /// An ACL diffed with itself is unchanged.
    #[test]
    fn self_diff_is_empty(a in acl()) {
        let d = AclDiff::compute(&a, &a.clone());
        prop_assert!(d.is_unchanged());
        prop_assert!(d.cover.is_empty());
    }

    /// Both circuit encodings agree with concrete evaluation.
    #[test]
    fn encodings_match_eval(a in acl(), p in packet()) {
        for enc in [Encoding::Sequential, Encoding::Tree] {
            let mut c = CircuitBuilder::new();
            let h = HeaderVars::new(&mut c);
            let g = encode(&mut c, &h, &a, enc);
            h.assert_packet(&mut c, &p);
            prop_assert_eq!(c.solve(), SolveResult::Sat);
            prop_assert_eq!(c.model_value(g), a.permits(&p), "{:?} on {}", enc, p);
        }
    }

    /// The two encodings are equisatisfiable (solver-proved equivalence).
    #[test]
    fn encodings_equivalent(a in acl()) {
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let s = jinjing_solver::aclenc::encode_sequential(&mut c, &h, &a);
        let t = jinjing_solver::aclenc::encode_tree(&mut c, &h, &a);
        let eq = c.iff(s, t);
        c.assert(!eq);
        prop_assert_eq!(c.solve(), SolveResult::Unsat);
    }

    /// `hit_rules` returns exactly the first-match rules of the members.
    #[test]
    fn hit_rules_sound(a in acl(), p in packet()) {
        let hits = a.hit_rules(&jinjing_acl::PacketSet::singleton(&p));
        match a.first_match(&p) {
            Some(i) => prop_assert_eq!(hits, vec![i]),
            None => prop_assert!(hits.is_empty()),
        }
    }
}
