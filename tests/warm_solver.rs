//! Property tests for the warm solver layer (PR: warm incremental
//! solving).
//!
//! Three contracts are pinned here:
//!
//! 1. **Warm-incremental ≡ from-scratch.** A long-lived CDCL instance
//!    answering assumption-scoped queries — with glucose-style clause-DB
//!    reduction forced to fire aggressively — returns exactly the
//!    SAT/UNSAT verdicts a fresh solver would, on xorshift-random CNF and
//!    random assumption sweeps, including re-asks of earlier assumption
//!    sets after further search and reductions.
//! 2. **Totaliser ≡ cardinality count.** The generalised totaliser's
//!    output literals agree with the naive popcount oracle (and with the
//!    sequential-counter encoder on the same circuit) under random forced
//!    assignments.
//! 3. **Byte-identity of the goldens.** The committed check / fix / watch
//!    goldens hold verbatim at threads {1, 4} × warm layer {on, off},
//!    including a single [`ScopeSolver`] shared across renders — the warm
//!    layer may never change a report, only its cost.

use jinjing_core::engine::EngineConfig;
use jinjing_core::figure1::Figure1;
use jinjing_core::query::{run_query, watch_query};
use jinjing_core::warm::ScopeSolver;
use jinjing_solver::card::counter_outputs;
use jinjing_solver::cdcl::{SolveResult, Solver};
use jinjing_solver::lit::{Lit, Var};
use jinjing_solver::totaliser::totaliser_outputs;
use jinjing_solver::CircuitBuilder;
use std::path::PathBuf;
use std::sync::Arc;

/// xorshift64* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_lit(rng: &mut XorShift, nvars: usize) -> Lit {
    Lit::new(Var(rng.below(nvars as u64) as u32), rng.below(2) == 0)
}

/// Random 3-CNF near the satisfiability threshold (ratio ~4.3): a mix of
/// satisfiable and unsatisfiable instances across seeds, hard enough that
/// search restarts (and therefore DB reductions) actually fire.
fn random_cnf(rng: &mut XorShift, nvars: usize) -> Vec<Vec<Lit>> {
    (0..nvars * 43 / 10)
        .map(|_| (0..3).map(|_| random_lit(rng, nvars)).collect())
        .collect()
}

/// From-scratch verdict: a fresh solver over the same clauses and the
/// same assumptions, no carried-over learned clauses or heuristic state.
fn scratch_solve(nvars: usize, clauses: &[Vec<Lit>], assumptions: &[Lit]) -> SolveResult {
    let mut s = Solver::new();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    s.solve_with(assumptions)
}

#[test]
fn warm_incremental_agrees_with_scratch_across_db_reductions() {
    let mut total_reductions = 0u64;
    for seed in 1..=16u64 {
        let mut rng = XorShift::new(seed);
        let nvars = 40 + rng.below(21) as usize;
        let clauses = random_cnf(&mut rng, nvars);

        // The warm instance: every learned clause immediately eligible
        // for reduction, so the DB is churned constantly while the
        // assumption sweeps run.
        let mut warm = Solver::new();
        warm.set_reduce_interval(1, 0);
        for _ in 0..nvars {
            warm.new_var();
        }
        for c in &clauses {
            warm.add_clause(c);
        }

        // Base solve before the assumption sweeps: restarts (and the
        // reductions hung off them) need ~64 conflicts within a single
        // solve call, which only the first full search reaches — later
        // sweeps ride on the learned clauses it leaves behind.
        assert_eq!(
            warm.solve(),
            scratch_solve(nvars, &clauses, &[]),
            "seed {seed}: base solve diverged from scratch"
        );

        let mut history: Vec<(Vec<Lit>, SolveResult)> = Vec::new();
        for sweep in 0..12 {
            let mut assumptions: Vec<Lit> =
                (0..rng.below(4)).map(|_| random_lit(&mut rng, nvars)).collect();
            assumptions.sort();
            assumptions.dedup();
            let got = warm.solve_with(&assumptions);
            let want = scratch_solve(nvars, &clauses, &assumptions);
            assert_eq!(
                got, want,
                "seed {seed} sweep {sweep}: warm diverged from scratch under {assumptions:?}"
            );
            if got == SolveResult::Sat {
                // The warm model must actually satisfy clauses and
                // assumptions — reductions must never delete reasons out
                // from under a model.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| warm.model_value(l)),
                        "seed {seed} sweep {sweep}: model falsifies a clause"
                    );
                }
                for &a in &assumptions {
                    assert!(
                        warm.model_value(a),
                        "seed {seed} sweep {sweep}: model falsifies an assumption"
                    );
                }
            }
            history.push((assumptions, got));
            // Re-ask an earlier assumption set: later search and DB
            // reductions must not flip a recorded verdict.
            let (earlier, verdict) = &history[sweep / 2];
            assert_eq!(
                warm.solve_with(earlier),
                *verdict,
                "seed {seed} sweep {sweep}: re-ask of {earlier:?} flipped"
            );
        }
        total_reductions += warm.stats().db_reductions;
    }
    // The equivalence above is only meaningful if reduction actually ran:
    // with the trigger armed at every learned clause, the sweep must have
    // churned the clause DB somewhere across the seeds.
    assert!(
        total_reductions > 0,
        "no DB reduction fired across any seed — the sweep is not \
         exercising the reduction path"
    );
}

#[test]
fn totaliser_matches_popcount_and_sequential_counter() {
    for seed in 1..=24u64 {
        let mut rng = XorShift::new(seed ^ 0xD1CE);
        let n = 1 + rng.below(9) as usize;
        let mut b = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..n).map(|_| b.input()).collect();
        let tot = totaliser_outputs(&mut b, &inputs);
        let seq = counter_outputs(&mut b, &inputs);
        assert_eq!(tot.len(), n);
        assert_eq!(seq.len(), n);
        // Force a random assignment of the inputs and read both encoders'
        // unary outputs against the popcount oracle.
        let bits: Vec<bool> = (0..n).map(|_| rng.below(2) == 0).collect();
        for (l, bit) in inputs.iter().zip(&bits) {
            b.assert(if *bit { *l } else { !*l });
        }
        assert_eq!(b.solve(), SolveResult::Sat, "seed {seed}: forced assignment");
        let count = bits.iter().filter(|&&x| x).count();
        for j in 0..n {
            assert_eq!(
                b.model_value(tot[j]),
                count > j,
                "seed {seed}: totaliser out[{j}] wrong for popcount {count} of {n}"
            );
            assert_eq!(
                b.model_value(seq[j]),
                count > j,
                "seed {seed}: sequential out[{j}] wrong for popcount {count} of {n}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Golden byte-identity: warm on/off × threads 1/4.
// ---------------------------------------------------------------------

/// The running example intent pinned by `tests/cli_golden.rs`.
const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

/// The watch-session delta stream pinned by `tests/cli_golden.rs`.
const WATCH_DELTAS: &str = r#"
step rewrite-a1
set A:1 deny dst 6.0.0.0/8; deny dst 6.1.0.0/16; default permit

step open-d2
set D:2 default permit

step noop
"#;

/// Locate `tests/golden/` from the repo root (offline harness) or the
/// `crates/tests` package dir (cargo).
fn golden(name: &str) -> String {
    for cand in ["tests/golden", "../../tests/golden"] {
        let p = PathBuf::from(cand).join(name);
        if p.is_file() {
            return std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
        }
    }
    panic!("golden file {name} not found from {:?}", std::env::current_dir());
}

/// An engine config with the warm layer explicitly on (optionally a
/// shared instance) or off, at a given thread count.
fn engine_cfg(threads: usize, warm: Option<Arc<ScopeSolver>>) -> EngineConfig {
    let mut cfg = EngineConfig {
        threads,
        ..EngineConfig::default()
    };
    cfg.check.warm = warm.clone();
    cfg.fix.check.warm = warm;
    cfg
}

#[test]
fn goldens_hold_warm_on_and_off_at_threads_1_and_4() {
    let check_src = format!("{RUNNING_EXAMPLE_BODY}check\n");
    let fix_src = format!("{RUNNING_EXAMPLE_BODY}fix\n");
    let want_check = golden("check.json");
    let want_fix = golden("fix.json");
    let want_watch = golden("watch.json");
    for threads in [1usize, 4] {
        // One ScopeSolver shared across every warm render at this thread
        // count: later renders replay families the earlier ones built,
        // which is exactly the reuse the byte-identity contract covers.
        let shared = Arc::new(ScopeSolver::new());
        for warm in [None, Some(Arc::clone(&shared)), Some(Arc::clone(&shared))] {
            let fig = Figure1::new();
            let label = if warm.is_some() { "warm" } else { "cold" };
            let got = run_query(&fig.net, &fig.config, &check_src, &engine_cfg(threads, warm.clone()))
                .expect("check runs")
                .plan
                .to_canonical_json();
            assert_eq!(got, want_check, "check.json drifted ({label}, {threads} threads)");
            let got = run_query(&fig.net, &fig.config, &fix_src, &engine_cfg(threads, warm.clone()))
                .expect("fix runs")
                .plan
                .to_canonical_json();
            assert_eq!(got, want_fix, "fix.json drifted ({label}, {threads} threads)");
            let out = watch_query(
                &fig.net,
                &fig.config,
                &check_src,
                WATCH_DELTAS,
                &engine_cfg(threads, warm),
            )
            .expect("watch runs");
            assert_eq!(out.rejected, 1, "the open-d2 step must be rejected");
            assert_eq!(
                out.to_canonical_json(),
                want_watch,
                "watch.json drifted ({label}, {threads} threads)"
            );
        }
        assert!(
            shared.stats().replays > 0,
            "the shared warm layer must have replayed families across renders"
        );
    }
}
