//! Differential oracle suite for the incremental re-check engine
//! (`jinjing_core::incr`): the strongest evidence for the session
//! engine's equivalence contract.
//!
//! Three oracles, in increasing strictness:
//!
//! 1. **Cold-check oracle.** On xorshift-random diamond networks, apply
//!    50-step random edit sequences and assert every
//!    [`CheckSession::recheck`] report is *byte-identical* (modulo
//!    wall-clock) to a cold [`check_configs`] of the same before/after
//!    pair — across threads {1, 4} × query-cache {on, off}, all four
//!    variants fed the same delta stream.
//! 2. **Witness certification.** Every inconsistent verdict's witness is
//!    replayed concretely: the packet really does flip its decision on
//!    the reported path.
//! 3. **Brute-force packet sampling.** On tiny configurations whose rules
//!    live on a known /8–/16 lattice, a sample hitting every lattice cell
//!    is *exhaustive*, so the sampled verdict must equal the engine's in
//!    both directions.
//!
//! A fourth test pins the observability contract: a session re-check
//! emits the same span tree as a cold check modulo the `incr.*` spans,
//! plus the `check.incr_*` counters.
//!
//! The whole file is std-only (hand-rolled xorshift, no proptest/serde)
//! so `scripts/offline_check.sh` runs it with bare rustc.

use jinjing_acl::{Acl, Action, IpPrefix, Packet, PacketSet, Rule};
use jinjing_core::check::{check_configs, CheckConfig, CheckOutcome, CheckReport};
use jinjing_core::{CheckSession, Delta, IncrConfig, QueryCache};
use jinjing_net::fib::{pfx, prefix_set};
use jinjing_net::{AclConfig, Network, Scope, Slot, TopologyBuilder};
use jinjing_obs::SpanSnapshot;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic randomness: xorshift64* (std-only, seed-stable).
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

// ---------------------------------------------------------------------------
// Random diamond networks: S ─{M1,M2}─ T with per-prefix routing choice.
// ---------------------------------------------------------------------------

/// A generated scenario: the network, the ACL-candidate slots, and the
/// announced /8 prefixes `1..=prefixes`.
struct Scenario {
    net: Network,
    slots: Vec<Slot>,
    prefixes: u32,
}

/// Build a diamond S→{M1,M2}→T. Each announced prefix is routed through
/// the upper branch, the lower branch or both (ECMP) — giving the FEC
/// refinement and the path enumeration something to chew on.
fn diamond(rng: &mut Rng) -> Scenario {
    let mut tb = TopologyBuilder::new();
    let s = tb.device("S");
    let m1 = tb.device("M1");
    let m2 = tb.device("M2");
    let t = tb.device("T");
    let s_ext = tb.iface(s, "ext");
    let s_u = tb.iface(s, "u");
    let s_d = tb.iface(s, "d");
    let m1_l = tb.iface(m1, "l");
    let m1_r = tb.iface(m1, "r");
    let m2_l = tb.iface(m2, "l");
    let m2_r = tb.iface(m2, "r");
    let t_u = tb.iface(t, "u");
    let t_d = tb.iface(t, "d");
    let t_ext = tb.iface(t, "ext");
    tb.link(s_u, m1_l);
    tb.link(m1_r, t_u);
    tb.link(s_d, m2_l);
    tb.link(m2_r, t_d);
    let mut net = Network::new(tb.build());

    let prefixes = 2 + rng.below(3) as u32; // 2..=4 announced /8s
    let p = |n: u32| pfx(&format!("{n}.0.0.0/8"));
    let mut entering = PacketSet::empty();
    for n in 1..=prefixes {
        // Route the prefix up, down, or both ways out of S.
        match rng.below(3) {
            0 => {
                net.fib_mut(s).add(p(n), s_u);
            }
            1 => {
                net.fib_mut(s).add(p(n), s_d);
            }
            _ => {
                net.fib_mut(s).add(p(n), s_u);
                net.fib_mut(s).add(p(n), s_d);
            }
        }
        net.fib_mut(m1).add(p(n), m1_r);
        net.fib_mut(m2).add(p(n), m2_r);
        net.fib_mut(t).add(p(n), t_ext);
        net.announce(p(n), t_ext);
        entering = entering.union(&prefix_set(&p(n)));
    }
    net.set_entering(s_ext, entering);

    let slots = vec![
        Slot::ingress(s_ext),
        Slot::egress(s_u),
        Slot::egress(s_d),
        Slot::ingress(m1_l),
        Slot::ingress(m2_l),
        Slot::ingress(t_u),
        Slot::ingress(t_d),
        Slot::egress(t_ext),
    ];
    Scenario {
        net,
        slots,
        prefixes,
    }
}

/// A random destination-prefix rule on the /8–/16 lattice: `n.0.0.0/8`
/// or `n.sub.0.0/16` with `sub < 4`.
fn random_rule(rng: &mut Rng, prefixes: u32) -> Rule {
    let n = 1 + rng.below(prefixes as usize) as u32;
    let permit = rng.chance(50);
    if rng.chance(50) {
        Rule::on_dst(Action::from_bool(permit), IpPrefix::new(n << 24, 8))
    } else {
        let sub = rng.below(4) as u32;
        Rule::on_dst(
            Action::from_bool(permit),
            IpPrefix::new(n << 24 | sub << 16, 16),
        )
    }
}

fn random_acl(rng: &mut Rng, prefixes: u32) -> Acl {
    let n_rules = 1 + rng.below(3);
    let rules = (0..n_rules).map(|_| random_rule(rng, prefixes)).collect();
    let default = Action::from_bool(rng.chance(80));
    Acl::new(rules, default)
}

fn random_config(rng: &mut Rng, sc: &Scenario) -> AclConfig {
    let mut cfg = AclConfig::new();
    for &slot in &sc.slots {
        if rng.chance(40) {
            cfg.set(slot, random_acl(rng, sc.prefixes));
        }
    }
    cfg
}

/// A random 1–2-edit delta: mostly rewrites, some clears.
fn random_delta(rng: &mut Rng, sc: &Scenario) -> Delta {
    let mut d = Delta::new();
    for _ in 0..1 + rng.below(2) {
        let slot = sc.slots[rng.below(sc.slots.len())];
        if rng.chance(25) {
            d = d.clear(slot);
        } else {
            d = d.set(slot, random_acl(rng, sc.prefixes));
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Canonical report rendering: everything but wall-clock.
// ---------------------------------------------------------------------------

fn canon(r: &CheckReport) -> String {
    format!(
        "{:?}|{}|{}|{:?}|{}|{}",
        r.outcome, r.fec_count, r.paths_checked, r.solver_stats, r.encoded_rules, r.total_rules
    )
}

/// Certify an inconsistency witness concretely: the packet really flips
/// on the reported path (no controls, so "desired" is the before-decision).
fn certify_witness(r: &CheckReport, before: &AclConfig, after: &AclConfig) {
    if let CheckOutcome::Inconsistent(v) = &r.outcome {
        assert_eq!(
            before.path_permits(&v.path, &v.packet),
            v.desired,
            "witness `desired` must be the before-decision"
        );
        assert_eq!(
            after.path_permits(&v.path, &v.packet),
            v.actual,
            "witness `actual` must be the after-decision"
        );
        assert_ne!(v.desired, v.actual, "witness must actually disagree");
    }
}

// ---------------------------------------------------------------------------
// Oracle 1+2: 50-step random edit sequences, four session variants each
// byte-identical to a per-step cold check, all witnesses certified.
// ---------------------------------------------------------------------------

const STEPS: usize = 50;

#[test]
fn random_edit_sequences_match_cold_checks() {
    for seed in [1u64, 7, 42] {
        let mut rng = Rng::new(seed);
        let sc = diamond(&mut rng);
        let scope = Scope::whole(sc.net.topology());
        let base0 = random_config(&mut rng, &sc);

        // threads {1, 4} × cache {on, off}: the same delta stream drives
        // all four sessions.
        let mut sessions = Vec::new();
        let mut labels = Vec::new();
        for threads in [1usize, 4] {
            for cache_on in [true, false] {
                let cfg = CheckConfig {
                    threads,
                    cache: cache_on.then(|| Arc::new(QueryCache::new())),
                    ..CheckConfig::default()
                };
                sessions.push(
                    CheckSession::with_configs(
                        &sc.net,
                        scope.clone(),
                        Vec::new(),
                        base0.clone(),
                        cfg,
                        IncrConfig::default(),
                    )
                    .expect("session opens"),
                );
                labels.push(format!("threads={threads} cache={cache_on}"));
            }
        }

        let mut base = base0;
        let mut inconsistent_steps = 0usize;
        for step in 0..STEPS {
            let delta = random_delta(&mut rng, &sc);
            let after = delta.applied_to(&base);
            // The definition of "cold": a fresh default config (fresh
            // cache) with no session state at all.
            let want = check_configs(&sc.net, &scope, &base, &after, &[], &CheckConfig::default())
                .expect("cold check");
            certify_witness(&want, &base, &after);
            let want_canon = canon(&want);
            let consistent = want.outcome.is_consistent();
            if !consistent {
                inconsistent_steps += 1;
            }
            for (vi, session) in sessions.iter_mut().enumerate() {
                let got = session.recheck(&delta).expect("recheck");
                assert_eq!(
                    canon(&got.report),
                    want_canon,
                    "seed {seed} step {step} [{}] diverged from cold check",
                    labels[vi]
                );
                assert_eq!(
                    got.applied, consistent,
                    "seed {seed} step {step} [{}]: default policy applies consistent deltas only",
                    labels[vi]
                );
                assert_eq!(
                    got.incr.dirty_classes + got.incr.clean_classes,
                    if got.report.fec_count == 0 {
                        got.incr.clean_classes
                    } else {
                        session.class_count()
                    },
                    "seed {seed} step {step} [{}]: class ledger adds up",
                    labels[vi]
                );
            }
            // The cold oracle's base advances exactly when the sessions'
            // bases do (the default `IncrConfig` policy).
            if consistent {
                base = after;
            }
        }
        // The generator must exercise both verdicts, or the oracle is vacuous.
        assert!(
            inconsistent_steps > 0 && inconsistent_steps < STEPS,
            "seed {seed}: degenerate sequence ({inconsistent_steps}/{STEPS} inconsistent)"
        );
        for (vi, session) in sessions.iter().enumerate() {
            assert_eq!(session.steps(), STEPS as u64, "[{}]", labels[vi]);
            assert_eq!(session.base(), &base, "[{}] bases converge", labels[vi]);
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle 3: brute-force packet sampling on tiny configs. Rules live on
// the /8–/16 lattice with second octet < 4, so sampling second octets
// 0..=4 hits every decision region — the sample is exhaustive and the
// verdicts must agree in BOTH directions.
// ---------------------------------------------------------------------------

fn sample_packets(prefixes: u32) -> Vec<Packet> {
    let mut v = Vec::new();
    for n in 1..=prefixes {
        for sub in 0..=4u32 {
            v.push(Packet::to_dst(n << 24 | sub << 16 | 0x0001));
        }
    }
    v
}

/// Brute force: does any sampled packet flip its decision on any path
/// that carries it?
fn sampled_inconsistent(
    net: &Network,
    scope: &Scope,
    before: &AclConfig,
    after: &AclConfig,
    samples: &[Packet],
) -> bool {
    samples.iter().any(|p| {
        let single = PacketSet::singleton(p);
        net.all_paths_for_class(scope, &single)
            .iter()
            .filter(|path| path.carried.contains(p))
            .any(|path| before.path_permits(path, p) != after.path_permits(path, p))
    })
}

#[test]
fn packet_sampling_oracle_agrees_on_tiny_configs() {
    for seed in [3u64, 11] {
        let mut rng = Rng::new(seed);
        let sc = diamond(&mut rng);
        let scope = Scope::whole(sc.net.topology());
        let samples = sample_packets(sc.prefixes);
        let mut session = CheckSession::with_configs(
            &sc.net,
            scope.clone(),
            Vec::new(),
            random_config(&mut rng, &sc),
            CheckConfig::default(),
            IncrConfig::default(),
        )
        .expect("session opens");

        for step in 0..20 {
            let delta = random_delta(&mut rng, &sc);
            let before = session.base().clone();
            let after = delta.applied_to(&before);
            let brute = sampled_inconsistent(&sc.net, &scope, &before, &after, &samples);
            let got = session.recheck(&delta).expect("recheck");
            assert_eq!(
                !got.report.outcome.is_consistent(),
                brute,
                "seed {seed} step {step}: engine verdict vs exhaustive packet sampling"
            );
            certify_witness(&got.report, &before, &after);
        }
    }
}

// ---------------------------------------------------------------------------
// Observability contract: a session re-check's span tree equals a cold
// check's modulo the `incr.*` spans, and the incremental counters exist
// only on the session side.
// ---------------------------------------------------------------------------

/// Flatten a span tree to `depth:name:count` lines, dropping `incr.*`
/// subtrees (session bookkeeping) wherever they appear.
fn span_shape(span: &SpanSnapshot, depth: usize, out: &mut Vec<String>) {
    if span.name.starts_with("incr.") {
        return;
    }
    out.push(format!("{depth}:{}:{}", span.name, span.count));
    for child in &span.children {
        span_shape(child, depth + 1, out);
    }
}

#[test]
fn session_span_tree_matches_cold_check_modulo_incr() {
    let mut rng = Rng::new(99);
    let sc = diamond(&mut rng);
    let scope = Scope::whole(sc.net.topology());
    let base = random_config(&mut rng, &sc);
    let delta = random_delta(&mut rng, &sc);
    let after = delta.applied_to(&base);

    let cold_cfg = CheckConfig::default();
    let _ = check_configs(&sc.net, &scope, &base, &after, &[], &cold_cfg).expect("cold");
    let cold_snap = cold_cfg.obs.snapshot();

    let warm_cfg = CheckConfig::default();
    let mut session = CheckSession::with_configs(
        &sc.net,
        scope,
        Vec::new(),
        base,
        warm_cfg.clone(),
        IncrConfig::default(),
    )
    .expect("session opens");
    let _ = session.recheck(&delta).expect("recheck");
    let warm_snap = warm_cfg.obs.snapshot();

    let mut cold_shape = Vec::new();
    span_shape(&cold_snap.spans, 0, &mut cold_shape);
    let mut warm_shape = Vec::new();
    span_shape(&warm_snap.spans, 0, &mut warm_shape);
    assert_eq!(
        warm_shape, cold_shape,
        "session span tree must equal the cold check's modulo incr.* spans"
    );

    // Incremental counters: session-only, and consistent with the ledger.
    assert_eq!(cold_snap.counter("check.incr_dirty"), 0);
    assert_eq!(cold_snap.counter("check.incr_clean"), 0);
    let dirty = warm_snap.counter("check.incr_dirty");
    let clean = warm_snap.counter("check.incr_clean");
    assert_eq!(
        dirty + clean,
        session.class_count() as u64,
        "incr counters partition the class set"
    );
    assert!(
        warm_snap.counter("check.incr_dirty_pairs") >= dirty,
        "every dirty class contributes at least one (class, path) pair"
    );
}

// ---------------------------------------------------------------------------
// Cover-memo contract: per-slot differential covers are hoisted into the
// session (`SessionMemo`), so re-probing a state with the same per-slot
// `(before, after)` ACL pairs must not recompute any diff — pinned by the
// session-only `incr.cover_rebuilds` counter.
// ---------------------------------------------------------------------------

#[test]
fn probe_covers_are_hoisted_into_the_session() {
    let mut rng = Rng::new(123);
    let sc = diamond(&mut rng);
    let scope = Scope::whole(sc.net.topology());
    let base = random_config(&mut rng, &sc);
    let after = loop {
        let d = random_delta(&mut rng, &sc);
        let a = d.applied_to(&base);
        if a != base {
            break a;
        }
    };

    let cfg = CheckConfig::default();
    let session = CheckSession::with_configs(
        &sc.net,
        scope.clone(),
        Vec::new(),
        base.clone(),
        cfg.clone(),
        IncrConfig::default(),
    )
    .expect("session opens");

    let (r1, _) = session.probe(&after).expect("first probe");
    let first = cfg.obs.snapshot().counter("incr.cover_rebuilds");
    assert!(first > 0, "the first probe must compute per-slot covers");

    // Same state again: every (slot, before, after) pair hits the memo.
    let (r2, _) = session.probe(&after).expect("second probe");
    let second = cfg.obs.snapshot().counter("incr.cover_rebuilds");
    assert_eq!(
        second, first,
        "re-probing the same state must replay hoisted covers, not rebuild them"
    );
    assert_eq!(canon(&r1), canon(&r2), "probe reports are deterministic");

    // Cold snapshots stay free of the incr counter family entirely.
    let cold_cfg = CheckConfig::default();
    let _ = check_configs(&sc.net, &scope, &base, &after, &[], &cold_cfg).expect("cold");
    assert_eq!(
        cold_cfg.obs.snapshot().counter("incr.cover_rebuilds"),
        0,
        "cold checks never emit incr.cover_rebuilds"
    );
}
