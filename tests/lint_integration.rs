//! Cross-crate integration tests for jinjing-lint: at least one fixture per
//! diagnostic code, byte-stable JSON, solver-confirmed vs heuristic shadow
//! findings, and the engine/CLI packaging.
//!
//! The spec-layer tests (JL201/JL202) need `jinjing-net`'s `spec` feature
//! (serde); they are compiled out under `--cfg jinjing_offline`, where the
//! dependency-free build disables that feature.

use jinjing_acl::AclBuilder;
use jinjing_core::engine::ReportKind;
use jinjing_lint::{lint_acl, lint_config, lint_program, Certainty, LintConfig, Severity};
use jinjing_net::{AclConfig, Dir, Network, Slot, TopologyBuilder};

/// A -0in-> A -1-> B -0-> B:1 out, with 1.0.0.0/8 announced behind B:1.
fn chain() -> (Network, Slot) {
    let mut tb = TopologyBuilder::new();
    let a = tb.device("A");
    let a0 = tb.iface(a, "0");
    let a1 = tb.iface(a, "1");
    let b = tb.device("B");
    let b0 = tb.iface(b, "0");
    let b1 = tb.iface(b, "1");
    tb.link(a1, b0);
    let mut net = Network::new(tb.build());
    net.announce(jinjing_acl::parse::parse_prefix("1.0.0.0/8").unwrap(), b1);
    net.compute_routes();
    (
        net,
        Slot {
            iface: a0,
            dir: Dir::In,
        },
    )
}

fn program(src: &str) -> jinjing_lai::Program {
    jinjing_lai::validate(jinjing_lai::parse_program(src).unwrap()).unwrap()
}

// ---------------------------------------------------------------- rule layer

#[test]
fn jl001_full_shadow_is_solver_confirmed_by_default() {
    let acl = AclBuilder::default_permit()
        .deny_dst("1.0.0.0/8")
        .deny_dst("1.2.0.0/16")
        .build();
    let r = lint_acl("t", &acl, &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
    assert_eq!(d.location, "t:rule:1");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.certainty, Some(Certainty::SolverConfirmed));
}

#[test]
fn jl001_is_heuristic_when_solver_confirm_is_off() {
    let acl = AclBuilder::default_permit()
        .deny_dst("1.0.0.0/8")
        .deny_dst("1.2.0.0/16")
        .build();
    let cfg = LintConfig {
        solver_confirm: false,
        ..LintConfig::default()
    };
    let r = lint_acl("t", &acl, &cfg);
    let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
    assert_eq!(d.certainty, Some(Certainty::Heuristic));
}

#[test]
fn jl002_partial_shadow() {
    let acl = AclBuilder::default_permit()
        .deny_dst("1.0.0.0/8")
        .deny_dst("1.0.0.0/7") // half pre-empted by the /8 above
        .build();
    let r = lint_acl("t", &acl, &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL002").unwrap();
    assert_eq!(d.location, "t:rule:1");
    assert_eq!(d.severity, Severity::Note);
}

#[test]
fn jl003_redundant_rule() {
    let acl = AclBuilder::default_permit().permit_dst("9.0.0.0/8").build();
    let r = lint_acl("t", &acl, &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL003").unwrap();
    assert_eq!(d.location, "t:rule:0");
}

#[test]
fn jl004_conflict_between_opposite_actions() {
    // src-constrained permit vs dst-constrained deny: a genuine partial
    // overlap (src 10/8 ∧ dst 1/8), opposite actions, neither shadowed.
    let acl = AclBuilder::default_deny()
        .deny_dst("1.0.0.0/8")
        .permit_src("10.0.0.0/8")
        .build();
    let r = lint_acl("t", &acl, &LintConfig::default());
    assert!(r.has_code("JL004"), "{}", r.render_text());
}

// -------------------------------------------------------------- intent layer

#[test]
fn jl101_contradictory_controls() {
    let p = program(
        "acl X { deny dst 9.0.0.0/8 }\nscope A:*, B:*\nallow A:*\nmodify A:1 to X\n\
         control A:* -> B:* isolate dst 1.0.0.0/8\n\
         control A:1 -> B:* open dst 1.2.0.0/16\ncheck\n",
    );
    let r = lint_program(&p, &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL101").unwrap();
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn jl102_vacuous_clause() {
    let p = program(
        "acl X { deny dst 9.0.0.0/8 }\nscope A:*, B:*\nallow A:*\nmodify A:1 to X\n\
         control A:* -> B:* isolate dst 1.0.0.0/9\n\
         control A:* -> B:* isolate dst 1.128.0.0/9\n\
         control A:1 -> B:* isolate dst 1.0.0.0/8\ncheck\n",
    );
    let r = lint_program(&p, &LintConfig::default());
    assert!(r.has_code("JL102"), "{}", r.render_text());
}

#[test]
fn jl103_subsumed_clause() {
    let p = program(
        "acl X { deny dst 9.0.0.0/8 }\nscope A:*, B:*\nallow A:*\nmodify A:1 to X\n\
         control A:* -> B:* isolate dst 1.0.0.0/8\n\
         control A:1 -> B:2 isolate dst 1.2.0.0/16\ncheck\n",
    );
    let r = lint_program(&p, &LintConfig::default());
    assert!(r.has_code("JL103"), "{}", r.render_text());
}

#[test]
fn jl104_unused_acl_definition() {
    let p = program(
        "acl X { deny dst 9.0.0.0/8 }\nacl Unused { permit all }\n\
         scope A:*\nallow A:*\nmodify A:1 to X\ncheck\n",
    );
    let r = lint_program(&p, &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL104").unwrap();
    assert_eq!(d.location, "lai:acl:Unused");
}

// ------------------------------------------------------------- network layer

#[test]
fn jl203_silent_allow_path() {
    let (net, _) = chain();
    let r = lint_config(&net, &AclConfig::new(), &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL203").unwrap();
    assert_eq!(d.location, "path:A:0->B:1");
    assert_eq!(d.severity, Severity::Warning);
}

#[test]
fn configured_slot_is_rule_linted_under_its_slot_name() {
    let (net, ingress) = chain();
    let mut config = AclConfig::new();
    config.set(
        ingress,
        AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16")
            .build(),
    );
    let r = lint_config(&net, &config, &LintConfig::default());
    let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
    assert_eq!(d.location, "A:0-in:rule:1");
}

// ---------------------------------------------------------------- spec layer

#[cfg(not(jinjing_offline))]
mod spec_layer {
    use super::*;
    use jinjing_lint::lint_specs;
    use jinjing_net::spec::{AclConfigSpec, NetworkSpec};

    const NET_JSON: &str = r#"{
        "devices": [
            {"name": "A", "interfaces": ["0", "1"]},
            {"name": "B", "interfaces": ["0", "1"]}
        ],
        "links": [["A:1", "B:0"]],
        "announcements": [{"prefix": "1.0.0.0/8", "interface": "B:1"}],
        "entering": [{"interface": "A:0", "dst_prefixes": ["1.0.0.0/8"]}]
    }"#;

    #[test]
    fn jl201_dangling_reference() {
        let net: NetworkSpec = serde_json::from_str(NET_JSON).unwrap();
        let acls: AclConfigSpec =
            serde_json::from_str(r#"{"slots": [{"interface": "Z:9", "acl": ["default permit"]}]}"#)
                .unwrap();
        let r = lint_specs(&net, &acls, &LintConfig::default());
        let d = r.diagnostics().iter().find(|d| d.code == "JL201").unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(r.has_errors());
    }

    #[test]
    fn jl202_invalid_binding() {
        let net: NetworkSpec = serde_json::from_str(NET_JSON).unwrap();
        let acls: AclConfigSpec = serde_json::from_str(
            r#"{"slots": [
                {"interface": "A:0", "direction": "sideways", "acl": ["default permit"]}
            ]}"#,
        )
        .unwrap();
        let r = lint_specs(&net, &acls, &LintConfig::default());
        assert!(r.has_code("JL202"), "{}", r.render_text());
    }
}

// ----------------------------------------------------- engine + determinism

#[test]
fn engine_lint_merges_all_layers_deterministically() {
    let (net, ingress) = chain();
    let mut config = AclConfig::new();
    config.set(
        ingress,
        AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16")
            .build(),
    );
    let p = program(
        "acl X { deny dst 9.0.0.0/8 }\nacl Unused { permit all }\n\
         scope A:*\nallow A:*\nmodify A:1 to X\ncheck\n",
    );
    let run = || {
        let cfg = LintConfig::default();
        jinjing_core::engine::lint(&net, &config, Some(&p), &cfg)
    };
    let a = run();
    let b = run();
    let ReportKind::Lint(ra) = &a.kind else {
        panic!("expected lint report")
    };
    let ReportKind::Lint(rb) = &b.kind else {
        panic!("expected lint report")
    };
    // Byte-stable machine output across runs.
    assert_eq!(ra.to_json(), rb.to_json());
    assert!(ra.has_code("JL001"));
    assert!(ra.has_code("JL104"));
    // Observability: the lint counters reconcile with the report.
    assert_eq!(
        a.obs.counter("lint.diagnostics"),
        ra.len() as u64,
        "every diagnostic is counted"
    );
}

#[test]
fn diagnostics_json_shape_is_stable() {
    let acl = AclBuilder::default_permit()
        .deny_dst("1.0.0.0/8")
        .deny_dst("1.2.0.0/16")
        .build();
    let mut r = lint_acl("t", &acl, &LintConfig::default());
    r.sort();
    let json = r.to_json();
    // Keys are emitted in a fixed (alphabetical) order with a summary.
    assert!(json.starts_with("{\"diagnostics\":["), "{json}");
    assert!(json.contains("\"summary\":{"), "{json}");
    assert!(
        json.contains("\"certainty\":\"solver-confirmed\""),
        "{json}"
    );
    // And it parses as strict JSON (online builds only).
    #[cfg(not(jinjing_offline))]
    {
        let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
        assert!(v["diagnostics"].is_array());
        assert_eq!(v["summary"]["total"].as_u64().unwrap(), r.len() as u64);
    }
}
