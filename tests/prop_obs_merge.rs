//! Property tests for [`Snapshot::merge`] — the algebraic contract the
//! `jinjing-shard` coordinator's fan-in rests on. Each backend ships its
//! obs snapshot over the wire; the coordinator folds them in whatever
//! order the shard threads finish. For the merged `/metrics.json` to be
//! reproducible, merge must be a commutative, associative fold with
//! [`Snapshot::empty`] as identity — all judged on the canonical
//! [`Snapshot::to_json`] rendering, which is exactly what crosses the
//! wire.

use jinjing_obs::{Collector, Level, Snapshot};
use proptest::prelude::*;
use std::time::Duration;

const NAMES: &[&str] = &[
    "solver.queries",
    "check.dirty_pairs",
    "shard.fan_outs",
    "cache.hits",
];

/// One recorded observation. Snapshots are built by replaying a list of
/// these into a fresh [`Collector`] — the only public way to mint one,
/// so the properties hold over realistic snapshots, not hand-built ones.
#[derive(Debug, Clone)]
enum Op {
    Counter(usize, u64),
    Gauge(usize, i64),
    Histogram(usize, u64),
    Event(usize, bool),
    /// An externally-measured span folded in at the root.
    Span(usize, u64, u64),
    /// A child span recorded under an open parent guard.
    Nested(usize, usize, u64),
}

fn op() -> impl Strategy<Value = Op> {
    let name = 0..NAMES.len();
    prop_oneof![
        (name.clone(), 0u64..1_000_000).prop_map(|(n, v)| Op::Counter(n, v)),
        (name.clone(), -1_000i64..1_000).prop_map(|(n, v)| Op::Gauge(n, v)),
        (name.clone(), 0u64..10_000).prop_map(|(n, v)| Op::Histogram(n, v)),
        (name.clone(), any::<bool>()).prop_map(|(n, warn)| Op::Event(n, warn)),
        (name.clone(), 1u64..50, 1u64..100_000).prop_map(|(n, c, t)| Op::Span(n, c, t)),
        (name.clone(), 0..NAMES.len(), 1u64..100_000)
            .prop_map(|(p, c, t)| Op::Nested(p, c, t)),
    ]
}

fn recording() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op(), 0..24)
}

fn snap(ops: &[Op]) -> Snapshot {
    let c = Collector::with_trace(false);
    for op in ops {
        match op {
            Op::Counter(n, v) => c.counter_add(NAMES[*n], *v),
            Op::Gauge(n, v) => c.gauge_set(NAMES[*n], *v),
            Op::Histogram(n, v) => c.histogram_record(NAMES[*n], *v),
            Op::Event(n, warn) => {
                let level = if *warn { Level::Warn } else { Level::Info };
                c.event(level, NAMES[*n], "merge property probe");
            }
            Op::Span(n, count, total) => {
                c.record_span(NAMES[*n], *count, Duration::from_nanos(*total));
            }
            Op::Nested(parent, child, total) => {
                let _g = c.span(NAMES[*parent]);
                c.record_span(NAMES[*child], 1, Duration::from_nanos(*total));
            }
        }
    }
    c.snapshot()
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// Deterministic Fisher–Yates driven by splitmix64 — proptest gives us
/// the seed, so shrinking stays meaningful.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Commutativity and associativity, judged on the wire rendering.
    #[test]
    fn merge_is_commutative_and_associative_on_canonical_json(
        ops_a in recording(),
        ops_b in recording(),
        ops_c in recording(),
    ) {
        let (a, b, c) = (snap(&ops_a), snap(&ops_b), snap(&ops_c));
        prop_assert_eq!(
            merged(&a, &b).to_json(),
            merged(&b, &a).to_json(),
            "merge must not care which shard answered first"
        );
        prop_assert_eq!(
            merged(&merged(&a, &b), &c).to_json(),
            merged(&a, &merged(&b, &c)).to_json(),
            "merge must not care how the fold is parenthesized"
        );
    }

    /// The empty snapshot is a two-sided identity.
    #[test]
    fn the_empty_snapshot_is_a_merge_identity(ops in recording()) {
        let s = snap(&ops);
        prop_assert_eq!(merged(&s, &Snapshot::empty()).to_json(), s.to_json());
        prop_assert_eq!(merged(&Snapshot::empty(), &s).to_json(), s.to_json());
    }

    /// Order-insensitivity at fan-in width: folding any permutation of
    /// the per-shard snapshots renders the same canonical JSON — the
    /// shard threads may finish in any order.
    #[test]
    fn any_fold_order_yields_the_same_canonical_json(
        parts in prop::collection::vec(recording(), 1..5),
        seed in any::<u64>(),
    ) {
        let snaps: Vec<Snapshot> = parts.iter().map(|p| snap(p)).collect();
        let fold = |order: &[usize]| {
            let mut m = Snapshot::empty();
            for &i in order {
                m.merge(&snaps[i]);
            }
            m.to_json()
        };
        let in_order: Vec<usize> = (0..snaps.len()).collect();
        let mut permuted = in_order.clone();
        shuffle(&mut permuted, seed);
        prop_assert_eq!(fold(&in_order), fold(&permuted));
    }

    /// A merged snapshot survives the wire: parsing its canonical JSON
    /// back re-renders the identical bytes (what the coordinator does
    /// with every backend's `obs` field).
    #[test]
    fn merged_snapshots_round_trip_through_canonical_json(
        ops_a in recording(),
        ops_b in recording(),
    ) {
        let m = merged(&snap(&ops_a), &snap(&ops_b));
        let wire = m.to_json();
        let back = Snapshot::from_json(&wire).expect("canonical JSON parses");
        prop_assert_eq!(back.to_json(), wire);
    }
}
