//! Golden-file tests for the CLI's machine-readable output: the canonical
//! JSON emitted by `jinjing run --format json` (check / fix / generate),
//! `jinjing lint --format json` and `jinjing watch --format json` on the
//! Figure 1 running example is pinned byte-for-byte against committed
//! files in `tests/golden/`.
//!
//! The canonical renderings are deliberately hand-rolled (sorted keys, no
//! timestamps, trailing newline — see `jinjing_obs::json::JsonWriter`), so
//! any drift in verdicts, witnesses, plans, diagnostics or the incremental
//! session counters shows up as a one-line diff here. Determinism across
//! thread counts is part of the contract: the same goldens must hold under
//! `JINJING_THREADS=4` (CI runs both).
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! JINJING_BLESS=1 cargo test --test cli_golden
//! # or offline: JINJING_BLESS=1 <offline test binary>
//! ```
//!
//! and review the diff like any other code change.

use jinjing_cli::{plan_command, run_command_with, watch_command, RunOptions};
use jinjing_core::engine::{lint, lint_multi, ReportKind};
use jinjing_core::figure1::Figure1;
use jinjing_lai::{parse_program, validate};
use jinjing_lint::TenantIntent;
use std::path::PathBuf;

/// The paper's running-example update (§3.2): opens traffic 1 and 2 on
/// D2/C1 while A1 is supposed to keep denying them — `check` says
/// inconsistent, `fix` repairs it.
const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

/// §5's migration scenario, the generate path of Tables 3–4.
const GENERATE_SRC: &str = r#"
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1 to PermitAll
modify D:2 to PermitAll
generate
"#;

/// A three-step delta stream for the watch session: a consistent
/// tightening, an inconsistent opening (rejected), and a no-op.
const WATCH_DELTAS: &str = r#"
# rewrite A1 with a redundant /16 shadowed by its /8: same packet set,
# different rules — a consistent (applied) edit that still dirties classes
step rewrite-a1
set A:1 deny dst 6.0.0.0/8; deny dst 6.1.0.0/16; default permit

# drop D2's denies entirely: opens traffic 1/2 end to end, rejected
step open-d2
set D:2 default permit

# empty delta: the fast path
step noop
"#;

/// Locate `tests/golden/` from either the repo root (offline harness) or
/// the `crates/tests` package dir (cargo).
fn golden_dir() -> PathBuf {
    for cand in ["tests/golden", "../../tests/golden"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    // Last resort: resolve relative to this source file.
    PathBuf::from(file!())
        .parent()
        .expect("source file has a parent")
        .join("golden")
}

/// Compare `got` against the committed golden file, or rewrite the file
/// when `JINJING_BLESS` is set.
fn assert_golden(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("JINJING_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir golden");
        std::fs::write(&path, got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with JINJING_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        got, want,
        "{name} drifted from its golden file; if the change is intentional, \
         re-bless with JINJING_BLESS=1 and review the diff"
    );
}

fn run_json(src: &str) -> String {
    let fig = Figure1::new();
    let out =
        run_command_with(&fig.net, &fig.config, src, &RunOptions::default()).expect("run_command");
    out.plan.to_canonical_json()
}

#[test]
fn check_plan_json_is_golden() {
    assert_golden(
        "check.json",
        &run_json(&format!("{RUNNING_EXAMPLE_BODY}check\n")),
    );
}

#[test]
fn fix_plan_json_is_golden() {
    assert_golden(
        "fix.json",
        &run_json(&format!("{RUNNING_EXAMPLE_BODY}fix\n")),
    );
}

#[test]
fn generate_plan_json_is_golden() {
    assert_golden("generate.json", &run_json(GENERATE_SRC));
}

#[test]
fn lint_report_json_is_golden() {
    // Mirrors `jinjing lint --format json` on a built network: the spec
    // layer is vacuous here (Figure 1 is constructed, not parsed), the
    // rule/intent/network layers run exactly as the CLI drives them.
    let fig = Figure1::new();
    let program = validate(parse_program(&format!("{RUNNING_EXAMPLE_BODY}check\n")).unwrap())
        .expect("validate");
    let out = lint(
        &fig.net,
        &fig.config,
        Some(&program),
        &jinjing_lint::LintConfig::default(),
    );
    let ReportKind::Lint(report) = out.kind else {
        panic!("expected a lint report")
    };
    let mut json = report.to_json();
    json.push('\n');
    assert_golden("lint.json", &json);
}

/// Locate `examples/data/` alongside `tests/golden/` (both layouts).
fn examples_dir() -> PathBuf {
    for cand in ["examples/data", "../../examples/data"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    panic!("examples/data not found from {:?}", std::env::current_dir());
}

/// The committed two-tenant example (`tenant-alpha.lai` + `tenant-beta.lai`)
/// rendered through the multi-tenant engine entry point — the same report
/// `jinjing lint --intent alpha=… --intent beta=… --priority alpha,beta`
/// and `POST /v1/lint/multi` must produce byte-for-byte.
fn multi_lint_report(threads: usize) -> jinjing_lint::LintReport {
    let fig = Figure1::new();
    let tenants: Vec<TenantIntent> = ["alpha", "beta"]
        .iter()
        .map(|name| {
            let path = examples_dir().join(format!("tenant-{name}.lai"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let program = validate(parse_program(&text).expect("parse")).expect("validate");
            TenantIntent::new(*name, program)
        })
        .collect();
    let priority = vec!["alpha".to_string(), "beta".to_string()];
    let cfg = jinjing_lint::LintConfig {
        threads,
        ..jinjing_lint::LintConfig::default()
    };
    let out = lint_multi(&fig.net, &fig.config, &tenants, &priority, &cfg);
    let ReportKind::Lint(report) = out.kind else {
        panic!("expected a lint report")
    };
    report
}

#[test]
fn multi_lint_report_json_is_golden() {
    let mut json = multi_lint_report(0).to_json();
    json.push('\n');
    assert_golden("lint_multi.json", &json);
}

#[test]
fn multi_lint_report_sarif_is_golden() {
    let mut sarif = jinjing_lint::to_sarif(&multi_lint_report(0));
    sarif.push('\n');
    assert_golden("lint_multi.sarif", &sarif);
}

/// Intent for the `jinjing plan` goldens: pure scope + check, the target
/// comes from a committed delta script (`--target`).
const PLAN_INTENT: &str = "scope A:*, B:*, C:*, D:*\ncheck\n";

/// Render `jinjing plan --format json` for a committed target script.
fn plan_json(target_file: &str, expect_feasible: bool) -> String {
    let fig = Figure1::new();
    let path = examples_dir().join(target_file);
    let target =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let out = plan_command(
        &fig.net,
        &fig.config,
        PLAN_INTENT,
        Some(&target),
        0,
        &RunOptions::default(),
    )
    .expect("plan_command");
    assert_eq!(
        out.feasible, expect_feasible,
        "{target_file}: unexpected feasibility"
    );
    out.json
}

#[test]
fn plan_feasible_json_is_golden() {
    assert_golden(
        "plan_feasible.json",
        &plan_json("rollout-target.deltas", true),
    );
}

#[test]
fn plan_infeasible_json_is_golden() {
    assert_golden(
        "plan_infeasible.json",
        &plan_json("rollout-impossible.deltas", false),
    );
}

#[test]
fn watch_session_json_is_golden() {
    let fig = Figure1::new();
    let out = watch_command(
        &fig.net,
        &fig.config,
        &format!("{RUNNING_EXAMPLE_BODY}check\n"),
        WATCH_DELTAS,
        &RunOptions::default(),
    )
    .expect("watch_command");
    assert_eq!(out.rejected, 1, "the open-d2 step must be rejected");
    assert_golden("watch.json", &out.to_canonical_json());
}

/// The goldens are thread-count independent (the determinism contract):
/// re-render everything at 4 threads and compare against the same files.
#[test]
fn goldens_hold_at_four_threads() {
    if std::env::var_os("JINJING_BLESS").is_some() {
        return; // bless once, from the default-thread tests
    }
    let fig = Figure1::new();
    let opts = RunOptions {
        threads: 4,
        ..RunOptions::default()
    };
    for (name, src) in [
        ("check.json", format!("{RUNNING_EXAMPLE_BODY}check\n")),
        ("fix.json", format!("{RUNNING_EXAMPLE_BODY}fix\n")),
        ("generate.json", GENERATE_SRC.to_string()),
    ] {
        let out = run_command_with(&fig.net, &fig.config, &src, &opts).expect("run_command");
        assert_golden(name, &out.plan.to_canonical_json());
    }
    let out = watch_command(
        &fig.net,
        &fig.config,
        &format!("{RUNNING_EXAMPLE_BODY}check\n"),
        WATCH_DELTAS,
        &opts,
    )
    .expect("watch_command");
    assert_golden("watch.json", &out.to_canonical_json());

    let mut json = multi_lint_report(4).to_json();
    json.push('\n');
    assert_golden("lint_multi.json", &json);
    let mut sarif = jinjing_lint::to_sarif(&multi_lint_report(4));
    sarif.push('\n');
    assert_golden("lint_multi.sarif", &sarif);

    for (name, file, feasible) in [
        ("plan_feasible.json", "rollout-target.deltas", true),
        ("plan_infeasible.json", "rollout-impossible.deltas", false),
    ] {
        let path = examples_dir().join(file);
        let target = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let out = plan_command(&fig.net, &fig.config, PLAN_INTENT, Some(&target), 0, &opts)
            .expect("plan_command");
        assert_eq!(out.feasible, feasible);
        assert_golden(name, &out.json);
    }
}
