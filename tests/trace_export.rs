//! Flight-recorder contract tests: deterministic trace ids, valid Chrome
//! `trace_event` export shape (balanced B/E per thread track, monotone
//! timestamps), byte-identity of the report with tracing on vs off at 1
//! and 4 worker threads, and layer coverage (engine, pool worker, solver
//! spans all present in one capture).
//!
//! Registry-free: std + the internal crates only, so the offline harness
//! runs this file too. The serde-backed strict-JSON parse of the export
//! additionally runs under the online build.

use jinjing_core::engine::EngineConfig;
use jinjing_core::figure1::Figure1;
use jinjing_core::query::run_query;
use jinjing_obs::{trace_id_of, TraceCtx};

const INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";

/// Run the Figure 1 check with the recorder armed; returns the canonical
/// plan bytes and the Chrome trace JSON.
fn capture(threads: usize) -> (String, String) {
    let f = Figure1::new();
    let cfg = EngineConfig {
        threads,
        ..EngineConfig::default()
    };
    let t = TraceCtx::new(&trace_id_of(INTENT));
    cfg.obs.attach_trace_ctx(t.clone());
    let out = run_query(&f.net, &f.config, INTENT, &cfg).expect("traced query");
    (out.plan.to_canonical_json(), t.to_chrome_json())
}

/// Minimal event extraction over the recorder's own writer output: split
/// the `traceEvents` array into objects by brace depth and pull the
/// `ph`/`tid`/`ts` fields. (The writer emits no braces inside strings
/// for these spans, so depth counting is exact.)
fn events(json: &str) -> Vec<(String, u64, Option<f64>)> {
    let marker = "\"traceEvents\":[";
    let start = json.find(marker).expect("traceEvents array") + marker.len();
    let mut objects: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut obj = String::new();
    for c in json[start..].chars() {
        match c {
            '{' => {
                depth += 1;
                obj.push(c);
            }
            '}' => {
                depth -= 1;
                obj.push(c);
                if depth == 0 {
                    objects.push(std::mem::take(&mut obj));
                }
            }
            ']' if depth == 0 => break,
            _ if depth > 0 => obj.push(c),
            _ => {}
        }
    }
    objects
        .iter()
        .map(|o| {
            let field = |k: &str| {
                o.split(&format!("\"{k}\":")).nth(1).map(|rest| {
                    rest.split([',', '}'])
                        .next()
                        .expect("field has a value")
                        .trim_matches('"')
                        .to_string()
                })
            };
            (
                field("ph").expect("event has ph"),
                field("tid")
                    .and_then(|v| v.parse().ok())
                    .expect("event has tid"),
                field("ts").and_then(|v| v.parse().ok()),
            )
        })
        .collect()
}

#[test]
fn trace_ids_are_deterministic_and_input_sensitive() {
    // FNV-1a offset basis: the pinned id of the empty input.
    assert_eq!(trace_id_of(""), "tcbf29ce484222325");
    assert_eq!(trace_id_of(INTENT), trace_id_of(INTENT));
    assert_ne!(trace_id_of(INTENT), trace_id_of("check\n"));
    let id = trace_id_of(INTENT);
    assert!(id.starts_with('t'), "{id}");
    assert_eq!(id.len(), 17, "t + 16 hex digits: {id}");
}

#[test]
fn tracing_is_byte_invisible_at_1_and_4_threads() {
    let f = Figure1::new();
    let plain = |threads: usize| {
        let cfg = EngineConfig {
            threads,
            ..EngineConfig::default()
        };
        run_query(&f.net, &f.config, INTENT, &cfg)
            .expect("untraced query")
            .plan
            .to_canonical_json()
    };
    let reference = plain(1);
    assert_eq!(reference, plain(4), "threads alone must not move bytes");
    assert_eq!(reference, capture(1).0, "tracing on, serial");
    assert_eq!(reference, capture(4).0, "tracing on, 4 workers");
}

#[test]
fn chrome_export_is_balanced_and_monotone_per_track() {
    for threads in [1usize, 4] {
        let (_, json) = capture(threads);
        let evs = events(&json);
        assert!(!evs.is_empty(), "capture recorded no events");
        // Balanced B/E per tid: no End without a Begin, nothing left open.
        let mut open: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        // Monotone ts per tid (the recorder stamps under one lock, so
        // the stream is globally ordered; per-track follows).
        let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for (ph, tid, ts) in &evs {
            match ph.as_str() {
                "B" => *open.entry(*tid).or_default() += 1,
                "E" => {
                    let n = open.entry(*tid).or_default();
                    assert!(*n > 0, "E without a B on tid {tid} ({threads} threads)");
                    *n -= 1;
                }
                "i" | "C" | "M" => {}
                other => panic!("unexpected phase {other:?}"),
            }
            if let Some(ts) = ts {
                let prev = last_ts.entry(*tid).or_insert(f64::MIN);
                assert!(
                    *ts >= *prev,
                    "ts went backwards on tid {tid}: {prev} -> {ts} ({threads} threads)"
                );
                *prev = *ts;
            }
            if *ph == *"M" {
                assert!(ts.is_none(), "metadata events carry no ts");
            }
        }
        assert!(
            open.values().all(|&n| n == 0),
            "unbalanced spans left open: {open:?} ({threads} threads)"
        );
    }
}

#[test]
fn capture_contains_every_layer() {
    let (_, json) = capture(4);
    for needle in [
        "\"displayTimeUnit\":\"ms\"",
        "engine.run",
        "check.pair",
        "solver.query",
        "worker-0",
        "solver.conflicts",
    ] {
        assert!(needle.is_empty() || json.contains(needle), "missing {needle}");
    }
    assert!(
        json.contains(&format!("\"trace_id\":\"{}\"", trace_id_of(INTENT))),
        "otherData names the deterministic id"
    );
}

/// Strict-JSON parse of the export (online build only: serde_json is a
/// registry dependency). The offline harness covers the same shape with
/// a python probe in scripts/offline_check.sh.
#[cfg(not(jinjing_offline))]
#[test]
fn chrome_export_parses_as_strict_json() {
    let (_, json) = capture(4);
    let v: serde_json::Value = serde_json::from_str(&json).expect("strict JSON");
    assert_eq!(v["displayTimeUnit"], "ms");
    assert_eq!(v["otherData"]["dropped_events"], 0);
    let evs = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!evs.is_empty());
    for e in evs {
        assert_eq!(e["pid"], 1, "one process: {e}");
        assert!(e["name"].is_string(), "{e}");
        assert!(e["ph"].is_string(), "{e}");
        assert!(e["tid"].is_u64(), "{e}");
    }
    // Metadata names the driver and worker tracks.
    let names: Vec<&str> = evs
        .iter()
        .filter(|e| e["name"] == "thread_name")
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(names.contains(&"driver"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("worker-")), "{names:?}");
}
