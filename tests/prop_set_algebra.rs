//! Property tests for the exact packet-set algebra — the foundation every
//! primitive builds on. The strategies generate structured cubes (prefix-
//! and range-shaped, like real rules) as well as arbitrary intervals.

use jinjing_acl::cube::Cube;
use jinjing_acl::decompose::{matchspecs_to_set, set_to_matchspecs};
use jinjing_acl::interval::Interval;
use jinjing_acl::packet::{Field, Packet};
use jinjing_acl::set::PacketSet;
use proptest::prelude::*;

/// An arbitrary interval within a field's domain.
fn interval(field: Field) -> impl Strategy<Value = Interval> {
    let max = field.max_value();
    (0..=max).prop_flat_map(move |lo| (lo..=max).prop_map(move |hi| Interval::new(lo, hi)))
}

/// A biased interval: often the full domain (like real rules).
fn field_interval(field: Field) -> impl Strategy<Value = Interval> {
    prop_oneof![
        3 => Just(Interval::full(field)),
        2 => interval(field),
    ]
}

fn cube() -> impl Strategy<Value = Cube> {
    (
        field_interval(Field::SrcIp),
        field_interval(Field::DstIp),
        field_interval(Field::SrcPort),
        field_interval(Field::DstPort),
        field_interval(Field::Proto),
    )
        .prop_map(|(s, d, sp, dp, pr)| Cube::from_fields([s, d, sp, dp, pr]))
}

fn packet_set() -> impl Strategy<Value = PacketSet> {
    prop::collection::vec(cube(), 0..3).prop_map(PacketSet::from_cubes)
}

fn packet() -> impl Strategy<Value = Packet> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(s, d, sp, dp, pr)| Packet::new(s, d, sp, dp, pr))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Membership distributes over the boolean operations.
    #[test]
    fn membership_laws(a in packet_set(), b in packet_set(), p in packet()) {
        let in_a = a.contains(&p);
        let in_b = b.contains(&p);
        prop_assert_eq!(a.union(&b).contains(&p), in_a || in_b);
        prop_assert_eq!(a.intersect(&b).contains(&p), in_a && in_b);
        prop_assert_eq!(a.subtract(&b).contains(&p), in_a && !in_b);
        prop_assert_eq!(a.complement().contains(&p), !in_a);
    }

    /// De Morgan over the exact representation.
    #[test]
    fn de_morgan(a in packet_set(), b in packet_set()) {
        let lhs = a.union(&b).complement();
        let rhs = a.complement().intersect(&b.complement());
        prop_assert!(lhs.same_set(&rhs));
    }

    /// |A| + |B| = |A ∪ B| + |A ∩ B|.
    #[test]
    fn inclusion_exclusion(a in packet_set(), b in packet_set()) {
        let union = a.union(&b).count();
        let inter = a.intersect(&b).count();
        prop_assert_eq!(a.count() + b.count(), union + inter);
    }

    /// Subtraction partitions: A = (A∖B) ⊎ (A∩B).
    #[test]
    fn subtract_partitions(a in packet_set(), b in packet_set()) {
        let diff = a.subtract(&b);
        let inter = a.intersect(&b);
        prop_assert!(!diff.intersects(&inter) || inter.is_empty());
        prop_assert!(diff.union(&inter).same_set(&a));
        prop_assert_eq!(diff.count() + inter.count(), a.count());
    }

    /// Subset is a partial order consistent with subtraction emptiness.
    #[test]
    fn subset_consistency(a in packet_set(), b in packet_set()) {
        prop_assert_eq!(a.is_subset(&b), a.subtract(&b).is_empty());
        prop_assert!(a.intersect(&b).is_subset(&a));
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    /// A non-empty set yields a witness that is a member.
    #[test]
    fn sample_soundness(a in packet_set()) {
        match a.sample() {
            Some(p) => prop_assert!(a.contains(&p)),
            None => prop_assert!(a.is_empty()),
        }
    }

    /// Coalescing never changes the denoted set and never grows it.
    #[test]
    fn coalesce_preserves(a in packet_set()) {
        let c = a.coalesce();
        prop_assert!(c.same_set(&a));
        prop_assert!(c.cube_count() <= a.subtract(&PacketSet::empty()).cube_count().max(a.cube_count()));
    }

    /// Decomposing into rule tuples and reassembling is the identity.
    #[test]
    fn decompose_roundtrip(a in packet_set()) {
        let specs = set_to_matchspecs(&a);
        prop_assert!(matchspecs_to_set(&specs).same_set(&a));
    }

    /// Double complement is the identity.
    #[test]
    fn double_complement(a in packet_set()) {
        prop_assert!(a.complement().complement().same_set(&a));
    }
}
