//! Property tests for the three primitives, run over the Figure 1
//! substrate with randomized ACL configurations and intents:
//!
//! - **check** (all four optimization variants) always agrees with the
//!   exact set-algebra oracle;
//! - **fix** either produces a plan that the oracle certifies, or reports
//!   the task unfixable;
//! - **generate** (optimized and not) preserves the desired reachability
//!   whenever it returns a plan.

use jinjing_acl::{Acl, Action, IpPrefix, Rule};
use jinjing_core::check::{check_configs, check_exact, CheckConfig};
use jinjing_core::control::ResolvedControl;
use jinjing_core::figure1::Figure1;
use jinjing_core::fix::{fix, FixConfig, FixError};
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_core::{Encoding, Task};
use jinjing_lai::{Command, ControlVerb};
use jinjing_net::fib::prefix_set;
use jinjing_net::{AclConfig, Slot};
use proptest::prelude::*;
use std::collections::HashSet;

/// A rule over the example's traffic space: dst n.0.0.0/8 or a /16 subset.
fn fig_rule() -> impl Strategy<Value = Rule> {
    (1u32..=8, any::<bool>(), any::<bool>(), 0u32..4).prop_map(|(n, permit, narrow, sub)| {
        let prefix = if narrow {
            IpPrefix::new(n << 24 | sub << 16, 16)
        } else {
            IpPrefix::new(n << 24, 8)
        };
        Rule::on_dst(Action::from_bool(permit), prefix)
    })
}

fn fig_acl() -> impl Strategy<Value = Acl> {
    prop::collection::vec(fig_rule(), 0..5).prop_map(|rules| Acl::new(rules, Action::Permit))
}

/// Raw configuration material: one optional ACL per filtering slot of the
/// example (A1-in, C1-in, D2-in, B1-in, A3-out).
fn fig_config_raw() -> impl Strategy<Value = Vec<Option<Acl>>> {
    prop::collection::vec(prop::option::of(fig_acl()), 5)
}

/// Bind raw material to the example's slots.
fn bind_config(fig: &Figure1, acls: &[Option<Acl>]) -> AclConfig {
    let slots: Vec<Slot> = vec![
        fig.slot("A1"),
        fig.slot("C1"),
        fig.slot("D2"),
        fig.slot("B1"),
        Slot::egress(fig.iface("A3")),
    ];
    let mut cfg = AclConfig::new();
    for (slot, acl) in slots.iter().zip(acls) {
        if let Some(a) = acl {
            cfg.set(*slot, a.clone());
        }
    }
    cfg
}

fn all_check_configs() -> Vec<CheckConfig> {
    let mut out = Vec::new();
    for differential in [false, true] {
        for encoding in [Encoding::Sequential, Encoding::Tree] {
            out.push(CheckConfig {
                differential,
                encoding,
                ..CheckConfig::default()
            });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four check variants agree with the exact oracle on arbitrary
    /// configuration pairs.
    #[test]
    fn check_agrees_with_oracle(b in fig_config_raw(), a in fig_config_raw()) {
        let fig = Figure1::new();
        let before = bind_config(&fig, &b);
        let after = bind_config(&fig, &a);
        let oracle = check_exact(&fig.net, &fig.scope(), &before, &after, &[])
            .is_consistent();
        for cfg in all_check_configs() {
            let got = check_configs(&fig.net, &fig.scope(), &before, &after, &[], &cfg)
                .expect("check")
                .outcome
                .is_consistent();
            prop_assert_eq!(got, oracle, "{:?}", cfg);
        }
    }

    /// Fix either repairs (oracle-certified) or declares unfixability.
    #[test]
    fn fix_repairs_or_reports(b in fig_config_raw(), a in fig_config_raw()) {
        let fig = Figure1::new();
        let before = bind_config(&fig, &b);
        let after = bind_config(&fig, &a);
        let mut allow = Vec::new();
        for name in ["A1", "A2", "A3", "A4", "B1", "B2", "C1", "D2"] {
            allow.push(Slot::ingress(fig.iface(name)));
            allow.push(Slot::egress(fig.iface(name)));
        }
        let task = Task {
            scope: fig.scope(),
            allow,
            before: before.clone(),
            after,
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Fix,
        };
        match fix(&fig.net, &task, &FixConfig::default()) {
            Ok(plan) => {
                let verdict =
                    check_exact(&fig.net, &fig.scope(), &before, &plan.fixed, &[]);
                prop_assert!(verdict.is_consistent(), "plan not consistent");
                // Added rules stay within the allow list.
                for (slot, _) in &plan.added_rules {
                    prop_assert!(task.allow.contains(slot));
                }
                // Neighborhoods pairwise disjoint.
                for (i, a) in plan.neighborhoods.iter().enumerate() {
                    for b in &plan.neighborhoods[i + 1..] {
                        prop_assert!(!a.overlaps(b));
                    }
                }
            }
            Err(FixError::Unfixable { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Generate preserves reachability in both optimization modes, and the
    /// two modes produce semantically equivalent plans.
    #[test]
    fn generate_preserves_reachability(b in fig_config_raw()) {
        let fig = Figure1::new();
        let before = bind_config(&fig, &b);
        // Migrate everything off the configured slots onto C/D ingress.
        let mut after = before.clone();
        for slot in before.slots() {
            after.set(slot, Acl::permit_all());
        }
        let task = Task {
            scope: fig.scope(),
            allow: vec![fig.slot("C1"), fig.slot("C2"), fig.slot("C4"), fig.slot("D1")],
            before: before.clone(),
            after,
            modified: before.slots(),
            controls: Vec::new(),
            command: Command::Generate,
        };
        let mut results = Vec::new();
        for optimize in [true, false] {
            let cfg = GenerateConfig {
                optimize,
                ..GenerateConfig::default()
            };
            match generate(&fig.net, &task, &cfg) {
                Ok(report) => {
                    let verdict = check_exact(
                        &fig.net,
                        &fig.scope(),
                        &before,
                        &report.generated,
                        &[],
                    );
                    prop_assert!(
                        verdict.is_consistent(),
                        "optimize={optimize}: {verdict:?}"
                    );
                    results.push(Some(report));
                }
                Err(_) => results.push(None),
            }
        }
        // Both modes agree on feasibility.
        prop_assert_eq!(results[0].is_some(), results[1].is_some());
    }

    /// Generate under random isolate/open controls achieves the desired
    /// reachability whenever it succeeds.
    #[test]
    fn generate_achieves_controls(
        n in 1u32..=8,
        isolate in any::<bool>(),
        to_c3 in any::<bool>(),
    ) {
        let fig = Figure1::new();
        let to = if to_c3 { fig.iface("C3") } else { fig.iface("D3") };
        let controls = vec![ResolvedControl {
            from: HashSet::from([fig.iface("A1")]),
            to: HashSet::from([to]),
            verb: if isolate { ControlVerb::Isolate } else { ControlVerb::Open },
            region: prefix_set(&IpPrefix::new(n << 24, 8)),
        }];
        // Allow every ingress slot inside the scope (maximal freedom).
        let mut allow = Vec::new();
        for name in ["A1", "A2", "A3", "A4", "B1", "B2", "C1", "C2", "C4", "D1", "D2"] {
            allow.push(Slot::ingress(fig.iface(name)));
            allow.push(Slot::egress(fig.iface(name)));
        }
        let task = Task {
            scope: fig.scope(),
            allow,
            before: fig.config.clone(),
            after: fig.config.clone(),
            modified: Vec::new(),
            controls: controls.clone(),
            command: Command::Generate,
        };
        if let Ok(report) = generate(&fig.net, &task, &GenerateConfig::default()) {
            let verdict = check_exact(
                &fig.net,
                &fig.scope(),
                &fig.config,
                &report.generated,
                &controls,
            );
            prop_assert!(verdict.is_consistent(), "{verdict:?}");
        }
    }
}
