//! Property tests for the LAI language: printing a random program and
//! parsing it back is the identity, and the Table 5 statement count is
//! stable under the roundtrip.

use jinjing_acl::{Acl, Action, IpPrefix, Rule};
use jinjing_lai::printer::{line_count, statement_count};
use jinjing_lai::{
    parse_program, print_program, AclDef, Command, ControlStmt, ControlVerb, DirSpec, HeaderSel,
    IfaceSel, Modify, Program, SlotPattern,
};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(|s| s)
}

fn pattern() -> impl Strategy<Value = SlotPattern> {
    (
        ident(),
        prop_oneof![Just(IfaceSel::Star), ident().prop_map(IfaceSel::Named)],
        prop_oneof![
            Just(None),
            Just(Some(DirSpec::In)),
            Just(Some(DirSpec::Out))
        ],
    )
        .prop_map(|(device, iface, dir)| SlotPattern { device, iface, dir })
}

fn prefix() -> impl Strategy<Value = IpPrefix> {
    (any::<u32>(), 0u32..=32).prop_map(|(a, l)| IpPrefix::new(a, l))
}

fn acl_def(idx: usize) -> impl Strategy<Value = AclDef> {
    (prop::collection::vec(prefix(), 0..4), any::<bool>()).prop_map(move |(ps, dp)| AclDef {
        name: format!("Acl{idx}"),
        acl: Acl::new(
            ps.into_iter()
                .map(|p| Rule::on_dst(Action::Deny, p))
                .collect(),
            Action::from_bool(dp),
        ),
    })
}

fn header_sel() -> impl Strategy<Value = HeaderSel> {
    prop_oneof![
        Just(HeaderSel::All),
        prefix().prop_map(HeaderSel::Src),
        prefix().prop_map(HeaderSel::Dst),
    ]
}

fn control() -> impl Strategy<Value = ControlStmt> {
    (
        prop::collection::vec(pattern(), 1..3),
        prop::collection::vec(pattern(), 1..3),
        prop_oneof![
            Just(ControlVerb::Isolate),
            Just(ControlVerb::Open),
            Just(ControlVerb::Maintain)
        ],
        header_sel(),
    )
        .prop_map(|(from, to, verb, header)| ControlStmt {
            from,
            to,
            verb,
            header,
        })
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(Just(()), 0..3),
        prop::collection::vec(pattern(), 1..4),
        prop::collection::vec(pattern(), 0..4),
        prop::collection::vec(control(), 0..4),
        prop_oneof![
            Just(Command::Check),
            Just(Command::Fix),
            Just(Command::Generate)
        ],
    )
        .prop_flat_map(|(defs, scope, allow, controls, command)| {
            let n = defs.len();
            let defs_strategy: Vec<_> = (0..n).map(acl_def).collect();
            (
                defs_strategy,
                prop::collection::vec(0..n.max(1), 0..=n.min(3)),
            )
                .prop_map(move |(acl_defs, modify_refs)| {
                    let modifies: Vec<Modify> = modify_refs
                        .iter()
                        .filter(|&&i| i < acl_defs.len())
                        .map(|&i| Modify {
                            target: SlotPattern::named("Dev", "1"),
                            acl: acl_defs[i].name.clone(),
                        })
                        .collect();
                    Program {
                        acl_defs: acl_defs.clone(),
                        scope: scope.clone(),
                        allow: allow.clone(),
                        modifies,
                        controls: controls.clone(),
                        command: Some(command),
                    }
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse is the identity on the AST.
    #[test]
    fn print_parse_roundtrip(p in program()) {
        let printed = print_program(&p);
        let back = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{printed}"));
        prop_assert_eq!(back, p, "printed:\n{}", printed);
    }

    /// Statement counts are roundtrip-stable and bounded by line counts.
    #[test]
    fn statement_count_stable(p in program()) {
        let printed = print_program(&p);
        let back = parse_program(&printed).expect("reparse");
        prop_assert_eq!(statement_count(&back), statement_count(&p));
        prop_assert!(statement_count(&p) <= line_count(&p));
    }
}

/// Spec round-trips: a network exported to its JSON spec and rebuilt keeps
/// its topology, announcements and traffic matrix semantics.
#[cfg(test)]
mod spec_roundtrip {
    use jinjing_net::spec::{AclConfigSpec, NetworkSpec};
    use proptest::prelude::*;

    /// Random small chain/star networks.
    fn arbitrary_network() -> impl Strategy<Value = NetworkSpec> {
        (2usize..5, 1usize..4).prop_map(|(n, prefixes)| {
            let mut spec = NetworkSpec::default();
            for i in 0..n {
                spec.devices.push(jinjing_net::spec::DeviceSpec {
                    name: format!("R{i}"),
                    interfaces: vec!["l".into(), "r".into(), "x".into()],
                });
            }
            for i in 0..n - 1 {
                spec.links
                    .push((format!("R{i}:r"), format!("R{}:l", i + 1)));
            }
            for k in 0..prefixes {
                spec.announcements
                    .push(jinjing_net::spec::AnnouncementSpec {
                        prefix: format!("{}.0.0.0/8", k + 1),
                        interface: format!("R{}:x", k % n),
                    });
            }
            spec
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn network_spec_roundtrip(spec in arbitrary_network()) {
            let net = spec.build().expect("buildable");
            let exported = NetworkSpec::from_network(&net);
            let rebuilt = exported.build().expect("rebuildable");
            prop_assert_eq!(
                rebuilt.topology().device_count(),
                net.topology().device_count()
            );
            prop_assert_eq!(rebuilt.announced().len(), net.announced().len());
            // Forwarding agrees on a sample of each announced prefix.
            for (p, _) in net.announced() {
                let pkt = jinjing_acl::Packet::to_dst(p.addr() | 1);
                for d in net.topology().devices() {
                    let mut a = net.fib(d).lookup(&pkt);
                    let mut b = rebuilt.fib(d).lookup(&pkt);
                    a.sort();
                    b.sort();
                    prop_assert_eq!(a, b);
                }
            }
            // JSON round-trip is the identity on the document.
            let json = serde_json::to_string(&exported).unwrap();
            let back: NetworkSpec = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(back, exported);
        }

        #[test]
        fn acl_spec_roundtrip(spec in arbitrary_network(), deny_count in 0usize..5) {
            let net = spec.build().expect("buildable");
            // Configure a random-ish ACL on the first device's ingress.
            let iface = net.topology().iface_by_name("R0", "l").unwrap();
            let mut acl = jinjing_acl::AclBuilder::default_permit();
            for i in 0..deny_count {
                acl = acl.deny_dst(&format!("{}.1.0.0/16", i + 1));
            }
            let mut config = jinjing_net::AclConfig::new();
            config.set(jinjing_net::Slot::ingress(iface), acl.build());
            let exported = AclConfigSpec::from_config(&net, &config);
            let rebuilt = exported.build(&net).expect("rebuildable");
            for slot in config.slots() {
                prop_assert!(rebuilt
                    .get(slot)
                    .unwrap()
                    .equivalent(config.get(slot).unwrap()));
            }
        }
    }
}

/// Robustness: the parsers are total — arbitrary input yields `Err`, never
/// a panic.
#[cfg(test)]
mod no_panic {
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn lai_parser_never_panics(input in "\\PC{0,200}") {
            let _ = jinjing_lai::parse_program(&input);
        }

        #[test]
        fn lai_parser_never_panics_on_structured(
            head in "(scope|allow|modify|control|acl|check|fix|generate)",
            body in "[ A-Za-z0-9:*,.>/{}-]{0,80}",
        ) {
            let _ = jinjing_lai::parse_program(&format!("{head} {body}\n"));
        }

        #[test]
        fn rule_parser_never_panics(input in "\\PC{0,120}") {
            let _ = jinjing_acl::parse::parse_rule(&input);
        }

        #[test]
        fn acl_parser_never_panics(input in "\\PC{0,200}") {
            let _ = jinjing_acl::parse::parse_acl(&input);
        }

        #[test]
        fn prefix_parser_never_panics(input in "[0-9./]{0,24}") {
            let _ = jinjing_acl::parse::parse_prefix(&input);
        }
    }
}
