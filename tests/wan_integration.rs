//! End-to-end integration over the synthetic WAN (the §8 substrate): every
//! experiment scenario runs through the public API on the small preset and
//! its result is certified by the exact checker.

use jinjing_core::check::{check, check_exact, CheckConfig, CheckOutcome};
use jinjing_core::fix::{fix, FixConfig};
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_core::Encoding;
use jinjing_lai::printer::statement_count;
use jinjing_lai::Command;
use jinjing_wan::{build_wan, scenarios, NetSize, WanParams};

fn small() -> jinjing_wan::Wan {
    build_wan(&WanParams::preset(NetSize::Small))
}

#[test]
fn perturbed_update_check_agrees_with_oracle() {
    let wan = small();
    for seed in [1u64, 2, 3] {
        for fraction in [0.01, 0.05] {
            let sc = scenarios::checkfix(&wan, fraction, seed, Command::Check);
            let oracle = check_exact(
                &wan.net,
                &sc.task.scope,
                &sc.task.before,
                &sc.task.after,
                &[],
            )
            .is_consistent();
            for differential in [false, true] {
                let cfg = CheckConfig {
                    differential,
                    encoding: Encoding::Tree,
                    ..CheckConfig::default()
                };
                let got = check(&wan.net, &sc.task, &cfg)
                    .expect("check")
                    .outcome
                    .is_consistent();
                assert_eq!(
                    got, oracle,
                    "seed {seed} fraction {fraction} diff {differential}"
                );
            }
        }
    }
}

#[test]
fn perturbation_is_usually_inconsistent_and_fix_repairs_it() {
    let wan = small();
    // Some seeds only hit redundant rules (a perturbation that happens to
    // be a semantic no-op); scan a few until one actually breaks
    // reachability — deterministically the same one every run.
    let sc = (7u64..32)
        .map(|seed| scenarios::checkfix(&wan, 0.05, seed, Command::Fix))
        .find(|sc| {
            let report = check(&wan.net, &sc.task, &CheckConfig::default()).expect("check");
            matches!(report.outcome, CheckOutcome::Inconsistent(_))
        })
        .expect("some 5% perturbation breaks reachability");
    let plan = fix(&wan.net, &sc.task, &FixConfig::default()).expect("fix");
    assert!(!plan.added_rules.is_empty());
    let verdict = check_exact(&wan.net, &sc.task.scope, &sc.task.before, &plan.fixed, &[]);
    assert!(verdict.is_consistent(), "{verdict:?}");
}

#[test]
fn migration_scenario_preserves_reachability() {
    let wan = small();
    let sc = scenarios::migration(&wan);
    let report = generate(&wan.net, &sc.task, &GenerateConfig::default()).expect("generate");
    // Sources drained, targets populated.
    for group in &wan.acl_slots {
        for &s in group {
            assert!(report.generated.get(s).map_or(true, |a| a.is_permit_all()));
        }
    }
    assert!(report.rules_final > 0);
    let verdict = check_exact(
        &wan.net,
        &sc.task.scope,
        &sc.task.before,
        &report.generated,
        &[],
    );
    assert!(verdict.is_consistent(), "{verdict:?}");
}

#[test]
fn migration_optimization_reduces_rules_dramatically() {
    let wan = small();
    let sc = scenarios::migration(&wan);
    let opt = generate(&wan.net, &sc.task, &GenerateConfig::default()).expect("generate");
    let base = generate(
        &wan.net,
        &sc.task,
        &GenerateConfig {
            optimize: false,
            ..GenerateConfig::default()
        },
    )
    .expect("generate");
    // §5.5: the optimizations shrink the generated ACLs by orders of
    // magnitude (the paper reports ~2 orders; we assert at least 5×).
    assert!(
        opt.rules_final * 5 < base.rules_final,
        "optimized {} vs base {}",
        opt.rules_final,
        base.rules_final
    );
    // Both are consistent.
    for r in [&opt, &base] {
        let verdict = check_exact(&wan.net, &sc.task.scope, &sc.task.before, &r.generated, &[]);
        assert!(verdict.is_consistent());
    }
}

#[test]
fn control_open_achieves_desired_reachability() {
    let wan = small();
    for k in [1usize, 2] {
        let sc = scenarios::control_open(&wan, k, 11);
        let report = generate(&wan.net, &sc.task, &GenerateConfig::default()).expect("generate");
        let verdict = check_exact(
            &wan.net,
            &sc.task.scope,
            &sc.task.before,
            &report.generated,
            &sc.task.controls,
        );
        assert!(verdict.is_consistent(), "k={k}: {verdict:?}");
        // Every opened prefix actually flows end to end.
        for c in &sc.task.controls {
            let class = c.region.clone();
            let scope = sc.task.scope.clone();
            let mut reached = false;
            for path in wan.net.all_paths_for_class(&scope, &class) {
                if !c.applies_to(&path) {
                    continue;
                }
                let sample = path.carried.intersect(&class).sample();
                if let Some(pkt) = sample {
                    if report.generated.path_permits(&path, &pkt) {
                        reached = true;
                    }
                }
            }
            assert!(reached, "an opened prefix stayed blocked");
        }
    }
}

#[test]
fn table5_shapes_hold_across_sizes() {
    // Program sizes stay compact for check/fix and migration, and grow
    // linearly in k for control-open (Table 5's shape).
    for size in NetSize::ALL {
        let wan = build_wan(&WanParams::preset(size));
        let check_sc = scenarios::checkfix(&wan, 0.01, 5, Command::Check);
        let mig_sc = scenarios::migration(&wan);
        let open1 = scenarios::control_open(&wan, 1, 5);
        let open2 = scenarios::control_open(&wan, 2, 5);
        let edges = wan.all_edges().len();
        assert!(statement_count(&check_sc.program) <= 4 + wan.installed_rules() / 10);
        assert!(statement_count(&mig_sc.program) <= 3 + wan.all_acl_slots().len());
        assert_eq!(
            statement_count(&open2.program) - statement_count(&open1.program),
            edges
        );
    }
}

#[test]
fn differential_reduction_shrinks_encoded_rules() {
    let wan = small();
    let sc = scenarios::checkfix(&wan, 0.01, 9, Command::Check);
    let basic = check(
        &wan.net,
        &sc.task,
        &CheckConfig {
            differential: false,
            ..CheckConfig::default()
        },
    )
    .expect("check");
    let diff = check(&wan.net, &sc.task, &CheckConfig::default()).expect("check");
    assert!(
        diff.encoded_rules * 2 < basic.encoded_rules,
        "differential {} vs basic {}",
        diff.encoded_rules,
        basic.encoded_rules
    );
    assert_eq!(diff.outcome.is_consistent(), basic.outcome.is_consistent());
}
