//! Primitive properties over *randomized topologies* (chains with optional
//! diamond branches), randomized routing and randomized ACLs — the
//! strongest correctness evidence in the suite: every solver-path verdict
//! is compared against the exact set-algebra oracle, and every produced
//! plan is oracle-certified.

use jinjing_acl::{Acl, Action, IpPrefix, Rule};
use jinjing_core::check::{check_configs, check_exact, CheckConfig};
use jinjing_core::fix::{fix, FixConfig, FixError, FixStrategy};
use jinjing_core::{Encoding, Task};
use jinjing_lai::Command;
use jinjing_net::spec::{AnnouncementSpec, DeviceSpec, NetworkSpec};
use jinjing_net::{AclConfig, Network, Scope, Slot};
use proptest::prelude::*;

/// Parameters of a generated scenario.
#[derive(Debug, Clone)]
struct ScenarioSpec {
    /// Devices in the chain (2..=4).
    chain: usize,
    /// Add a parallel branch between the first and last chain device?
    diamond: bool,
    /// Announced /8 prefixes (1..=4), all at the tail.
    prefixes: usize,
    /// Per-slot ACL material: (slot choice, rules).
    acls: Vec<(usize, Vec<Rule>)>,
    /// Perturbations: (acl index, mutation kind, rule seed).
    mutations: Vec<(usize, u8, u32)>,
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        1u32..=4,
        any::<bool>(),
        prop_oneof![Just(8u32), Just(16)],
        0u32..4,
    )
        .prop_map(|(n, permit, len, sub)| {
            let addr = if len == 8 {
                n << 24
            } else {
                n << 24 | sub << 16
            };
            Rule::on_dst(Action::from_bool(permit), IpPrefix::new(addr, len))
        })
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        2usize..=4,
        any::<bool>(),
        1usize..=4,
        prop::collection::vec(
            (0usize..8, prop::collection::vec(rule_strategy(), 1..4)),
            1..4,
        ),
        prop::collection::vec((0usize..3, 0u8..3, any::<u32>()), 0..4),
    )
        .prop_map(|(chain, diamond, prefixes, acls, mutations)| ScenarioSpec {
            chain,
            diamond,
            prefixes,
            acls,
            mutations,
        })
}

/// Materialize the scenario: network, before-config, after-config.
fn build(spec: &ScenarioSpec) -> (Network, AclConfig, AclConfig) {
    let mut net_spec = NetworkSpec::default();
    for i in 0..spec.chain {
        net_spec.devices.push(DeviceSpec {
            name: format!("R{i}"),
            interfaces: vec!["l".into(), "r".into(), "x".into(), "b1".into(), "b2".into()],
        });
    }
    for i in 0..spec.chain - 1 {
        net_spec
            .links
            .push((format!("R{i}:r"), format!("R{}:l", i + 1)));
    }
    if spec.diamond {
        // Extra device bridging head and tail.
        net_spec.devices.push(DeviceSpec {
            name: "Br".into(),
            interfaces: vec!["a".into(), "b".into()],
        });
        net_spec.links.push(("R0:b1".into(), "Br:a".into()));
        net_spec
            .links
            .push((format!("R{}:b2", spec.chain - 1), "Br:b".into()));
    }
    for k in 0..spec.prefixes {
        net_spec.announcements.push(AnnouncementSpec {
            prefix: format!("{}.0.0.0/8", k + 1),
            interface: format!("R{}:x", spec.chain - 1),
        });
    }
    net_spec.entering.push(jinjing_net::spec::EnteringSpec {
        interface: "R0:l".into(),
        dst_prefixes: (0..spec.prefixes)
            .map(|k| format!("{}.0.0.0/8", k + 1))
            .collect(),
    });
    let net = net_spec.build().expect("generated spec is valid");

    // Candidate ACL slots: every ingress of every chain device's l/r plus
    // the bridge.
    let mut candidates: Vec<Slot> = Vec::new();
    for i in 0..spec.chain {
        for ifname in ["l", "r"] {
            let iface = net
                .topology()
                .iface_by_name(&format!("R{i}"), ifname)
                .unwrap();
            candidates.push(Slot::ingress(iface));
        }
    }
    if spec.diamond {
        let a = net.topology().iface_by_name("Br", "a").unwrap();
        candidates.push(Slot::ingress(a));
    }
    let mut before = AclConfig::new();
    for (slot_choice, rules) in &spec.acls {
        let slot = candidates[slot_choice % candidates.len()];
        before.set(slot, Acl::new(rules.clone(), Action::Permit));
    }
    // Mutations produce the after-config.
    let mut after = before.clone();
    let slots = before.slots();
    if !slots.is_empty() {
        for &(ai, kind, seed) in &spec.mutations {
            let slot = slots[ai % slots.len()];
            let acl = after.get(slot).unwrap().clone();
            let mut rules = acl.rules().to_vec();
            match kind {
                0 if !rules.is_empty() => {
                    rules.remove(seed as usize % rules.len());
                }
                1 if !rules.is_empty() => {
                    let i = seed as usize % rules.len();
                    rules[i].action = rules[i].action.flip();
                }
                _ => {
                    let n = (seed % 4) + 1;
                    rules.insert(
                        seed as usize % (rules.len() + 1),
                        Rule::on_dst(Action::Deny, IpPrefix::new(n << 24, 8)),
                    );
                }
            }
            after.set(slot, Acl::new(rules, acl.default_action()));
        }
    }
    (net, before, after)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Check (all four variants) agrees with the oracle on random networks.
    #[test]
    fn check_matches_oracle(spec in scenario_strategy()) {
        let (net, before, after) = build(&spec);
        let scope = Scope::whole(net.topology());
        let oracle = check_exact(&net, &scope, &before, &after, &[]).is_consistent();
        for differential in [false, true] {
            for encoding in [Encoding::Sequential, Encoding::Tree] {
                let cfg = CheckConfig {
                    differential,
                    encoding,
                    ..CheckConfig::default()
                };
                let got = check_configs(&net, &scope, &before, &after, &[], &cfg)
                    .expect("check")
                    .outcome
                    .is_consistent();
                prop_assert_eq!(got, oracle, "diff={} enc={:?}", differential, encoding);
            }
        }
    }

    /// Both fix strategies repair (oracle-certified) or report unfixable,
    /// and they agree on feasibility.
    #[test]
    fn fix_strategies_agree(spec in scenario_strategy()) {
        let (net, before, after) = build(&spec);
        let scope = Scope::whole(net.topology());
        // Allow every ingress/egress slot of every device: maximal freedom.
        let mut allow = Vec::new();
        for d in net.topology().devices() {
            for &i in net.topology().device_ifaces(d) {
                allow.push(Slot::ingress(i));
                allow.push(Slot::egress(i));
            }
        }
        let task = Task {
            scope: scope.clone(),
            allow,
            before: before.clone(),
            after,
            modified: Vec::new(),
            controls: Vec::new(),
            command: Command::Fix,
        };
        let mut feasibility = Vec::new();
        for strategy in [FixStrategy::IterativeCegis, FixStrategy::ExactBatch] {
            let cfg = FixConfig {
                strategy,
                ..FixConfig::default()
            };
            match fix(&net, &task, &cfg) {
                Ok(plan) => {
                    let verdict = check_exact(&net, &scope, &before, &plan.fixed, &[]);
                    prop_assert!(verdict.is_consistent(), "{:?}", strategy);
                    feasibility.push(true);
                }
                Err(FixError::Unfixable { .. }) => feasibility.push(false),
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }
        prop_assert_eq!(feasibility[0], feasibility[1], "strategies disagree on feasibility");
    }
}
