//! Determinism regression suite for the parallel query engine.
//!
//! `jinjing-par`'s contract is that every fan-out folds its results in a
//! deterministic order, and `jinjing-core`'s query cache replays hits
//! observationally identically to re-solving. Together they promise:
//! **reports are byte-identical for every thread count and for cache
//! on/off** — including the *choice* of counterexample, the order of
//! emitted fixing rules, and the aggregated solver statistics. This suite
//! pins that promise on the paper's running example for all three
//! primitives, comparing canonical renderings that include everything
//! except wall-clock durations (the one field that legitimately varies).

use jinjing_core::check::{check, check_per_acl, CheckConfig, CheckReport};
use jinjing_core::figure1::Figure1;
use jinjing_core::fix::{fix, FixConfig, FixPlan, FixStrategy};
use jinjing_core::generate::{generate, GenerateConfig, GenerateReport};
use jinjing_core::qcache::QueryCache;
use jinjing_core::Task;
use jinjing_lai::Command;
use jinjing_net::{AclConfig, Slot};
use std::sync::Arc;

/// The thread counts the contract is pinned on (serial, small, oversubscribed).
const THREADS: [usize; 3] = [1, 2, 8];

fn check_cfg(threads: usize, cache: bool) -> CheckConfig {
    CheckConfig {
        threads,
        cache: if cache {
            Some(Arc::new(QueryCache::new()))
        } else {
            None
        },
        ..CheckConfig::default()
    }
}

/// Canonical rendering of a configuration: sorted slots, Display'd ACLs.
fn canon_config(c: &AclConfig) -> String {
    let mut s = String::new();
    for slot in c.slots() {
        let acl = c.get(slot).expect("listed slot is configured");
        s.push_str(&format!("{slot:?} => {acl}\n"));
    }
    s
}

/// Everything in a check report except the wall-clock splits.
fn canon_check(r: &CheckReport) -> String {
    format!(
        "outcome={:?} fec={} paths={} stats={:?} encoded={} total={}",
        r.outcome, r.fec_count, r.paths_checked, r.solver_stats, r.encoded_rules, r.total_rules
    )
}

/// Everything in a fix plan except the wall-clock phase splits.
fn canon_fix(p: &FixPlan) -> String {
    format!(
        "rules={:?}\nhoods={:?}\nfinal={}\nconfig:\n{}",
        p.added_rules,
        p.neighborhoods,
        canon_check(&p.final_check),
        canon_config(&p.fixed)
    )
}

/// Everything in a generate report except the wall-clock phase splits.
fn canon_generate(g: &GenerateReport) -> String {
    format!(
        "aecs={} split={} decs={} rows={} emitted={} final={}\nconfig:\n{}",
        g.aec_count,
        g.aecs_split,
        g.dec_count,
        g.rows,
        g.rules_emitted,
        g.rules_final,
        canon_config(&g.generated)
    )
}

fn fix_task(f: &Figure1) -> Task {
    let mut allow = Vec::new();
    for name in ["A1", "A2", "A3", "A4", "B1", "B2"] {
        allow.push(Slot::ingress(f.iface(name)));
        allow.push(Slot::egress(f.iface(name)));
    }
    Task {
        scope: f.scope(),
        allow,
        before: f.config.clone(),
        after: f.bad_update(),
        modified: Vec::new(),
        controls: Vec::new(),
        command: Command::Fix,
    }
}

fn migration_task(f: &Figure1) -> Task {
    let mut after = f.config.clone();
    after.set(f.slot("A1"), jinjing_acl::Acl::permit_all());
    after.set(f.slot("D2"), jinjing_acl::Acl::permit_all());
    Task {
        scope: f.scope(),
        allow: vec![f.slot("C1"), f.slot("C2"), f.slot("D1")],
        before: f.config.clone(),
        after,
        modified: vec![f.slot("A1"), f.slot("D2")],
        controls: Vec::new(),
        command: Command::Generate,
    }
}

#[test]
fn check_reports_are_identical_across_threads_and_cache() {
    let f = Figure1::new();
    let task = fix_task(&f); // inconsistent update: exercises the witness path
    let mut renderings = Vec::new();
    for cache in [true, false] {
        for threads in THREADS {
            let cfg = check_cfg(threads, cache);
            let r = check(&f.net, &task, &cfg).expect("figure 1 never explodes");
            renderings.push((threads, cache, canon_check(&r)));
        }
    }
    let (_, _, baseline) = &renderings[0];
    assert!(
        baseline.contains("Inconsistent"),
        "the bad update must be caught: {baseline}"
    );
    for (threads, cache, rendering) in &renderings {
        assert_eq!(
            rendering, baseline,
            "check diverged at threads={threads} cache={cache}"
        );
    }
}

#[test]
fn consistent_check_is_identical_across_threads_and_cache() {
    let f = Figure1::new();
    let mut task = fix_task(&f);
    task.after = task.before.clone();
    let mut baseline: Option<String> = None;
    for cache in [true, false] {
        for threads in THREADS {
            let cfg = check_cfg(threads, cache);
            let r = check(&f.net, &task, &cfg).unwrap();
            let rendering = canon_check(&r);
            assert!(rendering.contains("Consistent"), "{rendering}");
            match &baseline {
                None => baseline = Some(rendering),
                Some(b) => assert_eq!(&rendering, b, "threads={threads} cache={cache}"),
            }
        }
    }
}

#[test]
fn fix_plans_are_identical_across_threads_cache_and_both_strategies() {
    let f = Figure1::new();
    let task = fix_task(&f);
    for strategy in [FixStrategy::IterativeCegis, FixStrategy::ExactBatch] {
        let mut baseline: Option<String> = None;
        for cache in [true, false] {
            for threads in THREADS {
                let cfg = FixConfig {
                    strategy,
                    check: check_cfg(threads, cache),
                    ..FixConfig::default()
                };
                let plan = fix(&f.net, &task, &cfg).expect("figure 1 is fixable");
                let rendering = canon_fix(&plan);
                match &baseline {
                    None => baseline = Some(rendering),
                    Some(b) => assert_eq!(
                        &rendering, b,
                        "{strategy:?} diverged at threads={threads} cache={cache}"
                    ),
                }
            }
        }
    }
}

#[test]
fn generate_reports_are_identical_across_threads() {
    let f = Figure1::new();
    let task = migration_task(&f);
    for optimize in [true, false] {
        let mut baseline: Option<String> = None;
        for threads in THREADS {
            let cfg = GenerateConfig {
                optimize,
                threads,
                ..GenerateConfig::default()
            };
            let g = generate(&f.net, &task, &cfg).expect("migration generates");
            let rendering = canon_generate(&g);
            match &baseline {
                None => baseline = Some(rendering),
                Some(b) => assert_eq!(
                    &rendering, b,
                    "generate (optimize={optimize}) diverged at threads={threads}"
                ),
            }
        }
    }
}

#[test]
fn per_acl_check_is_identical_across_threads_and_cache() {
    let f = Figure1::new();
    let before = f.config.clone();
    let after = f.bad_update();
    let mut baseline: Option<String> = None;
    for cache in [true, false] {
        for threads in THREADS {
            let cfg = check_cfg(threads, cache);
            let r = check_per_acl(&before, &after, &cfg);
            let rendering = canon_check(&r);
            match &baseline {
                None => baseline = Some(rendering),
                Some(b) => assert_eq!(&rendering, b, "threads={threads} cache={cache}"),
            }
        }
    }
}

#[test]
fn shared_cache_across_repeated_checks_changes_nothing_and_hits() {
    // One cache reused for the same query load twice: the second run is
    // served from the cache (hit counters grow) yet reports stay identical.
    let f = Figure1::new();
    let task = fix_task(&f);
    let cache = Arc::new(QueryCache::new());
    let cfg = CheckConfig {
        threads: 2,
        cache: Some(Arc::clone(&cache)),
        ..CheckConfig::default()
    };
    let first = check(&f.net, &task, &cfg).unwrap();
    assert!(!cache.is_empty(), "the first run must populate the cache");
    let populated = cache.len();
    let second = check(&f.net, &task, &cfg).unwrap();
    assert_eq!(canon_check(&first), canon_check(&second));
    assert_eq!(
        cache.len(),
        populated,
        "the second run re-asks the same queries; no new entries"
    );
}

/// The pool really is exercised through the public API: an oversubscribed
/// pool (more workers than jobs) still folds deterministically.
#[test]
fn oversubscription_beyond_job_count_is_safe() {
    let f = Figure1::new();
    let task = fix_task(&f);
    let serial = check(&f.net, &task, &check_cfg(1, true)).unwrap();
    let wide = check(&f.net, &task, &check_cfg(64, true)).unwrap();
    assert_eq!(canon_check(&serial), canon_check(&wide));
    // And jinjing-par's own primitive agrees on ordering.
    let pool = jinjing_par::Pool::new(64);
    let squares = pool.par_map(&(0..97).collect::<Vec<i64>>(), |_, x| x * x);
    assert_eq!(squares, (0..97).map(|x| x * x).collect::<Vec<i64>>());
}
