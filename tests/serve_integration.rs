//! End-to-end tests for the `jinjing-serve` daemon: the byte-identity
//! contract (HTTP response bodies equal the committed CLI goldens under
//! concurrency), the admission-control ladder (429 on a full queue, 408
//! past the deadline, 400/413 for malformed/oversized requests — none of
//! which may wound the daemon), session LRU eviction, rejected-delta
//! parity with the in-process session API, and graceful drain.
//!
//! Everything runs over real loopback sockets against `tests/golden/*`.
//! Registry-free: std + the internal crates only, so the offline harness
//! runs this file too (and re-runs it under `JINJING_THREADS=4` — the
//! goldens must not care).

use std::path::PathBuf;
use std::time::Duration;

use jinjing_core::engine::EngineConfig;
use jinjing_core::figure1::Figure1;
use jinjing_core::query::{open_intent_session, recheck_steps, WatchOutput};
use jinjing_serve::client::{call, CallResponse};
use jinjing_serve::{ServeConfig, ServeSummary, Server};

/// Mirrors `tests/cli_golden.rs` (the goldens are rendered from this
/// exact program — keep the two in sync).
const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

/// Mirrors `tests/cli_golden.rs`.
const GENERATE_SRC: &str = r#"
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1 to PermitAll
modify D:2 to PermitAll
generate
"#;

/// Mirrors `tests/cli_golden.rs`.
const WATCH_DELTAS: &str = r#"
# rewrite A1 with a redundant /16 shadowed by its /8: same packet set,
# different rules — a consistent (applied) edit that still dirties classes
step rewrite-a1
set A:1 deny dst 6.0.0.0/8; deny dst 6.1.0.0/16; default permit

# drop D2's denies entirely: opens traffic 1/2 end to end, rejected
step open-d2
set D:2 default permit

# empty delta: the fast path
step noop
"#;

fn golden_dir() -> PathBuf {
    for cand in ["tests/golden", "../../tests/golden"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    PathBuf::from(file!())
        .parent()
        .expect("source file has a parent")
        .join("golden")
}

fn golden(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()))
}

/// Stand a daemon up on an ephemeral port; returns its address and the
/// join handle for the drained summary.
fn start(cfg: ServeConfig) -> (String, std::thread::JoinHandle<ServeSummary>) {
    let f = Figure1::new();
    let srv = Server::bind(f.net, f.config, cfg).expect("bind");
    let addr = srv.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || srv.run().expect("serve"));
    (addr, handle)
}

fn post(addr: &str, path: &str, body: &str) -> CallResponse {
    call(
        addr,
        "POST",
        path,
        &[],
        body.as_bytes(),
        Duration::from_secs(30),
    )
    .expect("call")
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<ServeSummary>) -> ServeSummary {
    let r = post(addr, "/v1/shutdown", "");
    assert_eq!(r.status, 200, "{}", r.body_text());
    handle.join().expect("daemon thread")
}

/// The serving contract: four concurrent clients each exercise every
/// endpoint and every response body must be byte-identical to the
/// committed CLI golden — same renderer, same bytes, no matter how many
/// clients race or how many engine threads run (`JINJING_THREADS` is
/// honored daemon-side; the offline harness re-runs this at 4).
#[test]
fn concurrent_clients_render_the_cli_goldens_byte_for_byte() {
    let (addr, handle) = start(ServeConfig {
        workers: 4,
        deadline_ms: 60_000,
        ..ServeConfig::default()
    });
    let check_golden = golden("check.json");
    let fix_golden = golden("fix.json");
    let generate_golden = golden("generate.json");
    let lint_golden = golden("lint.json");
    let watch_golden = golden("watch.json");
    let check_intent = format!("{RUNNING_EXAMPLE_BODY}check\n");
    let fix_intent = format!("{RUNNING_EXAMPLE_BODY}fix\n");

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (addr, check_intent, fix_intent) = (&addr, &check_intent, &fix_intent);
                let (check_golden, fix_golden, generate_golden, lint_golden, watch_golden) = (
                    &check_golden,
                    &fix_golden,
                    &generate_golden,
                    &lint_golden,
                    &watch_golden,
                );
                s.spawn(move || {
                    let r = post(addr, "/v1/check", check_intent);
                    assert_eq!(r.status, 200, "{}", r.body_text());
                    assert_eq!(r.body_text(), *check_golden, "check drifted from golden");
                    assert_eq!(r.exit_code(), 3, "inconsistent check gates with 3");

                    let r = post(addr, "/v1/fix", fix_intent);
                    assert_eq!(r.status, 200, "{}", r.body_text());
                    assert_eq!(r.body_text(), *fix_golden, "fix drifted from golden");
                    assert_eq!(r.exit_code(), 0);

                    let r = post(addr, "/v1/generate", GENERATE_SRC);
                    assert_eq!(r.status, 200, "{}", r.body_text());
                    assert_eq!(
                        r.body_text(),
                        *generate_golden,
                        "generate drifted from golden"
                    );

                    let r = post(addr, "/v1/lint", check_intent);
                    assert_eq!(r.status, 200, "{}", r.body_text());
                    assert_eq!(r.body_text(), *lint_golden, "lint drifted from golden");

                    // Each client gets its own session; a whole-script
                    // delta batch renders the CLI's watch document.
                    let r = post(addr, "/v1/sessions", check_intent);
                    assert_eq!(r.status, 200, "{}", r.body_text());
                    let body = r.body_text();
                    let id = body
                        .split("\"id\":\"")
                        .nth(1)
                        .and_then(|s| s.split('"').next().map(str::to_string))
                        .expect("session id");
                    let r = post(addr, &format!("/v1/sessions/{id}/delta"), WATCH_DELTAS);
                    assert_eq!(r.status, 200, "{}", r.body_text());
                    assert_eq!(r.body_text(), *watch_golden, "watch drifted from golden");
                    assert_eq!(r.exit_code(), 3, "a rejected delta gates with 3");
                    let r = call(
                        addr,
                        "DELETE",
                        &format!("/v1/sessions/{id}"),
                        &[],
                        b"",
                        Duration::from_secs(30),
                    )
                    .expect("delete");
                    assert_eq!(r.status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.snapshot.counter("serve.sessions_opened"), 4);
    assert_eq!(summary.snapshot.counter("serve.sessions_closed"), 4);
    assert_eq!(
        summary.snapshot.counter("serve.deltas_rejected"),
        4,
        "one rejected step per client"
    );
    assert_eq!(summary.shed, 0);
}

/// Backpressure: one worker, one queue slot. While the worker is pinned
/// and the slot is taken, the next request is shed with 429 +
/// `Retry-After` — and both admitted jobs still finish.
#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue: 1,
        deadline_ms: 60_000,
        allow_test_delay: true,
        ..ServeConfig::default()
    });
    let intent = format!("{RUNNING_EXAMPLE_BODY}check\n");
    let delayed = |addr: &str, ms: &str, intent: &str| {
        call(
            addr,
            "POST",
            "/v1/check",
            &[("X-Jinjing-Test-Delay-Ms".to_string(), ms.to_string())],
            intent.as_bytes(),
            Duration::from_secs(30),
        )
        .expect("call")
    };

    std::thread::scope(|s| {
        // Pin the only worker…
        let t1 = s.spawn(|| delayed(&addr, "2000", &intent));
        std::thread::sleep(Duration::from_millis(500));
        // …fill the only queue slot…
        let t2 = s.spawn(|| delayed(&addr, "0", &intent));
        std::thread::sleep(Duration::from_millis(300));
        // …and the third concurrent request must be shed, immediately.
        let r = post(&addr, "/v1/check", &intent);
        assert_eq!(r.status, 429, "{}", r.body_text());
        assert_eq!(r.header("retry-after"), Some("1"));
        assert!(r.body_text().contains("queue full"), "{}", r.body_text());
        assert_eq!(r.exit_code(), 1);
        // Both admitted jobs are still answered in full.
        assert_eq!(t1.join().expect("t1").status, 200);
        assert_eq!(t2.join().expect("t2").status, 200);
    });

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.shed, 1);
    assert_eq!(summary.snapshot.counter("serve.http_429"), 1);
}

/// Deadlines: a job that outwaits its `X-Jinjing-Deadline-Ms` in the
/// queue is answered 408 without ever touching the solver.
#[test]
fn queued_past_deadline_is_answered_408() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue: 4,
        deadline_ms: 60_000,
        allow_test_delay: true,
        ..ServeConfig::default()
    });
    let intent = format!("{RUNNING_EXAMPLE_BODY}check\n");

    std::thread::scope(|s| {
        // Pin the worker for ~1.5 s.
        let t1 = s.spawn(|| {
            call(
                &addr,
                "POST",
                "/v1/check",
                &[("X-Jinjing-Test-Delay-Ms".to_string(), "1500".to_string())],
                intent.as_bytes(),
                Duration::from_secs(30),
            )
            .expect("call")
        });
        std::thread::sleep(Duration::from_millis(300));
        // This one's deadline expires while it waits behind t1.
        let r = call(
            &addr,
            "POST",
            "/v1/check",
            &[("X-Jinjing-Deadline-Ms".to_string(), "200".to_string())],
            intent.as_bytes(),
            Duration::from_secs(30),
        )
        .expect("call");
        assert_eq!(r.status, 408, "{}", r.body_text());
        assert!(r.body_text().contains("deadline"), "{}", r.body_text());
        assert_eq!(r.exit_code(), 1);
        assert_eq!(t1.join().expect("t1").status, 200);
    });

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.snapshot.counter("serve.deadline_expired"), 1);
    assert_eq!(summary.snapshot.counter("serve.http_408"), 1);
}

/// Hostile input: garbage bytes get 400, an oversized body gets 413 (its
/// payload never read), and the daemon keeps serving afterwards.
#[test]
fn malformed_and_oversized_requests_do_not_wound_the_daemon() {
    use std::io::{Read, Write};

    let (addr, handle) = start(ServeConfig {
        workers: 1,
        max_body: 2048,
        ..ServeConfig::default()
    });

    // Raw garbage on the socket → 400 with the canonical error shape.
    let mut s = std::net::TcpStream::connect(&addr).expect("connect");
    s.write_all(b"NOT-HTTP AT ALL\r\n\r\n").expect("write");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 400 "), "{text}");
    assert!(text.contains("\"status\":400"), "{text}");
    drop(s);

    // A body past max_body → 413, rejected on the declared length alone.
    let huge = "x".repeat(4096);
    let r = post(&addr, "/v1/check", &huge);
    assert_eq!(r.status, 413, "{}", r.body_text());
    assert_eq!(r.exit_code(), 1);

    // An unparseable intent → 400 with the engine's message.
    let r = post(&addr, "/v1/check", "scope Z:*\ncheck\n");
    assert_eq!(r.status, 400, "{}", r.body_text());

    // None of that wounded the daemon: a real check still serves.
    let r = post(
        &addr,
        "/v1/check",
        &format!("{RUNNING_EXAMPLE_BODY}check\n"),
    );
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(r.exit_code(), 3);

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.snapshot.counter("serve.http_400"), 2);
    assert_eq!(summary.snapshot.counter("serve.http_413"), 1);
}

/// Graceful drain: jobs admitted before the shutdown are still answered;
/// afterwards the listener is gone.
#[test]
fn graceful_drain_answers_admitted_jobs_then_stops_listening() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue: 4,
        deadline_ms: 60_000,
        allow_test_delay: true,
        ..ServeConfig::default()
    });
    let intent = format!("{RUNNING_EXAMPLE_BODY}check\n");

    std::thread::scope(|s| {
        // Pin the worker, then queue a second job behind it.
        let t1 = s.spawn(|| {
            call(
                &addr,
                "POST",
                "/v1/check",
                &[("X-Jinjing-Test-Delay-Ms".to_string(), "1000".to_string())],
                intent.as_bytes(),
                Duration::from_secs(30),
            )
            .expect("call")
        });
        std::thread::sleep(Duration::from_millis(300));
        let t2 = s.spawn(|| post(&addr, "/v1/check", &intent));
        std::thread::sleep(Duration::from_millis(100));
        // Drain while both are in flight.
        let r = post(&addr, "/v1/shutdown", "");
        assert_eq!(r.status, 200);
        assert!(r.body_text().contains("draining"));
        // Every admitted job is still answered in full.
        assert_eq!(t1.join().expect("t1").status, 200);
        assert_eq!(t2.join().expect("t2").status, 200);
    });

    let summary = handle.join().expect("daemon thread");
    assert!(summary.requests >= 3);
    // The listener is closed: new connections are refused.
    assert!(
        call(
            &addr,
            "GET",
            "/healthz",
            &[],
            b"",
            Duration::from_millis(500)
        )
        .is_err(),
        "a drained daemon must not accept new connections"
    );
}

/// Satellite regression: a delta rejected over HTTP leaves the resident
/// session *byte-identical* to an in-process mirror session fed the same
/// batches — including every later batch, which would diverge if the
/// rejected delta had leaked into the daemon's session base.
#[test]
fn rejected_delta_over_http_leaves_the_session_byte_identical() {
    let (addr, handle) = start(ServeConfig::default());
    let intent = format!("{RUNNING_EXAMPLE_BODY}check\n");

    // The daemon-side session.
    let r = post(&addr, "/v1/sessions", &intent);
    assert_eq!(r.status, 200, "{}", r.body_text());
    let id = r
        .body_text()
        .split("\"id\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next().map(str::to_string))
        .expect("session id");

    // The in-process mirror, fed the same batches through the same
    // query layer the daemon uses.
    let f = Figure1::new();
    let cfg = EngineConfig::default();
    let mut mirror = open_intent_session(&f.net, &f.config, &intent, &cfg).expect("mirror opens");
    let class_count = mirror.class_count();

    let batches = [
        // A consistent tightening (applied).
        "step rewrite-a1\nset A:1 deny dst 6.0.0.0/8; deny dst 6.1.0.0/16; default permit\n",
        // The violating opening (rejected — must NOT advance the base).
        "step open-d2\nset D:2 default permit\n",
        // A post-rejection no-op batch: diverges if the rejection leaked.
        "step noop\n",
        // A second consistent edit on top of the (unchanged) base.
        "step tighten-a3\nset A:3-out deny dst 7.0.0.0/8; default permit\n",
    ];
    for batch in batches {
        let http = post(&addr, &format!("/v1/sessions/{id}/delta"), batch);
        assert_eq!(http.status, 200, "{}", http.body_text());
        let deltas = jinjing_core::incr::parse_delta_script(&f.net, batch).expect("parse batch");
        let steps = recheck_steps(&mut mirror, &deltas).expect("mirror recheck");
        let want = WatchOutput::from_steps(
            class_count,
            deltas.len(),
            steps,
            jinjing_obs::Snapshot::empty(),
        )
        .to_canonical_json();
        assert_eq!(
            http.body_text(),
            want,
            "daemon session diverged from the in-process mirror on {batch:?}"
        );
    }

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.snapshot.counter("serve.deltas_rejected"), 1);
}

/// The LRU cap: opening past `max_sessions` evicts the least-recently
/// used session, which then 404s; the eviction is counted and visible
/// on `/metrics`.
#[test]
fn session_store_evicts_lru_past_the_cap() {
    let (addr, handle) = start(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    });
    let intent = format!("{RUNNING_EXAMPLE_BODY}check\n");

    let open = |addr: &str| {
        let r = post(addr, "/v1/sessions", &intent);
        assert_eq!(r.status, 200, "{}", r.body_text());
        r.body_text()
            .split("\"id\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next().map(str::to_string))
            .expect("session id")
    };
    let s1 = open(&addr);
    let s2 = open(&addr);
    // Touch s1 so s2 is the LRU victim of the next open.
    let r = post(&addr, &format!("/v1/sessions/{s1}/delta"), "step touch\n");
    assert_eq!(r.status, 200, "{}", r.body_text());
    let s3 = open(&addr);

    let r = post(&addr, &format!("/v1/sessions/{s2}/delta"), "step x\n");
    assert_eq!(r.status, 404, "evicted session must 404, got {}", r.status);
    assert!(r.body_text().contains("evicted"), "{}", r.body_text());
    for alive in [&s1, &s3] {
        let r = post(&addr, &format!("/v1/sessions/{alive}/delta"), "step ok\n");
        assert_eq!(r.status, 200, "{}", r.body_text());
    }

    // The eviction shows on the Prometheus endpoint.
    let metrics = call(&addr, "GET", "/metrics", &[], b"", Duration::from_secs(30))
        .expect("metrics")
        .body_text();
    assert!(
        metrics.contains("jinjing_serve_sessions_evicted 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("jinjing_serve_sessions_live 2"),
        "{metrics}"
    );

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.snapshot.counter("serve.sessions_evicted"), 1);
}

/// `POST /v1/lint/multi` renders the committed multi-tenant golden
/// byte-for-byte from the same example pair the CLI goldens use: the
/// tenant-sectioned wire body is just another front end over
/// `engine::lint_multi`. A conflicting pair gates with exit 4; malformed
/// bodies 400 without wounding the daemon.
#[test]
fn multi_tenant_lint_renders_the_cli_golden_byte_for_byte() {
    let (addr, handle) = start(ServeConfig::default());

    let examples = {
        let mut found = None;
        for cand in ["examples/data", "../../examples/data"] {
            if PathBuf::from(cand).is_dir() {
                found = Some(PathBuf::from(cand));
                break;
            }
        }
        found.expect("examples/data not found")
    };
    let read = |name: &str| {
        let path = examples.join(format!("tenant-{name}.lai"));
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    };
    let body = format!(
        "#priority alpha,beta\n#tenant alpha\n{}#tenant beta\n{}",
        read("alpha"),
        read("beta")
    );

    let r = post(&addr, "/v1/lint/multi", &body);
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(
        r.body_text(),
        golden("lint_multi.json"),
        "multi-tenant lint drifted from golden"
    );
    // JL301 is a warning, not an error: the report itself exits 0.
    assert_eq!(r.exit_code(), 0);

    // Malformed bodies are a client error, not a daemon wound.
    for bad in [
        "check\n",                          // content before any #tenant
        "#tenant\ncheck\n",                 // nameless section
        "#tenant a\ncheck\n#tenant a\n",    // duplicate tenant
        "#priority nosuch\n#tenant a\nscope A:*\ncheck\n", // unknown priority name
    ] {
        let r = post(&addr, "/v1/lint/multi", bad);
        assert_eq!(r.status, 400, "body {bad:?}: {}", r.body_text());
    }

    // The daemon is still healthy afterwards.
    let r = post(&addr, "/v1/lint/multi", &body);
    assert_eq!(r.status, 200, "{}", r.body_text());

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.shed, 0, "nothing should have been shed");
}

/// `POST /v1/plan` is byte-identical to `jinjing plan --format json` on
/// the committed fixtures: the feasible relocation golden with exit 0,
/// the infeasible drop with `X-Jinjing-Exit: 3`, and malformed bodies
/// answered 400 without wounding the daemon.
#[test]
fn plan_endpoint_renders_the_cli_goldens_byte_for_byte() {
    let (addr, handle) = start(ServeConfig::default());

    let examples = {
        let mut found = None;
        for cand in ["examples/data", "../../examples/data"] {
            if PathBuf::from(cand).is_dir() {
                found = Some(PathBuf::from(cand));
                break;
            }
        }
        found.expect("examples/data not found")
    };
    let read = |name: &str| {
        let path = examples.join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
    };
    // Mirrors `tests/cli_golden.rs` (PLAN_INTENT + the --target fixtures).
    let intent = "scope A:*, B:*, C:*, D:*\ncheck\n";

    let body = format!("{intent}#target\n{}", read("rollout-target.deltas"));
    let r = post(&addr, "/v1/plan", &body);
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(
        r.body_text(),
        golden("plan_feasible.json"),
        "feasible plan drifted from golden"
    );
    assert_eq!(r.exit_code(), 0);

    let body = format!("{intent}#target\n{}", read("rollout-impossible.deltas"));
    let r = post(&addr, "/v1/plan", &body);
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(
        r.body_text(),
        golden("plan_infeasible.json"),
        "infeasible plan drifted from golden"
    );
    assert_eq!(r.exit_code(), 3, "unorderable update gates like a failed check");

    // A wave budget is honored: one wave cannot host the ordered pair.
    let body = format!(
        "{intent}#max-waves 1\n#target\n{}",
        read("rollout-target.deltas")
    );
    let r = post(&addr, "/v1/plan", &body);
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(r.exit_code(), 3);

    // Malformed bodies are a client error, not a daemon wound.
    for bad in [
        "",                                        // no intent at all
        "scope A:*\ncheck\n#target\n#target\n",    // duplicate #target
        "scope A:*\ncheck\n#max-waves x\n",        // bad number
        "scope A:*\ncheck\n#target\nset nosuch:1 default permit\n", // bad delta
    ] {
        let r = post(&addr, "/v1/plan", bad);
        assert_eq!(r.status, 400, "body {bad:?}: {}", r.body_text());
    }

    // The daemon is still healthy afterwards.
    let body = format!("{intent}#target\n{}", read("rollout-target.deltas"));
    let r = post(&addr, "/v1/plan", &body);
    assert_eq!(r.status, 200, "{}", r.body_text());

    let summary = shutdown(&addr, handle);
    assert_eq!(summary.shed, 0, "nothing should have been shed");
}
