//! End-to-end tests for the `jinjing-shard` coordinator: the byte-identity
//! contract (coordinator responses equal the committed single-process CLI
//! goldens at every shard width and engine thread count), the backend-down
//! failure mode (canonical-JSON error, no partial results), and the
//! streaming protocol (progress docs followed by the identical final body).
//!
//! Everything runs over real loopback sockets: one coordinator fronting
//! N `jinjing-serve` backends, all on the Figure 1 network, pinned to
//! `tests/golden/*`. Registry-free: std + the internal crates only, so
//! the offline harness runs this file too (and re-runs it under
//! `JINJING_THREADS=4` — the goldens must not care).

use std::path::PathBuf;
use std::time::Duration;

use jinjing_core::figure1::Figure1;
use jinjing_obs::json;
use jinjing_serve::client::{call, call_stream, CallResponse};
use jinjing_serve::{ServeConfig, ServeSummary, Server};
use jinjing_shard::{CoordSummary, Coordinator, ShardConfig};

/// Mirrors `tests/cli_golden.rs` (the goldens are rendered from this
/// exact program — keep the two in sync).
const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

fn golden_dir() -> PathBuf {
    for cand in ["tests/golden", "../../tests/golden"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    PathBuf::from(file!())
        .parent()
        .expect("source file has a parent")
        .join("golden")
}

fn golden(name: &str) -> String {
    let path = golden_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e})", path.display()))
}

fn examples_dir() -> PathBuf {
    for cand in ["examples/data", "../../examples/data"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    panic!("examples/data not found");
}

/// A `jinjing-serve` backend on an ephemeral port.
fn backend() -> (String, std::thread::JoinHandle<ServeSummary>) {
    let f = Figure1::new();
    let srv = Server::bind(f.net, f.config, ServeConfig::default()).expect("backend bind");
    let addr = srv.local_addr().expect("backend addr").to_string();
    let handle = std::thread::spawn(move || srv.run().expect("backend run"));
    (addr, handle)
}

/// A coordinator fronting `backends`, with explicit engine threads.
fn coordinator(
    backends: Vec<String>,
    threads: usize,
) -> (String, std::thread::JoinHandle<CoordSummary>) {
    let f = Figure1::new();
    let coord = Coordinator::bind(
        f.net,
        f.config,
        ShardConfig {
            backends,
            threads,
            ..ShardConfig::default()
        },
    )
    .expect("coordinator bind");
    let addr = coord.local_addr().expect("coordinator addr").to_string();
    let handle = std::thread::spawn(move || coord.run().expect("coordinator run"));
    (addr, handle)
}

fn post(addr: &str, path: &str, body: &str) -> CallResponse {
    call(
        addr,
        "POST",
        path,
        &[],
        body.as_bytes(),
        Duration::from_secs(60),
    )
    .expect("call")
}

fn shutdown<T>(addr: &str, handle: std::thread::JoinHandle<T>) -> T {
    let r = post(addr, "/v1/shutdown", "");
    assert_eq!(r.status, 200, "{}", r.body_text());
    handle.join().expect("server thread")
}

/// The tentpole contract: the coordinator's check / lint / plan responses
/// are byte-identical to the committed single-process CLI goldens at every
/// shard width in {1, 2, 4} and at engine threads {1, 4}. Sharding and
/// threading are pure partitions of the solver work — never of the
/// rendered report.
#[test]
fn coordinator_matches_single_process_goldens_at_every_width_and_thread_count() {
    let check_golden = golden("check.json");
    let lint_golden = golden("lint.json");
    let plan_golden = golden("plan_feasible.json");
    let check_intent = format!("{RUNNING_EXAMPLE_BODY}check\n");
    let target = std::fs::read_to_string(examples_dir().join("rollout-target.deltas"))
        .expect("read rollout-target.deltas");
    let plan_body = format!("scope A:*, B:*, C:*, D:*\ncheck\n#target\n{target}");

    for width in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let mut backends = Vec::new();
            for _ in 0..width {
                backends.push(backend());
            }
            let addrs: Vec<String> = backends.iter().map(|(a, _)| a.clone()).collect();
            let (coord, coord_handle) = coordinator(addrs, threads);
            let why = format!("width {width}, threads {threads}");

            let r = post(&coord, "/v1/check", &check_intent);
            assert_eq!(r.status, 200, "{why}: {}", r.body_text());
            assert_eq!(r.body_text(), check_golden, "{why}: check drifted");
            assert_eq!(r.exit_code(), 3, "{why}: inconsistent check gates with 3");

            let r = post(&coord, "/v1/lint", &check_intent);
            assert_eq!(r.status, 200, "{why}: {}", r.body_text());
            assert_eq!(r.body_text(), lint_golden, "{why}: lint drifted");
            assert_eq!(r.exit_code(), 0, "{why}");

            let r = post(&coord, "/v1/plan", &plan_body);
            assert_eq!(r.status, 200, "{why}: {}", r.body_text());
            assert_eq!(r.body_text(), plan_golden, "{why}: plan drifted");
            assert_eq!(r.exit_code(), 0, "{why}");

            let summary = shutdown(&coord, coord_handle);
            assert!(summary.requests >= 3, "{why}: {}", summary.requests);
            // The merged snapshot proves a real fan-out happened, and
            // every backend served at least one shard slice of it.
            assert!(
                summary.snapshot.counter("shard.fan_outs") >= 1,
                "{why}: the check must delegate its solver pass"
            );
            for (addr, handle) in backends {
                let s = shutdown(&addr, handle);
                assert!(s.requests >= 1, "{why}: idle backend at {addr}");
            }
        }
    }
}

/// Streaming: with `X-Jinjing-Stream: 1` the coordinator answers in
/// chunked transfer encoding — per-shard progress documents first, then a
/// final chunk that is byte-identical to the plain (unstreamed) response.
#[test]
fn streamed_check_emits_progress_then_the_golden_bytes() {
    let check_golden = golden("check.json");
    let check_intent = format!("{RUNNING_EXAMPLE_BODY}check\n");
    let (b1, h1) = backend();
    let (b2, h2) = backend();
    let (coord, coord_handle) = coordinator(vec![b1.clone(), b2.clone()], 1);

    let mut chunks: Vec<String> = Vec::new();
    let r = call_stream(
        &coord,
        "POST",
        "/v1/check",
        &[("X-Jinjing-Stream".to_string(), "1".to_string())],
        check_intent.as_bytes(),
        Duration::from_secs(60),
        &mut |frame: &[u8]| chunks.push(String::from_utf8_lossy(frame).into_owned()),
    )
    .expect("streamed call");
    assert_eq!(r.status, 200, "{}", r.body_text());
    // Streamed responses carry no exit header: the verdict arrives in the
    // final chunk, after the status line has long been sent.
    assert_eq!(r.header("x-jinjing-exit"), None);
    assert!(
        chunks.len() >= 3,
        "want >=2 progress docs + the final body, got {chunks:?}"
    );
    let last = chunks.last().expect("final chunk");
    assert_eq!(last, &check_golden, "final chunk must be the golden bytes");
    for progress in &chunks[..chunks.len() - 1] {
        assert!(
            progress.contains("\"shards\":2"),
            "progress doc should name the fan-out width: {progress}"
        );
    }

    shutdown(&coord, coord_handle);
    shutdown(&b1, h1);
    shutdown(&b2, h2);
}

/// No partial results: when any backend is down the whole request fails
/// with a canonical-JSON error document naming the dead shard — the
/// coordinator never silently degrades to a narrower fan-out.
#[test]
fn a_dead_backend_fails_the_whole_request_with_canonical_json() {
    let (alive, h1) = backend();
    // Bind then drop: a port that refuses connections.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let (coord, coord_handle) = coordinator(vec![alive.clone(), dead], 1);
    let check_intent = format!("{RUNNING_EXAMPLE_BODY}check\n");

    for path in ["/v1/check", "/v1/lint"] {
        let r = post(&coord, path, &check_intent);
        assert_eq!(r.status, 502, "{path}: {}", r.body_text());
        assert_eq!(r.exit_code(), 1, "{path}");
        let doc = json::parse(r.body_text().trim()).expect("error body is canonical JSON");
        assert_eq!(
            doc.get("status").and_then(json::Json::as_u64),
            Some(502),
            "{path}: {}",
            r.body_text()
        );
        let msg = doc
            .get("error")
            .and_then(json::Json::as_str)
            .expect("error string");
        assert!(
            msg.contains("shard 1/2"),
            "{path}: error must name the dead shard: {msg}"
        );
    }

    // The healthy backend was untouched by the failure; a full-width
    // coordinator over it alone still renders the golden.
    let (solo, solo_handle) = coordinator(vec![alive.clone()], 1);
    let r = post(&solo, "/v1/check", &check_intent);
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(r.body_text(), golden("check.json"));

    shutdown(&solo, solo_handle);
    shutdown(&coord, coord_handle);
    shutdown(&alive, h1);
}
