//! Integration tests for the cross-tenant lint layer (`JL301`–`JL304`):
//! fixtures per diagnostic code, witness-packet properties for certified
//! conflicts, byte-determinism of the JSON and SARIF renderings across
//! thread counts and tenant input orders, a seeded random-program sweep,
//! and the committed two-tenant examples under `examples/data/`.

use jinjing_core::engine::{lint_multi as engine_lint_multi, ReportKind};
use jinjing_core::figure1::Figure1;
use jinjing_lai::{ControlVerb, HeaderSel, Program};
use jinjing_lint::{
    cross_conflicts, lint_multi, to_sarif, Certainty, LintConfig, Severity, TenantIntent,
};
use std::path::PathBuf;

fn program(src: &str) -> Program {
    jinjing_lai::validate(jinjing_lai::parse_program(src).expect("parse")).expect("validate")
}

/// Tenant quarantining 1.0.0.0/8 between the A and D edges.
const ISOLATE: &str = "scope A:*, B:*, D:*\ncontrol A:* -> D:* isolate dst 1.0.0.0/8\ncheck\n";

/// Tenant opening a slice of the same space on an overlapping endpoint
/// pair — contests `ISOLATE` (JL301).
const OPEN: &str = "scope A:*, D:*\ncontrol A:1 -> D:* open dst 1.2.0.0/16\ncheck\n";

/// Tenant on disjoint traffic: clean against both of the above.
const DISJOINT: &str = "scope B:*, C:*\ncontrol B:* -> C:* isolate dst 2.0.0.0/8\ncheck\n";

fn tenants(pairs: &[(&str, &str)]) -> Vec<TenantIntent> {
    pairs
        .iter()
        .map(|(name, src)| TenantIntent::new(*name, program(src)))
        .collect()
}

fn cfg_with_threads(threads: usize) -> LintConfig {
    LintConfig {
        threads,
        ..LintConfig::default()
    }
}

/// Does the witness packet match a control statement's traffic selector?
fn header_matches(sel: &HeaderSel, w: &jinjing_acl::Packet) -> bool {
    match sel {
        HeaderSel::Src(p) => p.contains(w.sip),
        HeaderSel::Dst(p) => p.contains(w.dip),
        HeaderSel::All => true,
    }
}

// ---------------------------------------------------------------- fixtures

#[test]
fn jl301_conflict_is_certified_with_witness_and_both_spans() {
    let ts = tenants(&[("alpha", ISOLATE), ("beta", OPEN)]);
    let conflicts = cross_conflicts(&ts, &LintConfig::default());
    assert_eq!(conflicts.len(), 1);
    let c = &conflicts[0];
    assert!(c.certified, "solver confirmation is on by default");
    assert!(c.region.contains(&c.witness));
    assert_eq!(
        (c.verb_a, c.verb_b),
        (ControlVerb::Isolate, ControlVerb::Open)
    );

    let report = lint_multi(&ts, &[], &LintConfig::default());
    assert!(report.has_code("JL301"));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "JL301")
        .expect("JL301 present");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.tenant.as_deref(), Some("alpha,beta"));
    assert!(d.location.contains("alpha:control:0"));
    assert!(d.location.contains("beta:control:0"));
    assert_eq!(d.certainty, Some(Certainty::SolverConfirmed));
    assert!(d.message.contains("witness"), "message: {}", d.message);
}

#[test]
fn jl302_cross_tenant_subsumption_is_a_note() {
    let wide = "scope A:*, D:*\ncontrol A:* -> D:* isolate dst 1.0.0.0/8\ncheck\n";
    let narrow = "scope A:*, D:*\ncontrol A:1 -> D:* isolate dst 1.2.0.0/16\ncheck\n";
    let ts = tenants(&[("big", wide), ("small", narrow)]);
    let report = lint_multi(&ts, &[], &LintConfig::default());
    assert!(report.has_code("JL302"));
    assert!(!report.has_code("JL301"), "same verb is not a conflict");
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "JL302")
        .expect("JL302 present");
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(d.tenant.as_deref(), Some("small"));
}

#[test]
fn jl303_priority_preview_resolves_the_merge() {
    let ts = tenants(&[("alpha", ISOLATE), ("beta", OPEN)]);
    let prio = vec!["alpha".to_string(), "beta".to_string()];
    let report = lint_multi(&ts, &prio, &LintConfig::default());
    assert!(report.has_code("JL303"));
    assert!(!report.has_code("JL304"));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == "JL303")
        .expect("JL303 present");
    assert!(
        d.message.contains("`alpha`"),
        "the higher-priority tenant wins: {}",
        d.message
    );
    // The summary line declares totality.
    let summary = report
        .diagnostics()
        .iter()
        .find(|d| d.location == "multi:priority")
        .expect("merge summary present");
    assert!(summary.message.contains("the merge is total"));
    assert_eq!(summary.severity, Severity::Note);
}

#[test]
fn jl304_unresolved_contest_without_priority() {
    let ts = tenants(&[("alpha", ISOLATE), ("beta", OPEN)]);
    let report = lint_multi(&ts, &[], &LintConfig::default());
    assert!(report.has_code("JL304"));
    // The only JL303 line is the merge summary — no per-conflict preview.
    assert!(report
        .diagnostics()
        .iter()
        .filter(|d| d.code == "JL303")
        .all(|d| d.location == "multi:priority"));
    let summary = report
        .diagnostics()
        .iter()
        .find(|d| d.location == "multi:priority")
        .expect("merge summary present");
    assert!(summary.message.contains("not total"));
    assert_eq!(summary.severity, Severity::Warning);
}

#[test]
fn disjoint_pair_is_clean_of_cross_tenant_findings() {
    let ts = tenants(&[("alpha", ISOLATE), ("gamma", DISJOINT)]);
    let report = lint_multi(&ts, &[], &LintConfig::default());
    for code in ["JL301", "JL302", "JL303", "JL304"] {
        assert!(!report.has_code(code), "unexpected {code}");
    }
}

// ------------------------------------------------------ witness properties

#[test]
fn jl301_witness_is_classified_differently_by_both_intents() {
    let ts = tenants(&[("alpha", ISOLATE), ("beta", OPEN)]);
    for cfg in [
        LintConfig::default(),
        LintConfig {
            solver_confirm: false,
            ..LintConfig::default()
        },
    ] {
        let conflicts = cross_conflicts(&ts, &cfg);
        assert_eq!(conflicts.len(), 1);
        let c = &conflicts[0];
        assert_eq!(c.certified, cfg.solver_confirm);
        // The witness sits in the contested region and matches both
        // statements' traffic selectors, on which the verbs disagree.
        assert!(c.region.contains(&c.witness));
        let sa = &ts[0].program.controls[c.stmt_a];
        let sb = &ts[1].program.controls[c.stmt_b];
        assert!(header_matches(&sa.header, &c.witness));
        assert!(header_matches(&sb.header, &c.witness));
        assert_ne!(sa.verb, sb.verb);
    }
}

// ------------------------------------------------------------- determinism

#[test]
fn json_and_sarif_are_byte_identical_across_threads_and_orders() {
    let forward = tenants(&[("alpha", ISOLATE), ("beta", OPEN), ("gamma", DISJOINT)]);
    let backward = tenants(&[("gamma", DISJOINT), ("beta", OPEN), ("alpha", ISOLATE)]);
    let prio = vec!["beta".to_string(), "alpha".to_string()];

    let base = lint_multi(&forward, &prio, &cfg_with_threads(1));
    let (base_json, base_sarif) = (base.to_json(), to_sarif(&base));
    assert!(base.has_code("JL301"));

    for ts in [&forward, &backward] {
        for threads in [1usize, 4] {
            let report = lint_multi(ts, &prio, &cfg_with_threads(threads));
            assert_eq!(report.to_json(), base_json, "threads={threads}");
            assert_eq!(to_sarif(&report), base_sarif, "threads={threads}");
        }
    }
}

// --------------------------------------------------------- property sweep

/// Minimal xorshift64* generator so the sweep needs no external crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

fn random_tenant(rng: &mut XorShift, controls: usize) -> Program {
    let endpoints = ["A:*", "A:1", "B:*", "D:*", "D:2"];
    let verbs = ["isolate", "open"];
    let headers = [
        "dst 1.0.0.0/8",
        "dst 1.2.0.0/16",
        "dst 2.0.0.0/8",
        "src 10.0.0.0/8",
        "all",
    ];
    let mut src = String::from("scope A:*, B:*, D:*\n");
    for _ in 0..controls {
        src.push_str(&format!(
            "control {} -> {} {} {}\n",
            rng.pick(&endpoints),
            rng.pick(&endpoints),
            rng.pick(&verbs),
            rng.pick(&headers)
        ));
    }
    src.push_str("check\n");
    program(&src)
}

#[test]
fn random_programs_always_yield_witnessed_deterministic_conflicts() {
    for seed in 1..=12u64 {
        let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let ts: Vec<TenantIntent> = (0..3)
            .map(|k| TenantIntent::new(format!("t{k}"), random_tenant(&mut rng, 3)))
            .collect();
        let conflicts = cross_conflicts(&ts, &LintConfig::default());
        for c in &conflicts {
            assert!(c.certified, "seed {seed}: conflict not solver-certified");
            assert!(c.region.contains(&c.witness), "seed {seed}");
            let ta = ts.iter().find(|t| t.tenant == c.tenant_a).unwrap();
            let tb = ts.iter().find(|t| t.tenant == c.tenant_b).unwrap();
            let sa = &ta.program.controls[c.stmt_a];
            let sb = &tb.program.controls[c.stmt_b];
            assert!(header_matches(&sa.header, &c.witness), "seed {seed}");
            assert!(header_matches(&sb.header, &c.witness), "seed {seed}");
            assert_ne!(sa.verb, sb.verb, "seed {seed}");
        }
        // Thread count never changes the rendered bytes.
        let one = lint_multi(&ts, &[], &cfg_with_threads(1)).to_json();
        let four = lint_multi(&ts, &[], &cfg_with_threads(4)).to_json();
        assert_eq!(one, four, "seed {seed}");
    }
}

// ------------------------------------------------------- committed examples

/// Locate `examples/data/` from the repo root (offline harness) or the
/// `crates/tests` package dir (cargo).
fn examples_dir() -> PathBuf {
    for cand in ["examples/data", "../../examples/data"] {
        let p = PathBuf::from(cand);
        if p.is_dir() {
            return p;
        }
    }
    panic!("examples/data not found from {:?}", std::env::current_dir());
}

fn example_tenant(name: &str) -> TenantIntent {
    let path = examples_dir().join(format!("tenant-{name}.lai"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    TenantIntent::new(name, program(&text))
}

#[test]
fn committed_example_pair_conflicts_through_the_engine() {
    let fig = Figure1::new();
    let ts = vec![example_tenant("alpha"), example_tenant("beta")];
    let prio = vec!["alpha".to_string(), "beta".to_string()];
    let out = engine_lint_multi(&fig.net, &fig.config, &ts, &prio, &LintConfig::default());
    let ReportKind::Lint(report) = out.kind else {
        panic!("expected a lint report")
    };
    assert!(report.has_code("JL301"));
    assert!(report.has_code("JL303"));
    assert!(!report.has_code("JL304"));
}

#[test]
fn committed_clean_pair_stays_clean() {
    let fig = Figure1::new();
    let ts = vec![example_tenant("alpha"), example_tenant("gamma")];
    let out = engine_lint_multi(&fig.net, &fig.config, &ts, &[], &LintConfig::default());
    let ReportKind::Lint(report) = out.kind else {
        panic!("expected a lint report")
    };
    assert!(!report.has_code("JL301"));
    assert!(!report.has_code("JL304"));
}
