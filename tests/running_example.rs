//! End-to-end reproduction of every worked example in the paper, driven
//! through the public API exactly as an operator would use it (LAI text →
//! parse → validate → resolve → run).

use jinjing_core::check::{check_exact, CheckOutcome};
use jinjing_core::engine::{run, EngineConfig, Report, ReportKind};
use jinjing_core::figure1::Figure1;
use jinjing_core::resolve::resolve;
use jinjing_lai::{parse_program, validate};

const RUNNING_EXAMPLE_BODY: &str = r#"
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3-out to A3'
"#;

fn run_lai(fig: &Figure1, src: &str) -> Report {
    let program = validate(parse_program(src).expect("parse")).expect("validate");
    let task = resolve(&fig.net, &program, &fig.config).expect("resolve");
    run(&fig.net, &task, &EngineConfig::default()).expect("engine")
}

/// §3.2 / Figure 3: the system outputs "inconsistent" after checking.
#[test]
fn figure3_check_reports_inconsistent() {
    let fig = Figure1::new();
    let report = run_lai(&fig, &format!("{RUNNING_EXAMPLE_BODY}check\n"));
    let ReportKind::Check(r) = report.kind else {
        panic!("expected check")
    };
    match r.outcome {
        CheckOutcome::Inconsistent(v) => {
            let top = v.packet.dip >> 24;
            assert!(top == 1 || top == 2, "witness is traffic 1 or 2, got {top}");
        }
        CheckOutcome::Consistent => panic!("the paper's update must fail check"),
    }
}

/// §3.2 / §4.2: fix adds permits for traffic 1 and 2 and the final plan is
/// consistent; §4.2's simplification leaves no redundant stack on A1.
#[test]
fn figure3_fix_produces_consistent_plan() {
    let fig = Figure1::new();
    let report = run_lai(&fig, &format!("{RUNNING_EXAMPLE_BODY}fix\n"));
    let ReportKind::Fix(plan) = report.kind else {
        panic!("expected fix")
    };
    // The two neighborhoods are exactly Traffic 1 and Traffic 2 (§4.2).
    let mut tops: Vec<u32> = plan
        .neighborhoods
        .iter()
        .map(|n| n.dst.addr() >> 24)
        .collect();
    tops.sort();
    assert_eq!(tops, vec![1, 2]);
    // The repaired configuration is exactly-verified consistent.
    let verdict = check_exact(&fig.net, &fig.scope(), &fig.config, &plan.fixed, &[]);
    assert!(verdict.is_consistent(), "{verdict:?}");
    // A1 keeps "deny dst 6.0.0.0/8" + the fix permits, with the §4.2
    // simplification applied: at most 3 rules survive on A1.
    let a1 = plan.fixed.get(fig.slot("A1")).expect("A1 has an ACL");
    assert!(a1.len() <= 3, "A1 over-stacked: {a1}");
    assert!(!a1.permits(&jinjing_acl::Packet::to_dst(6 << 24)));
    assert!(a1.permits(&jinjing_acl::Packet::to_dst(1 << 24)));
    assert!(a1.permits(&jinjing_acl::Packet::to_dst(2 << 24)));
}

/// §5 / Tables 3-4: migration via LAI generate, with the DEC split.
#[test]
fn section5_migration_via_lai() {
    let fig = Figure1::new();
    let src = r#"
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow C:1-in, C:2-in, D:1-in
modify A:1 to PermitAll
modify D:2 to PermitAll
generate
"#;
    let report = run_lai(&fig, src);
    let ReportKind::Generate(g) = report.kind else {
        panic!("expected generate")
    };
    assert_eq!(g.aec_count, 4, "Table 3");
    assert_eq!(g.aecs_split, 1, "§5.3: [1]AEC splits");
    assert_eq!(g.dec_count, 2, "[1]DEC and [2]DEC");
    let verdict = check_exact(&fig.net, &fig.scope(), &fig.config, &g.generated, &[]);
    assert!(verdict.is_consistent());
    // Table 4b spot checks.
    let pkt = |n: u32| jinjing_acl::Packet::to_dst(n << 24 | 7);
    let c1 = g.generated.get(fig.slot("C1")).unwrap();
    let c2 = g.generated.get(fig.slot("C2")).unwrap();
    let d1 = g.generated.get(fig.slot("D1")).unwrap();
    assert!(!c1.permits(&pkt(6)) && !c1.permits(&pkt(7)));
    assert!(c1.permits(&pkt(1)) && c1.permits(&pkt(2)));
    assert!(!c2.permits(&pkt(2)), "the [2]DEC insertion");
    assert!(c2.permits(&pkt(1)));
    assert!(!d1.permits(&pkt(6)));
    assert!(d1.permits(&pkt(7)));
}

/// §6's priority example: maintain shields traffic from a later isolate.
#[test]
fn section6_maintain_priority_end_to_end() {
    let fig = Figure1::new();
    // Keep traffic 4's reachability from A1 to C3, isolate everything else
    // on that pair; generate on C (the only device on the A1→C3 paths we
    // allow to change besides... C3's path is A1,A3,C1,C3).
    let src = r#"
scope A:*, B:*, C:*, D:*
allow C:*
control A:1 -> C:3 maintain dst 4.0.0.0/8
control A:1 -> C:3 isolate all
generate
"#;
    let report = run_lai(&fig, src);
    let ReportKind::Generate(g) = report.kind else {
        panic!("expected generate")
    };
    let program = validate(parse_program(src).unwrap()).unwrap();
    let task = resolve(&fig.net, &program, &fig.config).unwrap();
    let verdict = check_exact(
        &fig.net,
        &fig.scope(),
        &fig.config,
        &g.generated,
        &task.controls,
    );
    assert!(verdict.is_consistent(), "{verdict:?}");
    // Traffic 4 still flows A1→C3; traffic 7 (originally denied) stays
    // denied; any other traffic on that pair is now isolated.
    let scope = fig.scope();
    let paths4 = fig
        .net
        .paths_for_class(&scope, fig.iface("A1"), &fig.traffic(4));
    assert!(!paths4.is_empty());
    let p4 = jinjing_acl::Packet::to_dst(4 << 24 | 1);
    for p in &paths4 {
        assert!(g.generated.path_permits(p, &p4), "maintain kept traffic 4");
    }
    let paths7 = fig
        .net
        .paths_for_class(&scope, fig.iface("A1"), &fig.traffic(7));
    let p7 = jinjing_acl::Packet::to_dst(7 << 24 | 1);
    for p in &paths7 {
        assert!(!g.generated.path_permits(p, &p7), "isolate-all caught 7");
    }
}

/// The engine runs all four check-configuration variants to the same
/// verdict on the running example (the Figure 4a ablation, correctness
/// side).
#[test]
fn check_variants_agree_on_running_example() {
    use jinjing_core::check::{check_configs, CheckConfig};
    use jinjing_core::Encoding;
    let fig = Figure1::new();
    let after = fig.bad_update();
    let mut verdicts = Vec::new();
    for differential in [false, true] {
        for encoding in [Encoding::Sequential, Encoding::Tree] {
            let cfg = CheckConfig {
                differential,
                encoding,
                ..CheckConfig::default()
            };
            let r = check_configs(&fig.net, &fig.scope(), &fig.config, &after, &[], &cfg)
                .expect("check");
            verdicts.push(r.outcome.is_consistent());
        }
    }
    assert!(
        verdicts.iter().all(|&v| !v),
        "all four variants: inconsistent"
    );
}
