#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-lai
//!
//! LAI — the *Language for ACL Intents* of the paper (Figure 2) — as a
//! concrete, parseable DSL.
//!
//! An LAI program has three parts:
//!
//! - **region**: `scope` (the management scope Ω) and `allow` (the slots
//!   whose ACLs may be modified),
//! - **requirement**: `modify` statements naming updated ACLs and/or
//!   `control` statements describing desired reachability changes,
//! - **command**: exactly one of `check`, `fix`, `generate`.
//!
//! To make programs self-contained (the paper ships updated ACLs alongside
//! the intent), we add `acl NAME { … }` definition blocks whose bodies use
//! the rule syntax of [`jinjing_acl::parse`]. Example (the running example
//! of §3.2):
//!
//! ```text
//! acl A1' {
//!     deny dst 1.0.0.0/8
//!     deny dst 2.0.0.0/8
//!     deny dst 6.0.0.0/8
//!     permit all
//! }
//! acl PermitAll { permit all }
//!
//! scope A:*, B:*, C:*, D:*
//! allow A:*, B:*
//! modify D:2 to PermitAll
//! modify A:1 to A1'
//! check
//! ```
//!
//! Interface patterns are `device:iface`, `device:*`, with an optional
//! direction suffix `-in` / `-out` (default ingress), matching the usage in
//! §7's scenarios (`allow R1:*-in`). Control statements follow §6/§7:
//!
//! ```text
//! control R1:*, R2:* -> R3:* isolate src 1.2.0.0/16
//! control A:1 -> C:3 open dst 6.0.0.0/8
//! control A:1 -> C:3 maintain dst 7.0.0.0/8
//! ```
//!
//! (`from`/`to` are accepted as synonyms for `src`/`dst`.)
//!
//! The crate provides the [`ast`], the [`parse`]r, semantic [`mod@validate`]
//! checks, and a pretty-printer ([`printer`]) used by the workload
//! generator to emit the programs counted in Table 5.

pub mod ast;
pub mod parse;
pub mod printer;
pub mod validate;

pub use crate::ast::{
    AclDef, Command, ControlStmt, ControlVerb, DirSpec, HeaderSel, IfaceSel, Modify, Program,
    SlotPattern,
};
pub use crate::parse::{parse_program, LaiError};
pub use crate::printer::print_program;
pub use crate::validate::{validate, validate_plan_intent};
