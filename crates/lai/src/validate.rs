//! Semantic validation of parsed LAI programs.
//!
//! Catches the intent-level mistakes that are well-defined *before* the
//! program is resolved against a concrete network (unknown ACL names,
//! missing command, allow outside scope, …). Network-level resolution
//! errors (unknown devices/interfaces) are reported by the engine in
//! `jinjing-core`.

use crate::ast::{Command, Program};
use crate::parse::LaiError;
use std::collections::HashSet;

/// Validate a program. Returns the (unchanged) program on success so calls
/// chain nicely with `parse_program`.
pub fn validate(prog: Program) -> Result<Program, LaiError> {
    validate_inner(prog, true)
}

/// Validation for planner intents whose update arrives out of band
/// (`jinjing plan --target` / the daemon's `#target` section): the
/// modify-or-control arity rule for `check`/`fix` is waived — a bare
/// scope program is the "keep reachability as it is" invariant. Every
/// other rule (ACL references, allow-within-scope, generate/fix arity)
/// still applies.
pub fn validate_plan_intent(prog: Program) -> Result<Program, LaiError> {
    validate_inner(prog, false)
}

fn validate_inner(prog: Program, require_update: bool) -> Result<Program, LaiError> {
    let command = prog
        .command
        .ok_or_else(|| LaiError::at(0, "program needs a command (check / fix / generate)"))?;
    if prog.scope.is_empty() {
        return Err(LaiError::at(0, "program needs a non-empty scope"));
    }
    // Every modify must reference a defined ACL.
    for m in &prog.modifies {
        if prog.acl_def(&m.acl).is_none() {
            return Err(LaiError::at(
                0,
                format!("modify references undefined acl {:?}", m.acl),
            ));
        }
    }
    // Unreferenced ACL definitions are suspicious but legal; duplicate
    // names were already rejected by the parser.
    // allow-listed devices must be inside the scope (the paper's region
    // semantics: updates happen within Ω).
    let scope_devices: HashSet<&str> = prog.scope.iter().map(|p| p.device.as_str()).collect();
    for a in &prog.allow {
        if !scope_devices.contains(a.device.as_str()) {
            return Err(LaiError::at(
                0,
                format!("allow pattern {a} names a device outside the scope"),
            ));
        }
    }
    match command {
        Command::Check | Command::Fix => {
            if require_update && prog.modifies.is_empty() && prog.controls.is_empty() {
                return Err(LaiError::at(
                    0,
                    format!("{command} needs at least one modify or control requirement"),
                ));
            }
        }
        Command::Generate => {
            if prog.allow.is_empty() {
                return Err(LaiError::at(
                    0,
                    "generate needs an allow list (where to place new ACLs)",
                ));
            }
        }
    }
    if command == Command::Fix && prog.allow.is_empty() {
        return Err(LaiError::at(0, "fix needs an allow list"));
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn check(src: &str) -> Result<Program, LaiError> {
        validate(parse_program(src).unwrap())
    }

    #[test]
    fn valid_program_passes() {
        let p = check("acl P { permit all }\nscope A:*\nallow A:*\nmodify A:1 to P\ncheck\n");
        assert!(p.is_ok());
    }

    #[test]
    fn missing_command_rejected() {
        let e = check("scope A:*\n").unwrap_err();
        assert!(e.message.contains("command"));
    }

    #[test]
    fn missing_scope_rejected() {
        let e = check("acl P { permit all }\nallow A:*\nmodify A:1 to P\ncheck\n");
        // allow outside scope triggers first or scope-empty; either way an error.
        assert!(e.is_err());
    }

    #[test]
    fn undefined_acl_rejected() {
        let e = check("scope A:*\nallow A:*\nmodify A:1 to Nope\ncheck\n").unwrap_err();
        assert!(e.message.contains("undefined acl"));
    }

    #[test]
    fn allow_outside_scope_rejected() {
        let e = check("acl P { permit all }\nscope A:*\nallow B:*\nmodify A:1 to P\ncheck\n")
            .unwrap_err();
        assert!(e.message.contains("outside the scope"));
    }

    #[test]
    fn check_without_requirements_rejected() {
        let e = check("scope A:*\nallow A:*\ncheck\n").unwrap_err();
        assert!(e.message.contains("requirement"));
    }

    #[test]
    fn plan_intent_waives_the_update_arity_rule_only() {
        // A bare scope+check intent: rejected by `validate`, legal as a
        // planner intent (the update arrives as a delta script).
        let src = "scope A:*\ncheck\n";
        assert!(check(src).is_err());
        assert!(validate_plan_intent(parse_program(src).unwrap()).is_ok());
        // Every other rule still applies.
        assert!(validate_plan_intent(parse_program("check\n").unwrap()).is_err());
        let e = validate_plan_intent(parse_program("scope A:*\nallow B:*\ncheck\n").unwrap())
            .unwrap_err();
        assert!(e.message.contains("outside the scope"));
    }

    #[test]
    fn generate_without_allow_rejected() {
        let e = check("scope A:*\ngenerate\n").unwrap_err();
        assert!(e.message.contains("allow"));
    }

    #[test]
    fn generate_with_controls_only_is_fine() {
        let p = check("scope A:*\nallow A:*\ncontrol A:1 -> A:2 isolate dst 1.0.0.0/8\ngenerate\n");
        assert!(p.is_ok());
    }
}
