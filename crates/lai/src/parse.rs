//! Line-oriented parser for LAI programs.
//!
//! LAI is statement-per-line (as in all the paper's figures); `#` starts a
//! comment; blank lines are ignored. `acl NAME {` opens a rule block closed
//! by a line containing `}`; rule lines use [`jinjing_acl::parse`]. A
//! single-line form `acl NAME { permit all }` is also accepted.

use crate::ast::*;
use jinjing_acl::parse::{parse_acl, parse_prefix};
use std::fmt;

/// A parse or validation error, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaiError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number (0 when not line-specific).
    pub line: usize,
}

impl LaiError {
    pub(crate) fn at(line: usize, message: impl Into<String>) -> LaiError {
        LaiError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for LaiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for LaiError {}

/// Parse one interface/slot pattern like `A:1`, `R1:*`, `R3:2-out`.
pub fn parse_pattern(s: &str) -> Result<SlotPattern, String> {
    let (dev, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("pattern {s:?} needs device:iface"))?;
    if dev.is_empty() {
        return Err(format!("pattern {s:?} has an empty device name"));
    }
    let (iface_part, dir) = if let Some(stripped) = rest.strip_suffix("-in") {
        (stripped, Some(DirSpec::In))
    } else if let Some(stripped) = rest.strip_suffix("-out") {
        (stripped, Some(DirSpec::Out))
    } else {
        (rest, None)
    };
    let iface = match iface_part {
        "*" => IfaceSel::Star,
        "" => return Err(format!("pattern {s:?} has an empty interface name")),
        name => IfaceSel::Named(name.to_string()),
    };
    Ok(SlotPattern {
        device: dev.to_string(),
        iface,
        dir,
    })
}

/// Parse a comma/`and`-separated pattern list.
fn parse_pattern_list(s: &str) -> Result<Vec<SlotPattern>, String> {
    let normalized = s.replace(" and ", ",");
    let mut out = Vec::new();
    for part in normalized.split(',') {
        let part = part.trim();
        if part.is_empty() || part == "nil" {
            continue;
        }
        out.push(parse_pattern(part)?);
    }
    if out.is_empty() {
        return Err("empty interface list".to_string());
    }
    Ok(out)
}

fn parse_header_sel(tokens: &[&str]) -> Result<HeaderSel, String> {
    match tokens {
        ["all"] => Ok(HeaderSel::All),
        ["src" | "from", p] => Ok(HeaderSel::Src(parse_prefix(p).map_err(|e| e.to_string())?)),
        ["dst" | "to", p] => Ok(HeaderSel::Dst(parse_prefix(p).map_err(|e| e.to_string())?)),
        other => Err(format!("bad traffic selector {other:?}")),
    }
}

/// Parse a complete LAI program.
pub fn parse_program(text: &str) -> Result<Program, LaiError> {
    let mut prog = Program::default();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let raw = lines[i];
        i += 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "acl" => {
                let (name, brace_rest) = rest
                    .split_once('{')
                    .ok_or_else(|| LaiError::at(lineno, "acl definition needs '{'"))?;
                let name = name.trim();
                if name.is_empty() {
                    return Err(LaiError::at(lineno, "acl definition needs a name"));
                }
                let mut body = String::new();
                let inline = brace_rest.trim();
                if let Some(single) = inline.strip_suffix('}') {
                    // Single-line form: acl N { permit all }
                    body.push_str(single.trim());
                    body.push('\n');
                } else {
                    if !inline.is_empty() {
                        body.push_str(inline);
                        body.push('\n');
                    }
                    let mut closed = false;
                    while i < lines.len() {
                        let inner_no = i + 1;
                        let inner = lines[i].split('#').next().unwrap_or("").trim();
                        i += 1;
                        if inner == "}" {
                            closed = true;
                            break;
                        }
                        if inner.contains('}') {
                            return Err(LaiError::at(
                                inner_no,
                                "'}' must close the acl block on its own line",
                            ));
                        }
                        if !inner.is_empty() {
                            body.push_str(inner);
                            body.push('\n');
                        }
                    }
                    if !closed {
                        return Err(LaiError::at(lineno, "unterminated acl block"));
                    }
                }
                let acl = parse_acl(&body)
                    .map_err(|e| LaiError::at(lineno, format!("in acl {name:?}: {e}")))?;
                if prog.acl_defs.iter().any(|d| d.name == name) {
                    return Err(LaiError::at(lineno, format!("duplicate acl name {name:?}")));
                }
                prog.acl_defs.push(AclDef {
                    name: name.to_string(),
                    acl,
                });
            }
            "scope" => {
                let pats = parse_pattern_list(rest).map_err(|e| LaiError::at(lineno, e))?;
                prog.scope.extend(pats);
            }
            "allow" => {
                let pats = parse_pattern_list(rest).map_err(|e| LaiError::at(lineno, e))?;
                prog.allow.extend(pats);
            }
            "modify" => {
                let (target, acl) = rest
                    .split_once(" to ")
                    .ok_or_else(|| LaiError::at(lineno, "modify needs '<slot> to <acl-name>'"))?;
                let pats =
                    parse_pattern_list(target.trim()).map_err(|e| LaiError::at(lineno, e))?;
                let acl = acl.trim();
                if acl.is_empty() || acl.contains(char::is_whitespace) {
                    return Err(LaiError::at(lineno, "modify needs a single acl name"));
                }
                for target in pats {
                    prog.modifies.push(Modify {
                        target,
                        acl: acl.to_string(),
                    });
                }
            }
            "control" => {
                let (endpoints, action) = rest.split_once("->").ok_or_else(|| {
                    LaiError::at(lineno, "control needs '<from> -> <to> <verb> <traffic>'")
                })?;
                let from =
                    parse_pattern_list(endpoints.trim()).map_err(|e| LaiError::at(lineno, e))?;
                // The action side starts with the `to` pattern list and ends
                // with "<verb> <selector...>". Find the verb token.
                let tokens: Vec<&str> = action.split_whitespace().collect();
                let verb_pos = tokens
                    .iter()
                    .position(|t| matches!(*t, "isolate" | "open" | "maintain"))
                    .ok_or_else(|| {
                        LaiError::at(lineno, "control needs a verb (isolate/open/maintain)")
                    })?;
                let to_str = tokens[..verb_pos].join(" ");
                let to = parse_pattern_list(&to_str).map_err(|e| LaiError::at(lineno, e))?;
                let verb = match tokens[verb_pos] {
                    "isolate" => ControlVerb::Isolate,
                    "open" => ControlVerb::Open,
                    "maintain" => ControlVerb::Maintain,
                    _ => unreachable!(),
                };
                let header = parse_header_sel(&tokens[verb_pos + 1..])
                    .map_err(|e| LaiError::at(lineno, e))?;
                prog.controls.push(ControlStmt {
                    from,
                    to,
                    verb,
                    header,
                });
            }
            "check" | "fix" | "generate" => {
                if !rest.is_empty() {
                    return Err(LaiError::at(
                        lineno,
                        format!("unexpected text after {keyword}"),
                    ));
                }
                if prog.command.is_some() {
                    return Err(LaiError::at(lineno, "duplicate command"));
                }
                prog.command = Some(match keyword {
                    "check" => Command::Check,
                    "fix" => Command::Fix,
                    _ => Command::Generate,
                });
            }
            other => {
                return Err(LaiError::at(lineno, format!("unknown statement {other:?}")));
            }
        }
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of §3.2 / Figure 3.
    const RUNNING_EXAMPLE: &str = r#"
# Figure 3: clean up C and D
acl PermitAll { permit all }
acl A1' {
    deny dst 1.0.0.0/8
    deny dst 2.0.0.0/8
    deny dst 6.0.0.0/8
    permit all
}
acl A3' {
    deny dst 7.0.0.0/8
    permit all
}

scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
modify C:1 to PermitAll
modify A:1 to A1'
modify A:3 to A3'
check
"#;

    #[test]
    fn parses_running_example() {
        let p = parse_program(RUNNING_EXAMPLE).unwrap();
        assert_eq!(p.acl_defs.len(), 3);
        assert_eq!(p.scope.len(), 4);
        assert_eq!(p.allow.len(), 2);
        assert_eq!(p.modifies.len(), 4);
        assert_eq!(p.command, Some(Command::Check));
        assert_eq!(p.acl_def("A1'").unwrap().len(), 4);
        assert_eq!(p.acl_def("PermitAll").unwrap().len(), 1);
        assert_eq!(p.modifies[0].target, SlotPattern::named("D", "2"));
        assert_eq!(p.modifies[0].acl, "PermitAll");
    }

    #[test]
    fn parses_scenario1_controls() {
        // §7 Scenario 1 (with explicit prefix directions).
        let src = r#"
scope R1:*, R2:*, R3:*
allow R1:*-in, R2:*-in, R3:*-in
control R1:*, R2:* -> R3:* isolate src 1.2.0.0/16
control R3:* -> R1:*, R2:* isolate dst 1.2.0.0/16
generate
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.controls.len(), 2);
        assert_eq!(p.controls[0].verb, ControlVerb::Isolate);
        assert_eq!(
            p.controls[0].header,
            HeaderSel::Src(parse_prefix("1.2.0.0/16").unwrap())
        );
        assert_eq!(p.controls[0].from.len(), 2);
        assert_eq!(p.controls[1].to.len(), 2);
        assert_eq!(p.command, Some(Command::Generate));
        assert_eq!(p.allow[0].dir, Some(DirSpec::In));
    }

    #[test]
    fn from_to_synonyms() {
        let p = parse_program(
            "scope R1:*\nallow R1:*\ncontrol R1:* -> R1:* isolate from 1.2.0.0/16\ngenerate\n",
        )
        .unwrap();
        assert!(matches!(p.controls[0].header, HeaderSel::Src(_)));
        let p = parse_program(
            "scope R1:*\nallow R1:*\ncontrol R1:* -> R1:* open to 1.2.0.0/16\ngenerate\n",
        )
        .unwrap();
        assert!(matches!(p.controls[0].header, HeaderSel::Dst(_)));
    }

    #[test]
    fn and_separated_lists() {
        let p = parse_program("scope A:1 and B:2 and C:*\ncheck\n").unwrap();
        assert_eq!(p.scope.len(), 3);
    }

    #[test]
    fn maintain_priority_example() {
        // §6: maintain shields traffic from a later isolate-all.
        let src = "scope A:*\nallow A:*\n\
                   control A:1 -> C:3 maintain dst 7.0.0.0/8\n\
                   control A:1 -> C:3 isolate all\ngenerate\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.controls[0].verb, ControlVerb::Maintain);
        assert_eq!(p.controls[1].verb, ControlVerb::Isolate);
        assert_eq!(p.controls[1].header, HeaderSel::All);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("scope A:*\nbogus thing\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_program("scope\ncheck\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse_program("acl X {\npermit all\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
        let err = parse_program("check now\n").unwrap_err();
        assert!(err.message.contains("unexpected text"));
        let err = parse_program("check\nfix\n").unwrap_err();
        assert!(err.message.contains("duplicate command"));
        let err = parse_program("acl X { permit all }\nacl X { permit all }\ncheck\n").unwrap_err();
        assert!(err.message.contains("duplicate acl name"));
    }

    #[test]
    fn bad_patterns_rejected() {
        for bad in ["scope A\ncheck\n", "scope :1\ncheck\n", "scope A:\ncheck\n"] {
            assert!(parse_program(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn bad_rule_inside_acl_block_reports_block() {
        let err = parse_program("acl X {\nfrobnicate\n}\ncheck\n").unwrap_err();
        assert!(err.message.contains("in acl \"X\""), "{err}");
    }

    #[test]
    fn modify_with_list_target_expands() {
        let p = parse_program("acl P { permit all }\nmodify A:1, A:2 to P\ncheck\n").unwrap();
        assert_eq!(p.modifies.len(), 2);
    }
}
