//! Pretty-printer: AST → LAI source.
//!
//! The workload generator emits programs through this printer; Table 5 of
//! the paper counts exactly these lines. Printing followed by parsing is the
//! identity on the AST (property-tested in the integration suite).

use crate::ast::*;
use std::fmt::Write;

fn print_patterns(out: &mut String, pats: &[SlotPattern]) {
    for (i, p) in pats.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{p}");
    }
}

/// Render a program as LAI source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for def in &p.acl_defs {
        if def.acl.rules().is_empty() {
            let _ = writeln!(
                out,
                "acl {} {{ default {} }}",
                def.name,
                def.acl.default_action()
            );
            continue;
        }
        let _ = writeln!(out, "acl {} {{", def.name);
        for r in def.acl.rules() {
            let _ = writeln!(out, "    {r}");
        }
        if def.acl.default_action() != jinjing_acl::Action::Permit {
            let _ = writeln!(out, "    default {}", def.acl.default_action());
        }
        out.push_str("}\n");
    }
    if !p.scope.is_empty() {
        out.push_str("scope ");
        print_patterns(&mut out, &p.scope);
        out.push('\n');
    }
    if !p.allow.is_empty() {
        out.push_str("allow ");
        print_patterns(&mut out, &p.allow);
        out.push('\n');
    }
    for m in &p.modifies {
        let _ = writeln!(out, "modify {} to {}", m.target, m.acl);
    }
    for c in &p.controls {
        out.push_str("control ");
        print_patterns(&mut out, &c.from);
        out.push_str(" -> ");
        print_patterns(&mut out, &c.to);
        let _ = writeln!(out, " {} {}", c.verb, c.header);
    }
    if let Some(cmd) = p.command {
        let _ = writeln!(out, "{cmd}");
    }
    out
}

/// Count the non-empty source lines of a program — the metric of Table 5.
pub fn line_count(p: &Program) -> usize {
    print_program(p)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

/// Count only the *intent statements* (scope/allow/modify/control/command),
/// excluding ACL definition bodies — the paper ships updated ACLs alongside
/// the program, so Table 5's "lines of LAI" counts the intent itself.
pub fn statement_count(p: &Program) -> usize {
    (!p.scope.is_empty()) as usize
        + (!p.allow.is_empty()) as usize
        + p.modifies.len()
        + p.controls.len()
        + p.command.is_some() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn roundtrip_running_example() {
        let src = "acl PermitAll { permit all }\n\
                   acl A1' {\n    deny dst 1.0.0.0/8\n    deny dst 6.0.0.0/8\n    permit all\n}\n\
                   scope A:*, B:*\nallow A:*\n\
                   modify A:1 to A1'\nmodify D:2 to PermitAll\n\
                   control A:1 -> C:3-out open dst 6.0.0.0/8\n\
                   check\n";
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "printed:\n{printed}");
    }

    #[test]
    fn default_deny_acl_roundtrips() {
        let src = "acl D {\n    permit dst 1.0.0.0/8\n    default deny\n}\ncheck\n";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(
            p1.acl_def("D").unwrap().default_action(),
            jinjing_acl::Action::Deny
        );
    }

    #[test]
    fn empty_acl_prints_single_line() {
        let src = "acl E { default deny }\ncheck\n";
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        assert!(printed.starts_with("acl E { default deny }"));
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn line_count_counts_nonempty() {
        let src = "scope A:*\n\nallow A:*\ncheck\n";
        let p = parse_program(src).unwrap();
        assert_eq!(line_count(&p), 3);
    }
}
