//! Abstract syntax of LAI programs (Figure 2 of the paper).

use jinjing_acl::{Acl, IpPrefix};
use std::fmt;

/// Interface selector within a device: a specific interface or all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfaceSel {
    /// `device:*` — every interface of the device.
    Star,
    /// `device:name` — one interface.
    Named(String),
}

/// Optional direction suffix on a pattern (`-in` / `-out`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirSpec {
    /// Ingress slots.
    In,
    /// Egress slots.
    Out,
}

/// A (possibly wildcard) reference to interfaces / ACL slots:
/// `A:1`, `R1:*`, `R3:*-out`, …
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPattern {
    /// Device name.
    pub device: String,
    /// Interface selector.
    pub iface: IfaceSel,
    /// Direction restriction; `None` means "unspecified" (scope patterns
    /// ignore direction; allow/modify default to ingress at resolution).
    pub dir: Option<DirSpec>,
}

impl SlotPattern {
    /// `device:*` with no direction.
    pub fn star(device: &str) -> SlotPattern {
        SlotPattern {
            device: device.to_string(),
            iface: IfaceSel::Star,
            dir: None,
        }
    }

    /// `device:iface` with no direction.
    pub fn named(device: &str, iface: &str) -> SlotPattern {
        SlotPattern {
            device: device.to_string(),
            iface: IfaceSel::Named(iface.to_string()),
            dir: None,
        }
    }

    /// Attach a direction suffix.
    pub fn with_dir(mut self, dir: DirSpec) -> SlotPattern {
        self.dir = Some(dir);
        self
    }
}

impl fmt::Display for SlotPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.device)?;
        match &self.iface {
            IfaceSel::Star => write!(f, "*")?,
            IfaceSel::Named(n) => write!(f, "{n}")?,
        }
        match self.dir {
            Some(DirSpec::In) => write!(f, "-in"),
            Some(DirSpec::Out) => write!(f, "-out"),
            None => Ok(()),
        }
    }
}

/// A named ACL definition block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclDef {
    /// The name other statements refer to.
    pub name: String,
    /// The parsed ACL.
    pub acl: Acl,
}

/// `modify <slot> to <acl-name>` — one updated slot (Figure 2's
/// `modify l⟨n⟩ to l⟨n'⟩`, flattened to one statement per slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modify {
    /// The slot whose ACL the update replaces.
    pub target: SlotPattern,
    /// Name of the replacement ACL (an [`AclDef`]).
    pub acl: String,
}

/// The reachability-update verb of a `control` statement (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlVerb {
    /// The specified traffic must be blocked between the endpoints.
    Isolate,
    /// The specified traffic must be permitted between the endpoints.
    Open,
    /// The specified traffic keeps its original reachability (a shield
    /// against later, lower-priority intents).
    Maintain,
}

impl fmt::Display for ControlVerb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlVerb::Isolate => write!(f, "isolate"),
            ControlVerb::Open => write!(f, "open"),
            ControlVerb::Maintain => write!(f, "maintain"),
        }
    }
}

/// The traffic selector `h` of a control statement: a source or destination
/// prefix (or everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderSel {
    /// `src <prefix>` (also spelled `from <prefix>`).
    Src(IpPrefix),
    /// `dst <prefix>` (also spelled `to <prefix>`).
    Dst(IpPrefix),
    /// `all`.
    All,
}

impl fmt::Display for HeaderSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderSel::Src(p) => write!(f, "src {p}"),
            HeaderSel::Dst(p) => write!(f, "dst {p}"),
            HeaderSel::All => write!(f, "all"),
        }
    }
}

/// `control <from> -> <to> <verb> <headers>`. Priority among overlapping
/// controls is specification order: earlier statements win (§6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlStmt {
    /// Source endpoints (border interfaces after resolution).
    pub from: Vec<SlotPattern>,
    /// Destination endpoints.
    pub to: Vec<SlotPattern>,
    /// What should happen.
    pub verb: ControlVerb,
    /// To which traffic.
    pub header: HeaderSel,
}

/// The operation to perform (Figure 2 `cmd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Verify the update achieves the desired reachability.
    Check,
    /// Generate a fixing plan on top of the update.
    Fix,
    /// Synthesize new ACLs from scratch.
    Generate,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Check => write!(f, "check"),
            Command::Fix => write!(f, "fix"),
            Command::Generate => write!(f, "generate"),
        }
    }
}

/// A complete LAI program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Named ACL definitions.
    pub acl_defs: Vec<AclDef>,
    /// The management scope Ω (direction-less patterns).
    pub scope: Vec<SlotPattern>,
    /// Slots allowed to change.
    pub allow: Vec<SlotPattern>,
    /// ACL updates under examination.
    pub modifies: Vec<Modify>,
    /// Desired reachability changes, in priority order.
    pub controls: Vec<ControlStmt>,
    /// The command; `None` only during construction.
    pub command: Option<Command>,
}

impl Program {
    /// Look up a named ACL definition.
    pub fn acl_def(&self, name: &str) -> Option<&Acl> {
        self.acl_defs
            .iter()
            .find(|d| d.name == name)
            .map(|d| &d.acl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_display() {
        assert_eq!(SlotPattern::star("R1").to_string(), "R1:*");
        assert_eq!(SlotPattern::named("A", "1").to_string(), "A:1");
        assert_eq!(
            SlotPattern::star("R3").with_dir(DirSpec::Out).to_string(),
            "R3:*-out"
        );
        assert_eq!(
            SlotPattern::named("R1", "2")
                .with_dir(DirSpec::In)
                .to_string(),
            "R1:2-in"
        );
    }

    #[test]
    fn acl_def_lookup() {
        let mut p = Program::default();
        p.acl_defs.push(AclDef {
            name: "X".into(),
            acl: Acl::permit_all(),
        });
        assert!(p.acl_def("X").is_some());
        assert!(p.acl_def("Y").is_none());
    }

    #[test]
    fn verb_and_command_display() {
        assert_eq!(ControlVerb::Isolate.to_string(), "isolate");
        assert_eq!(Command::Generate.to_string(), "generate");
        let h = HeaderSel::Dst(jinjing_acl::parse::parse_prefix("1.0.0.0/8").unwrap());
        assert_eq!(h.to_string(), "dst 1.0.0.0/8");
    }
}
