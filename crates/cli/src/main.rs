#![forbid(unsafe_code)]

//! The `jinjing` binary. Argument parsing is deliberately dependency-free
//! (the offline crate budget goes to the algorithmic substrates); see the
//! crate docs for the grammar.

use jinjing_cli::{
    audit_report, lint_command, load_acls, load_network, run_command_with, show_network,
    simplify_acl_text, watch_command, RunOptions,
};

const USAGE: &str = "\
jinjing — safely and automatically update in-network ACL configurations

USAGE:
    jinjing run --network <net.json> --acls <acls.json> --intent <prog.lai>
                [--format text|json] [--session <deltas.txt>]
                [--plan-out <plan.json>] [--rollback-out <rollback.json>]
                [--metrics-out <metrics.json>] [--trace] [--threads <N>]
    jinjing watch --network <net.json> --acls <acls.json> --intent <prog.lai>
                --deltas <deltas.txt> [--format text|json]
                [--metrics-out <metrics.json>] [--trace] [--threads <N>]
    jinjing trace --network <net.json> --acls <acls.json> --intent <prog.lai>
                [--trace-out <trace.json>] [--threads <N>]
    jinjing plan --network <net.json> --acls <acls.json> --intent <prog.lai>
                [--target <deltas.txt>] [--max-waves <N>]
                [--format text|json] [--metrics-out <metrics.json>]
                [--trace] [--threads <N>]
    jinjing lint --network <net.json> --acls <acls.json> [--intent <prog.lai>]
                [--intent <tenant>=<prog.lai>] ... [--priority <a,b,...>]
                [--format text|json|sarif] [--deny <CODE|JL3*|all>] ...
                [--metrics-out <metrics.json>] [--trace] [--threads <N>]
    jinjing show --network <net.json>
    jinjing audit --network <net.json> --acls <acls.json>
    jinjing simplify --acl-file <acl.txt>
    jinjing convert --cisco-config <conf.txt> --map <LIST=dev:iface[-dir]> ...
                [--out <acls.json>]
    jinjing serve --network <net.json> --acls <acls.json>
                [--addr <host:port>] [--workers <N>] [--queue <N>]
                [--deadline-ms <N>] [--max-body-bytes <BYTES>]
                [--max-sessions <N>] [--max-traces <N>] [--threads <N>]
                [--metrics-out <m.json>] [--port-file <p>]
                [--drain-on-stdin-eof] [--trace]
    jinjing shard --network <net.json> --acls <acls.json>
                --backends <host:port,host:port,...> [--addr <host:port>]
                [--threads <N>] [--max-body-bytes <BYTES>] [--timeout-ms <N>]
                [--metrics-out <m.json>] [--port-file <p>] [--trace]
    jinjing call [--addr <host:port>] --path </v1/check>
                [--method POST|GET|DELETE] [--body-file <f> | --body <text>]
                [--timeout-ms <N>] [--header <Name: value>] ...
                [--shards <host:port,host:port,...>]

COMMANDS:
    run        Parse the LAI intent and execute its command (check/fix/generate).
               With --session <deltas.txt> the run becomes an incremental
               check session (same as `watch`)
    watch      Incremental re-checking: open a session over the intent's
               scope and current ACLs, then re-check a stream of deltas
               (--deltas script: `step <label>` / `set DEV:IFACE[-in|-out]
               <rules;…>` / `clear DEV:IFACE[-in|-out]` lines). Only the
               FECs each delta dirties are re-solved; verdicts are
               byte-identical to cold per-step checks. Exits 3 when any
               delta is rejected as inconsistent
    trace      Flight-recorder run: execute the intent like `run`, capturing
               timestamped spans from the engine, the worker pool, and the
               solver; write the capture as Chrome trace_event JSON
               (--trace-out, default trace.json — load it in
               chrome://tracing or Perfetto) and print a span summary
               (slowest spans first, with self time). Report bytes are
               identical to an untraced run; exits 3 on a failed check
    plan       Safe update sequencing: decompose the diff between the current
               ACLs and the target (the intent's update, or --target
               <deltas.txt> applied to the current ACLs) into per-device
               steps, and synthesize an ordering whose every intermediate
               state satisfies the intent, verifying each prefix state
               through a warm incremental session. Provably-commuting steps
               (disjoint differential covers) are batched into parallel
               waves, each certified by the wave-boundary state's check;
               --max-waves caps the wave count. When no safe ordering
               exists the output carries a minimal infeasibility core and
               the command exits 3
    lint       Static analysis: shadowed/redundant/conflicting rules (JL0xx),
               contradictory or vacuous intent clauses (JL1xx), dangling
               references and silent-allow paths (JL2xx). With repeated
               --intent tenant=FILE flags it runs the cross-tenant pass
               (JL3xx): solver-certified conflicts between tenants' intents
               with witness packets, cross-tenant subsumption, and — given
               --priority a,b,... — a merge preview of who wins each
               contested region. --format sarif emits SARIF 2.1.0 for
               code-scanning CI. Exits 4 when any error-severity diagnostic
               (or a --deny'd code; globs like JL3* and `all` work) is
               reported.
    show       Print the topology and announcements of a network spec
    audit      Report data-quality anomalies (unrouted prefixes, black holes,
               unused ACLs, shadowed rules)
    simplify   Minimize a standalone ACL (decision-preserving)
    convert    Translate Cisco IOS extended access lists into an ACL spec,
               binding each list to an interface slot via --map
    serve      Long-running verification daemon: keep the network resident
               and answer POST /v1/check|fix|generate|lint|lint/multi, session
               endpoints (POST /v1/sessions, POST /v1/sessions/{id}/delta,
               DELETE /v1/sessions/{id}) and GET /healthz|/metrics over
               HTTP. Response bodies are byte-identical to the CLI's
               --format json output. A full queue answers 429; POST
               /v1/shutdown (or stdin EOF with --drain-on-stdin-eof)
               drains gracefully
    shard      Sharded-verification coordinator: keep the network resident
               and fan POST /v1/check|lint|plan out over the --backends
               daemons, each evaluating only the equivalence-class slice
               its X-Jinjing-Shard header names. Merged responses are
               byte-identical to a single-process run at any backend
               count. A request carrying an X-Jinjing-Stream header is
               answered as a chunked stream: progress documents as shards
               report, then the complete canonical body
    call       Thin HTTP client for the daemon: sends one request, prints
               the response body, and exits with the server's
               X-Jinjing-Exit code (0 ok, 1 error, 3 check-inconsistent /
               watch-rejected, 4 lint gate) — pipelines gate on a remote
               daemon exactly as on a local run. The connection is reused
               (HTTP/1.1 keep-alive) when the server allows it. With
               --shards a,b,... a lint request fans out over the listed
               backends directly and prints the merged report

The plan JSON written by --plan-out lists every changed slot with its full
replacement ACL, ready for a deployment pipeline to consume.

--metrics-out writes the run's observability snapshot (per-phase span tree,
solver histograms, counters, events) as JSON. --trace (or the JINJING_TRACE
environment variable) streams events to stderr as they happen.

--threads N fans the engine's solver queries out over N worker threads
(default: the JINJING_THREADS environment variable, else 1). Reports are
byte-identical for every thread count.";

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn require(args: &[String], name: &str) -> Result<String, String> {
    arg_value(args, name).ok_or_else(|| format!("missing required flag {name}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match real_main(&args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("error: {msg}");
            if msg.contains("usage") || args.is_empty() {
                eprintln!("\n{USAGE}");
            }
            1
        }
    };
    std::process::exit(code);
}

/// The shared incremental path behind `jinjing watch` and
/// `jinjing run --session`.
fn run_watch(
    net: &jinjing_net::Network,
    config: &jinjing_net::AclConfig,
    intent: &str,
    deltas_path: &str,
    opts: &RunOptions,
    args: &[String],
) -> Result<(), String> {
    let deltas = std::fs::read_to_string(deltas_path).map_err(|e| format!("{deltas_path}: {e}"))?;
    let out = watch_command(net, config, intent, &deltas, opts).map_err(|e| e.to_string())?;
    match arg_value(args, "--format").as_deref() {
        Some("json") => print!("{}", out.to_canonical_json()),
        None | Some("text") => print!("{}", out.text),
        Some(other) => return Err(format!("unknown --format {other:?} (text|json)")),
    }
    if let Some(path) = arg_value(args, "--metrics-out") {
        std::fs::write(&path, out.obs.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    // Pipelines gate on rejected (inconsistent) deltas, like a failed check.
    if out.rejected > 0 {
        std::process::exit(3);
    }
    Ok(())
}

fn real_main(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("");
    match command {
        "run" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let intent_path = require(args, "--intent")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            let intent =
                std::fs::read_to_string(&intent_path).map_err(|e| format!("{intent_path}: {e}"))?;
            let threads = match arg_value(args, "--threads") {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("--threads wants a number, got {n:?}"))?,
                None => 0,
            };
            let opts = RunOptions {
                trace: args.iter().any(|a| a == "--trace"),
                threads,
            };
            // `run --session <deltas>` is the incremental path (see watch).
            if let Some(deltas_path) = arg_value(args, "--session") {
                return run_watch(&net, &config, &intent, &deltas_path, &opts, args);
            }
            let out = run_command_with(&net, &config, &intent, &opts).map_err(|e| e.to_string())?;
            let (text, plan) = (out.text, out.plan);
            match arg_value(args, "--format").as_deref() {
                Some("json") => print!("{}", plan.to_canonical_json()),
                None | Some("text") => print!("{text}"),
                Some(other) => return Err(format!("unknown --format {other:?} (text|json)")),
            }
            if let Some(path) = arg_value(args, "--metrics-out") {
                std::fs::write(&path, out.obs.to_json()).map_err(|e| format!("{path}: {e}"))?;
                println!("metrics written to {path}");
            }
            if !plan.changes.is_empty() {
                println!("changed slots: {}", plan.changes.len());
            }
            if let Some(out) = arg_value(args, "--rollback-out") {
                let rollback = jinjing_cli::rollback_document(&net, &config, &plan);
                std::fs::write(&out, rollback.to_canonical_json())
                    .map_err(|e| format!("{out}: {e}"))?;
                println!("rollback plan written to {out}");
            }
            if let Some(out) = arg_value(args, "--plan-out") {
                std::fs::write(&out, plan.to_canonical_json())
                    .map_err(|e| format!("{out}: {e}"))?;
                println!("plan written to {out}");
            }
            // Exit non-zero when a bare check fails, so pipelines can gate
            // deployments on it.
            if plan.command == "check" && plan.verdict.starts_with("inconsistent") {
                std::process::exit(3);
            }
            Ok(())
        }
        "watch" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let intent_path = require(args, "--intent")?;
            let deltas_path = require(args, "--deltas")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            let intent =
                std::fs::read_to_string(&intent_path).map_err(|e| format!("{intent_path}: {e}"))?;
            let threads = match arg_value(args, "--threads") {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("--threads wants a number, got {n:?}"))?,
                None => 0,
            };
            let opts = RunOptions {
                trace: args.iter().any(|a| a == "--trace"),
                threads,
            };
            run_watch(&net, &config, &intent, &deltas_path, &opts, args)
        }
        "trace" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let intent_path = require(args, "--intent")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            let intent =
                std::fs::read_to_string(&intent_path).map_err(|e| format!("{intent_path}: {e}"))?;
            let threads = match arg_value(args, "--threads") {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("--threads wants a number, got {n:?}"))?,
                None => 0,
            };
            let opts = RunOptions {
                trace: args.iter().any(|a| a == "--trace"),
                threads,
            };
            let out = jinjing_cli::trace_command(&net, &config, &intent, &opts)
                .map_err(|e| e.to_string())?;
            let path = arg_value(args, "--trace-out").unwrap_or_else(|| "trace.json".to_string());
            std::fs::write(&path, &out.chrome_json).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", out.summary);
            eprintln!("trace {} written to {path}", out.trace_id);
            if out.events_dropped > 0 {
                eprintln!(
                    "warning: {} event(s) dropped (flight-recorder ring full)",
                    out.events_dropped
                );
            }
            // Exit parity with `run`: a failed bare check gates with 3.
            if out.run.plan.command == "check" && out.run.plan.verdict.starts_with("inconsistent") {
                std::process::exit(3);
            }
            Ok(())
        }
        "plan" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let intent_path = require(args, "--intent")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            let intent =
                std::fs::read_to_string(&intent_path).map_err(|e| format!("{intent_path}: {e}"))?;
            let target = match arg_value(args, "--target") {
                Some(p) => Some(std::fs::read_to_string(&p).map_err(|e| format!("{p}: {e}"))?),
                None => None,
            };
            let max_waves = match arg_value(args, "--max-waves") {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("--max-waves wants a number, got {n:?}"))?,
                None => 0,
            };
            let threads = match arg_value(args, "--threads") {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("--threads wants a number, got {n:?}"))?,
                None => 0,
            };
            let opts = RunOptions {
                trace: args.iter().any(|a| a == "--trace"),
                threads,
            };
            let out =
                jinjing_cli::plan_command(&net, &config, &intent, target.as_deref(), max_waves, &opts)
                    .map_err(|e| e.to_string())?;
            match arg_value(args, "--format").as_deref() {
                Some("json") => print!("{}", out.json),
                None | Some("text") => print!("{}", out.text),
                Some(other) => return Err(format!("unknown --format {other:?} (text|json)")),
            }
            if let Some(path) = arg_value(args, "--metrics-out") {
                std::fs::write(&path, out.obs.to_json()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("metrics written to {path}");
            }
            // Pipelines gate on an unorderable update, like a failed check.
            if !out.feasible {
                std::process::exit(3);
            }
            Ok(())
        }
        "lint" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let net_text =
                std::fs::read_to_string(&net_path).map_err(|e| format!("{net_path}: {e}"))?;
            let acls_text =
                std::fs::read_to_string(&acl_path).map_err(|e| format!("{acl_path}: {e}"))?;
            // Repeatable --intent. Plain FILE is a single-program run;
            // tenant=FILE values select the multi-tenant pass (all values
            // must then carry a tenant name).
            let intent_args: Vec<String> = args
                .windows(2)
                .filter(|w| w[0] == "--intent")
                .map(|w| w[1].clone())
                .collect();
            let threads = match arg_value(args, "--threads") {
                Some(n) => n
                    .parse::<usize>()
                    .map_err(|_| format!("--threads wants a number, got {n:?}"))?,
                None => 0,
            };
            let opts = RunOptions {
                trace: args.iter().any(|a| a == "--trace"),
                threads,
            };
            let multi = intent_args.iter().any(|v| v.contains('='));
            let out = if multi {
                let mut tenants = Vec::with_capacity(intent_args.len());
                for v in &intent_args {
                    let Some((tenant, path)) = v.split_once('=') else {
                        return Err(format!(
                            "--intent {v:?}: multi-tenant lint needs tenant=FILE for every intent"
                        ));
                    };
                    if tenant.is_empty() {
                        return Err(format!("--intent {v:?}: empty tenant name"));
                    }
                    let text =
                        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                    tenants.push((tenant.to_string(), text));
                }
                let priority: Vec<String> = arg_value(args, "--priority")
                    .map(|p| p.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
                jinjing_cli::lint_multi_command(&net_text, &acls_text, &tenants, &priority, &opts)
                    .map_err(|e| e.to_string())?
            } else {
                if intent_args.len() > 1 {
                    return Err(
                        "multiple --intent flags need tenant=FILE form (multi-tenant lint)"
                            .to_string(),
                    );
                }
                let intent_text = match intent_args.first() {
                    Some(p) => {
                        Some(std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
                    }
                    None => None,
                };
                lint_command(&net_text, &acls_text, intent_text.as_deref(), &opts)
                    .map_err(|e| e.to_string())?
            };
            match arg_value(args, "--format").as_deref() {
                Some("json") => println!("{}", out.report.to_json()),
                Some("sarif") => println!("{}", jinjing_lint::to_sarif(&out.report)),
                None | Some("text") => print!("{}", out.report.render_text()),
                Some(other) => {
                    return Err(format!("unknown --format {other:?} (text|json|sarif)"))
                }
            }
            if let Some(path) = arg_value(args, "--metrics-out") {
                std::fs::write(&path, out.obs.to_json()).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("metrics written to {path}");
            }
            // Exit-code policy: error-severity findings always gate;
            // --deny escalates codes (repeatable; exact `JL301`, family
            // glob `JL3*`, or `all`).
            let denied: Vec<String> = args
                .windows(2)
                .filter(|w| w[0] == "--deny")
                .map(|w| w[1].clone())
                .collect();
            if jinjing_cli::lint_gate(&out.report, &denied) {
                std::process::exit(4);
            }
            Ok(())
        }
        "audit" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            print!("{}", audit_report(&net, &config));
            Ok(())
        }
        "show" => {
            let net_path = require(args, "--network")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            print!("{}", show_network(&net));
            Ok(())
        }
        "convert" => {
            let cfg_path = require(args, "--cisco-config")?;
            let text =
                std::fs::read_to_string(&cfg_path).map_err(|e| format!("{cfg_path}: {e}"))?;
            let mut mappings = Vec::new();
            let mut it = args.iter();
            while let Some(a) = it.next() {
                if a == "--map" {
                    let m = it.next().ok_or("--map needs LIST=dev:iface[-dir]")?;
                    let (list, slot) = m
                        .split_once('=')
                        .ok_or_else(|| format!("bad --map {m:?}"))?;
                    let (iface, dir) = match slot.rsplit_once('-') {
                        Some((i, d @ ("in" | "out"))) => (i.to_string(), d.to_string()),
                        _ => (slot.to_string(), "in".to_string()),
                    };
                    mappings.push((list.to_string(), iface, dir));
                }
            }
            if mappings.is_empty() {
                return Err("convert needs at least one --map".to_string());
            }
            let json = jinjing_cli::convert_cisco(&text, &mappings).map_err(|e| e.to_string())?;
            match arg_value(args, "--out") {
                Some(out) => {
                    std::fs::write(&out, json).map_err(|e| format!("{out}: {e}"))?;
                    println!("wrote {out}");
                }
                None => println!("{json}"),
            }
            Ok(())
        }
        "serve" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            let cfg = jinjing_cli::serve_config_from_args(args).map_err(|e| e.to_string())?;
            jinjing_cli::serve_command(net, config, cfg).map_err(|e| e.to_string())
        }
        "shard" => {
            let net_path = require(args, "--network")?;
            let acl_path = require(args, "--acls")?;
            let net = load_network(&net_path).map_err(|e| e.to_string())?;
            let config = load_acls(&acl_path, &net).map_err(|e| e.to_string())?;
            let cfg = jinjing_cli::shard_config_from_args(args).map_err(|e| e.to_string())?;
            jinjing_cli::shard_command(net, config, cfg).map_err(|e| e.to_string())
        }
        "call" => {
            // Exit with the daemon's X-Jinjing-Exit code so pipelines can
            // gate on a remote daemon exactly as on a local run.
            let code = jinjing_cli::call_command(args).map_err(|e| e.to_string())?;
            if code != 0 {
                std::process::exit(code);
            }
            Ok(())
        }
        "simplify" => {
            let acl_path = require(args, "--acl-file")?;
            let text =
                std::fs::read_to_string(&acl_path).map_err(|e| format!("{acl_path}: {e}"))?;
            print!("{}", simplify_acl_text(&text).map_err(|e| e.to_string())?);
            Ok(())
        }
        "" | "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (see `jinjing help`)")),
    }
}
