#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-cli
//!
//! The `jinjing` command-line tool: the operator-facing front end of the
//! reproduction. It binds a network specification (JSON), the current ACL
//! configuration (JSON) and an LAI intent program (text) and runs the
//! requested primitive, printing a human-readable report and, optionally,
//! a machine-readable plan.
//!
//! ```text
//! jinjing run --network net.json --acls acls.json --intent update.lai
//! jinjing run ... --plan-out plan.json      # write the deployable plan
//! jinjing run ... --metrics-out m.json      # write the observability snapshot
//! jinjing run ... --format json             # canonical machine-readable report
//! jinjing run ... --trace                   # stream events to stderr
//! jinjing watch ... --deltas edits.txt      # incremental session over a stream
//! jinjing show --network net.json           # topology summary
//! jinjing simplify --acl-file acl.txt       # standalone ACL minimization
//! ```
//!
//! The library half of the crate ([`run_command`] and friends) is what the
//! binary calls; keeping it a library makes the whole flow unit-testable
//! without spawning processes. The JSON spec loaders need `serde`; under
//! `--cfg jinjing_offline` (the registry-free build) they are compiled
//! out, while everything else — including the canonical JSON renderers,
//! which use `jinjing-obs`'s hand-rolled writer — still builds and tests.

use jinjing_core::engine::EngineConfig;
#[cfg(not(jinjing_offline))]
use jinjing_core::engine::ReportKind;
#[cfg(not(jinjing_offline))]
use jinjing_lai::{parse_program, validate};
#[cfg(not(jinjing_offline))]
use jinjing_net::spec::{AclConfigSpec, NetworkSpec};
use jinjing_net::{AclConfig, Network};

// The canonical query-output layer (plan/watch documents and the
// functions that produce them) lives in `jinjing_core::query`, shared
// byte-for-byte with the `jinjing-serve` daemon; the CLI re-exports it
// so front-end callers keep one import path.
pub use jinjing_core::query::{PlanDocument, PlanEntry, RunOutput, WatchOutput, WatchStep};

/// Everything that can go wrong on a CLI run, as a printable message.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError(format!("io error: {e}"))
    }
}

fn err(e: impl std::fmt::Display) -> CliError {
    CliError(e.to_string())
}

/// Load a network from a JSON spec file.
#[cfg(not(jinjing_offline))]
pub fn load_network(path: &str) -> Result<Network, CliError> {
    let text = std::fs::read_to_string(path)?;
    let spec: NetworkSpec =
        serde_json::from_str(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    spec.build().map_err(err)
}

/// Load an ACL configuration from a JSON spec file.
#[cfg(not(jinjing_offline))]
pub fn load_acls(path: &str, net: &Network) -> Result<AclConfig, CliError> {
    let text = std::fs::read_to_string(path)?;
    let spec: AclConfigSpec =
        serde_json::from_str(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
    spec.build(net).map_err(err)
}

/// Observability knobs for a CLI run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Stream events to stderr as they happen (the `--trace` flag). The
    /// `JINJING_TRACE` environment variable enables this too, even when the
    /// flag is absent.
    pub trace: bool,
    /// Worker threads for the engine's query fan-outs (the `--threads`
    /// flag). `0` means "auto": consult `JINJING_THREADS`, defaulting to 1
    /// (serial). Reports are byte-identical for every value.
    pub threads: usize,
}

impl RunOptions {
    /// The [`EngineConfig`] these options describe: run-level thread
    /// override plus a trace-enabled collector when `--trace` was given.
    fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig {
            threads: self.threads,
            ..EngineConfig::default()
        };
        if self.trace {
            cfg.obs = jinjing_obs::Collector::with_trace(true);
        }
        cfg
    }
}

/// Run an LAI program against a network + configuration; returns the
/// human-readable report text and the machine-readable plan.
///
/// Thin compatibility wrapper over [`run_command_with`] with default
/// options, discarding the observability snapshot.
pub fn run_command(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
) -> Result<(String, PlanDocument), CliError> {
    run_command_with(net, config, intent_text, &RunOptions::default())
        .map(|out| (out.text, out.plan))
}

/// Run an LAI program with explicit observability options. Thin wrapper
/// over [`jinjing_core::query::run_query`] — the same code path the
/// `jinjing-serve` daemon answers `POST /v1/check|fix|generate` with, so
/// outputs are byte-identical across front ends.
pub fn run_command_with(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    opts: &RunOptions,
) -> Result<RunOutput, CliError> {
    jinjing_core::query::run_query(net, config, intent_text, &opts.engine_config()).map_err(err)
}

/// Everything a `jinjing trace` run produces: the normal run output plus
/// the rendered flight recording.
#[derive(Debug)]
pub struct TraceOutput {
    /// The underlying run (report text, plan, metrics snapshot) —
    /// byte-identical to the same run without tracing.
    pub run: RunOutput,
    /// The capture rendered as Chrome `trace_event` JSON (load it in
    /// `chrome://tracing` or Perfetto).
    pub chrome_json: String,
    /// The human-readable span summary (slowest spans first, with
    /// self-time attribution).
    pub summary: String,
    /// The deterministic trace id (FNV-1a over the intent text).
    pub trace_id: String,
    /// Events the bounded flight-recorder ring could not record.
    pub events_dropped: u64,
}

/// Run an LAI program with the flight recorder armed (`jinjing trace`):
/// the same [`run_command_with`] query path, plus a request-scoped
/// [`jinjing_obs::TraceCtx`] capturing timestamped spans from the engine,
/// the worker pool, and the solver. The report/plan bytes are identical
/// to an untraced run — only the side-channel capture differs.
pub fn trace_command(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    opts: &RunOptions,
) -> Result<TraceOutput, CliError> {
    let cfg = opts.engine_config();
    let tctx = jinjing_obs::TraceCtx::new(&jinjing_obs::trace_id_of(intent_text));
    cfg.obs.attach_trace_ctx(tctx.clone());
    let root = tctx.span(0, "cli.trace");
    let run = jinjing_core::query::run_query(net, config, intent_text, &cfg).map_err(err)?;
    drop(root);
    Ok(TraceOutput {
        run,
        chrome_json: tctx.to_chrome_json(),
        summary: tctx.summary(),
        trace_id: tctx.id().unwrap_or("").to_string(),
        events_dropped: tctx.events_dropped(),
    })
}

/// Run an incremental check session (`jinjing watch`, a.k.a.
/// `run --session`): bind the intent's scope/controls and the current
/// configuration into a [`jinjing_core::incr::CheckSession`], then feed it
/// the delta script (see
/// [`parse_delta_script`](jinjing_core::incr::parse_delta_script) for the
/// format). Each step re-checks only the FECs its delta dirties; verdicts
/// are byte-identical to cold per-step checks. Thin wrapper over
/// [`jinjing_core::query::watch_query`] — the daemon's session endpoints
/// run the same loop one delta batch at a time.
pub fn watch_command(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    deltas_text: &str,
    opts: &RunOptions,
) -> Result<WatchOutput, CliError> {
    jinjing_core::query::watch_query(net, config, intent_text, deltas_text, &opts.engine_config())
        .map_err(err)
}

/// Synthesize a certified rollout plan (`jinjing plan`): decompose the
/// diff between the current configuration and the target into per-device
/// steps, order them so every intermediate state satisfies the intent,
/// and batch provably-commuting steps into waves — or report a minimal
/// infeasibility core. The target is the intent's own update, or the
/// current configuration with `target_text` (a delta script) applied.
/// Thin wrapper over [`jinjing_core::query::plan_query`] — the daemon's
/// `POST /v1/plan` runs the same path, so outputs are byte-identical
/// across front ends.
pub fn plan_command(
    net: &Network,
    config: &AclConfig,
    intent_text: &str,
    target_text: Option<&str>,
    max_waves: usize,
    opts: &RunOptions,
) -> Result<jinjing_core::query::PlanRunOutput, CliError> {
    let mut cfg = opts.engine_config();
    cfg.plan.max_waves = max_waves;
    jinjing_core::query::plan_query(net, config, intent_text, target_text, &cfg).map_err(err)
}

/// Parse the `jinjing serve` flags (listen address, admission-control
/// knobs, drain hooks) into a [`jinjing_serve::ServeConfig`]. Spec paths
/// are handled by the caller — this half is serde-free so the offline
/// build verifies it.
pub fn serve_config_from_args(args: &[String]) -> Result<jinjing_serve::ServeConfig, CliError> {
    fn arg_value(args: &[String], name: &str) -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    }
    let parse_num = |flag: &str, default: usize| -> Result<usize, CliError> {
        match arg_value(args, flag) {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| CliError(format!("{flag} wants a number, got {v:?}"))),
            None => Ok(default),
        }
    };
    let defaults = jinjing_serve::ServeConfig::default();
    Ok(jinjing_serve::ServeConfig {
        addr: arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string()),
        workers: parse_num("--workers", defaults.workers)?,
        queue: parse_num("--queue", defaults.queue)?,
        deadline_ms: parse_num("--deadline-ms", defaults.deadline_ms as usize)? as u64,
        // `--max-body-bytes` is the documented spelling (coordinator-sized
        // fan-in payloads need the cap raised); `--max-body` stays accepted.
        max_body: parse_num(
            "--max-body-bytes",
            parse_num("--max-body", defaults.max_body)?,
        )?,
        max_sessions: parse_num("--max-sessions", defaults.max_sessions)?,
        max_traces: parse_num("--max-traces", defaults.max_traces)?,
        threads: parse_num("--threads", 0)?,
        metrics_out: arg_value(args, "--metrics-out"),
        port_file: arg_value(args, "--port-file"),
        drain_on_stdin_eof: args.iter().any(|a| a == "--drain-on-stdin-eof"),
        // Test-only saturation knob; never a CLI flag.
        allow_test_delay: std::env::var_os("JINJING_SERVE_TEST_DELAY").is_some(),
        trace: args.iter().any(|a| a == "--trace"),
    })
}

/// Run the verification daemon over an already-loaded network +
/// configuration until drained (`jinjing serve`). Announces the bound
/// address on stderr (stdout stays clean for pipelines).
pub fn serve_command(
    net: Network,
    config: AclConfig,
    cfg: jinjing_serve::ServeConfig,
) -> Result<(), CliError> {
    let srv = jinjing_serve::Server::bind(net, config, cfg).map_err(err)?;
    let addr = srv.local_addr().map_err(err)?;
    eprintln!("jinjing-serve listening on {addr}");
    let summary = srv.run().map_err(err)?;
    eprintln!(
        "jinjing-serve drained: {} request(s), {} shed",
        summary.requests, summary.shed
    );
    Ok(())
}

/// Parse the `jinjing shard` flags into a
/// [`jinjing_shard::ShardConfig`]. Spec paths are handled by the caller —
/// this half is serde-free so the offline build verifies it.
pub fn shard_config_from_args(args: &[String]) -> Result<jinjing_shard::ShardConfig, CliError> {
    fn arg_value(args: &[String], name: &str) -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    }
    let parse_num = |flag: &str, default: usize| -> Result<usize, CliError> {
        match arg_value(args, flag) {
            Some(v) => v
                .parse::<usize>()
                .map_err(|_| CliError(format!("{flag} wants a number, got {v:?}"))),
            None => Ok(default),
        }
    };
    let backends: Vec<String> = arg_value(args, "--backends")
        .ok_or_else(|| CliError("missing required flag --backends".to_string()))?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err(CliError("--backends wants host:port[,host:port...]".to_string()));
    }
    let defaults = jinjing_shard::ShardConfig::default();
    Ok(jinjing_shard::ShardConfig {
        addr: arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8090".to_string()),
        backends,
        threads: parse_num("--threads", 0)?,
        max_body: parse_num(
            "--max-body-bytes",
            parse_num("--max-body", defaults.max_body)?,
        )?,
        timeout_ms: parse_num("--timeout-ms", defaults.timeout_ms as usize)? as u64,
        port_file: arg_value(args, "--port-file"),
        metrics_out: arg_value(args, "--metrics-out"),
        trace: args.iter().any(|a| a == "--trace"),
    })
}

/// Run the sharded-verification coordinator over an already-loaded
/// network + configuration until drained (`jinjing shard`). The backends
/// must serve the *same* network and configuration; responses are
/// byte-identical to a single-process run at any backend count.
pub fn shard_command(
    net: Network,
    config: AclConfig,
    cfg: jinjing_shard::ShardConfig,
) -> Result<(), CliError> {
    let backends = cfg.backends.len();
    let coord = jinjing_shard::Coordinator::bind(net, config, cfg).map_err(err)?;
    let addr = coord.local_addr().map_err(err)?;
    eprintln!("jinjing-shard coordinating {backends} backend(s) on {addr}");
    let summary = coord.run().map_err(err)?;
    eprintln!("jinjing-shard drained: {} request(s)", summary.requests);
    Ok(())
}

/// The `jinjing call --shards` path: fan one lint request out over the
/// given backends (kept-alive connection each, `X-Jinjing-Shard: i/n`),
/// merge the partitioned reports, and print the merged JSON — the same
/// bytes an unsharded `jinjing lint --format json` renders. Only
/// `/v1/lint` is mergeable client-side; stateful or verdict-bearing
/// endpoints need the coordinator (`jinjing shard`).
fn call_sharded(
    backends: &[String],
    path: &str,
    body: &[u8],
    timeout: std::time::Duration,
) -> Result<i32, CliError> {
    if path != "/v1/lint" {
        return Err(CliError(format!(
            "--shards supports only --path /v1/lint (got {path:?}); \
             run a `jinjing shard` coordinator for check/plan"
        )));
    }
    let n = backends.len();
    let mut merged = jinjing_lint::LintReport::new();
    for (i, addr) in backends.iter().enumerate() {
        let mut conn = jinjing_serve::client::Conn::new(addr, timeout).map_err(CliError)?;
        let resp = conn
            .call(
                "POST",
                path,
                &[("X-Jinjing-Shard".to_string(), format!("{i}/{n}"))],
                body,
            )
            .map_err(|e| CliError(format!("backend {addr}: {e}")))?;
        if resp.status != 200 {
            return Err(CliError(format!(
                "backend {addr} answered HTTP {}: {}",
                resp.status,
                resp.body_text().trim()
            )));
        }
        let report = jinjing_lint::LintReport::from_json(&resp.body_text())
            .map_err(|e| CliError(format!("backend {addr}: bad lint report: {e}")))?;
        merged.merge(report);
    }
    merged.sort();
    println!("{}", merged.to_json());
    Ok(if merged.has_errors() { 4 } else { 0 })
}

/// The `jinjing call` subcommand: one HTTP request to a running daemon.
/// Prints the response body to stdout and returns the process exit code —
/// the daemon's `X-Jinjing-Exit` header (0 ok, 1 error, 3
/// check-inconsistent / watch-rejected, 4 lint gate), falling back to 1
/// for any undecorated non-2xx status. Serde-free: the offline build
/// verifies the whole client path.
pub fn call_command(args: &[String]) -> Result<i32, CliError> {
    fn arg_value(args: &[String], name: &str) -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    }
    let addr = arg_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8080".to_string());
    let path = arg_value(args, "--path")
        .ok_or_else(|| CliError("missing required flag --path".to_string()))?;
    let method = arg_value(args, "--method").unwrap_or_else(|| "POST".to_string());
    let timeout_ms = match arg_value(args, "--timeout-ms") {
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| CliError(format!("--timeout-ms wants a number, got {v:?}")))?,
        None => 30_000,
    };
    let body = match (arg_value(args, "--body-file"), arg_value(args, "--body")) {
        (Some(p), _) => std::fs::read(&p).map_err(|e| CliError(format!("{p}: {e}")))?,
        (None, Some(text)) => text.into_bytes(),
        (None, None) => Vec::new(),
    };
    let headers: Vec<(String, String)> = args
        .windows(2)
        .filter(|w| w[0] == "--header")
        .filter_map(|w| {
            w[1].split_once(':')
                .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    if let Some(list) = arg_value(args, "--shards") {
        let backends: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if backends.is_empty() {
            return Err(CliError(
                "--shards wants host:port[,host:port...]".to_string(),
            ));
        }
        return call_sharded(
            &backends,
            &path,
            &body,
            std::time::Duration::from_millis(timeout_ms),
        );
    }
    let resp = jinjing_serve::client::call(
        &addr,
        &method,
        &path,
        &headers,
        &body,
        std::time::Duration::from_millis(timeout_ms),
    )
    .map_err(CliError)?;
    print!("{}", resp.body_text());
    if resp.status >= 400 {
        // Surface the daemon's backpressure hint: a shed request (429)
        // carries Retry-After, and scripts deserve to see it.
        match resp.header("retry-after") {
            Some(after) => eprintln!(
                "error: HTTP {} from {addr}{path} (Retry-After: {after}s)",
                resp.status
            ),
            None => eprintln!("error: HTTP {} from {addr}{path}", resp.status),
        }
    }
    Ok(resp.exit_code())
}

/// Everything a lint run produces.
#[derive(Debug)]
pub struct LintOutput {
    /// The merged, sorted diagnostics from every analysis layer.
    pub report: jinjing_lint::LintReport,
    /// The run's observability snapshot (`lint.*` spans and counters).
    pub obs: jinjing_obs::Snapshot,
}

/// Run the static analysis pass (`jinjing lint`) over raw spec texts and an
/// optional LAI intent program.
///
/// Layering mirrors how the defects block progress: the spec layer
/// (JL201/JL202) runs first on the raw JSON, collecting *every* dangling
/// reference and invalid binding; if any are errors the network cannot be
/// built, so that report is returned alone. Otherwise the built network +
/// configuration (and the validated program, when given) go through the
/// rule, intent, and network layers via [`jinjing_core::engine::lint`].
#[cfg(not(jinjing_offline))]
pub fn lint_command(
    net_text: &str,
    acls_text: &str,
    intent_text: Option<&str>,
    opts: &RunOptions,
) -> Result<LintOutput, CliError> {
    let net_spec: NetworkSpec =
        serde_json::from_str(net_text).map_err(|e| CliError(format!("network spec: {e}")))?;
    let acl_spec: AclConfigSpec =
        serde_json::from_str(acls_text).map_err(|e| CliError(format!("acl spec: {e}")))?;
    let mut cfg = jinjing_lint::LintConfig::default();
    if opts.trace {
        cfg.obs = jinjing_obs::Collector::with_trace(true);
    }
    let mut spec_report = jinjing_lint::lint_specs(&net_spec, &acl_spec, &cfg);
    if spec_report.has_errors() {
        spec_report.sort();
        return Ok(LintOutput {
            report: spec_report,
            obs: cfg.obs.snapshot(),
        });
    }
    let net = net_spec.build().map_err(err)?;
    let config = acl_spec.build(&net).map_err(err)?;
    let program = match intent_text {
        Some(text) => Some(validate(parse_program(text).map_err(err)?).map_err(err)?),
        None => None,
    };
    let out = jinjing_core::engine::lint(&net, &config, program.as_ref(), &cfg);
    let ReportKind::Lint(mut report) = out.kind else {
        return Err(CliError(
            "engine returned a non-lint report for lint".into(),
        ));
    };
    report.merge(spec_report); // warning-free here, but keeps the shape honest
    report.sort();
    Ok(LintOutput {
        report,
        obs: out.obs,
    })
}

/// Run the multi-tenant static analysis pass (`jinjing lint --intent
/// tenant=FILE ...`) over raw spec texts and a set of named tenant
/// intents.
///
/// The spec layer runs first exactly as in [`lint_command`]; if it errors
/// the network cannot be built and that report is returned alone. Otherwise
/// each tenant's text is parsed and validated (errors name the tenant) and
/// the whole set goes through [`jinjing_core::engine::lint_multi`] — the
/// per-tenant single-program layers plus the cross-tenant JL3xx layer with
/// the given `priority` order. Tenant names must be unique and every name
/// in `priority` must belong to a tenant.
#[cfg(not(jinjing_offline))]
pub fn lint_multi_command(
    net_text: &str,
    acls_text: &str,
    tenants: &[(String, String)],
    priority: &[String],
    opts: &RunOptions,
) -> Result<LintOutput, CliError> {
    for (i, (name, _)) in tenants.iter().enumerate() {
        if tenants[..i].iter().any(|(n, _)| n == name) {
            return Err(CliError(format!("duplicate tenant name {name:?}")));
        }
    }
    for p in priority {
        if !tenants.iter().any(|(n, _)| n == p) {
            return Err(CliError(format!(
                "--priority names unknown tenant {p:?}"
            )));
        }
    }
    let net_spec: NetworkSpec =
        serde_json::from_str(net_text).map_err(|e| CliError(format!("network spec: {e}")))?;
    let acl_spec: AclConfigSpec =
        serde_json::from_str(acls_text).map_err(|e| CliError(format!("acl spec: {e}")))?;
    let mut cfg = jinjing_lint::LintConfig {
        threads: opts.threads,
        ..jinjing_lint::LintConfig::default()
    };
    if opts.trace {
        cfg.obs = jinjing_obs::Collector::with_trace(true);
    }
    let mut spec_report = jinjing_lint::lint_specs(&net_spec, &acl_spec, &cfg);
    if spec_report.has_errors() {
        spec_report.sort();
        return Ok(LintOutput {
            report: spec_report,
            obs: cfg.obs.snapshot(),
        });
    }
    let net = net_spec.build().map_err(err)?;
    let config = acl_spec.build(&net).map_err(err)?;
    let mut intents = Vec::with_capacity(tenants.len());
    for (name, text) in tenants {
        let program = validate(
            parse_program(text).map_err(|e| CliError(format!("tenant {name}: {e}")))?,
        )
        .map_err(|e| CliError(format!("tenant {name}: {e}")))?;
        intents.push(jinjing_lint::TenantIntent::new(name.clone(), program));
    }
    let out = jinjing_core::engine::lint_multi(&net, &config, &intents, priority, &cfg);
    let ReportKind::Lint(mut report) = out.kind else {
        return Err(CliError(
            "engine returned a non-lint report for lint".into(),
        ));
    };
    report.merge(spec_report);
    report.sort();
    Ok(LintOutput {
        report,
        obs: out.obs,
    })
}

/// Does a `--deny` pattern select a diagnostic code? Three forms:
/// `all` selects every code, a trailing `*` makes a prefix glob
/// (`JL3*` selects the whole cross-tenant family), anything else is an
/// exact code match.
pub fn deny_matches(pattern: &str, code: &str) -> bool {
    if pattern == "all" {
        return true;
    }
    match pattern.strip_suffix('*') {
        Some(prefix) => code.starts_with(prefix),
        None => pattern == code,
    }
}

/// Should the lint gate fire (exit 4)? Always on errors; otherwise when
/// any diagnostic's code is selected by any `--deny` pattern.
pub fn lint_gate(report: &jinjing_lint::LintReport, deny: &[String]) -> bool {
    report.has_errors()
        || report
            .diagnostics()
            .iter()
            .any(|d| deny.iter().any(|p| deny_matches(p, d.code)))
}

/// Standalone ACL simplification (the §4.2 extension as a utility).
pub fn simplify_acl_text(text: &str) -> Result<String, CliError> {
    let acl = jinjing_acl::parse::parse_acl(text).map_err(err)?;
    let (s, stats) = jinjing_acl::simplify::simplify(&acl);
    let mut out = String::new();
    use std::fmt::Write;
    for r in s.rules() {
        let _ = writeln!(out, "{r}");
    }
    let _ = writeln!(out, "default {}", s.default_action());
    let _ = writeln!(
        out,
        "# {} rules -> {} rules in {} passes",
        stats.before, stats.after, stats.passes
    );
    Ok(out)
}

/// The roll-back document for a produced plan: for every slot the plan
/// changes, the *original* ACL to restore.
pub fn rollback_document(net: &Network, original: &AclConfig, plan: &PlanDocument) -> PlanDocument {
    let changes = plan
        .changes
        .iter()
        .map(|entry| {
            let iface = net
                .topology()
                .iface_by_name(
                    entry.interface.split(':').next().unwrap_or(""),
                    entry.interface.split(':').nth(1).unwrap_or(""),
                )
                .expect("plan entries name real interfaces");
            let dir = if entry.direction == "out" {
                jinjing_net::Dir::Out
            } else {
                jinjing_net::Dir::In
            };
            let slot = jinjing_net::Slot { iface, dir };
            let acl = original
                .get(slot)
                .cloned()
                .unwrap_or_else(jinjing_acl::Acl::permit_all);
            let mut lines: Vec<String> = acl.rules().iter().map(|r| r.to_string()).collect();
            lines.push(format!("default {}", acl.default_action()));
            PlanEntry {
                interface: entry.interface.clone(),
                direction: entry.direction.clone(),
                acl: lines,
            }
        })
        .collect();
    PlanDocument {
        command: format!("rollback({})", plan.command),
        verdict: "restores the pre-update configuration".to_string(),
        changes,
    }
}

/// Convert a Cisco IOS configuration fragment into an
/// [`AclConfigSpec`] JSON document. `mappings` bind list names to slots:
/// `("EDGE-IN", "A:1", "in")`.
#[cfg(not(jinjing_offline))]
pub fn convert_cisco(
    config_text: &str,
    mappings: &[(String, String, String)],
) -> Result<String, CliError> {
    let lists = jinjing_acl::cisco::parse_config(config_text).map_err(err)?;
    let mut slots = Vec::new();
    for (list_name, iface, dir) in mappings {
        let found = lists
            .iter()
            .find(|l| &l.name == list_name)
            .ok_or_else(|| CliError(format!("no access list named {list_name:?} in the config")))?;
        let mut lines: Vec<String> = found.acl.rules().iter().map(|r| r.to_string()).collect();
        lines.push(format!("default {}", found.acl.default_action()));
        slots.push(jinjing_net::spec::AclSlotSpec {
            interface: iface.clone(),
            direction: dir.clone(),
            acl: lines,
        });
    }
    let spec = AclConfigSpec { slots };
    serde_json::to_string_pretty(&spec).map_err(|e| CliError(format!("serialize: {e}")))
}

/// Audit the input data (the §7 deployment tool): returns the rendered
/// findings, one per line (empty = clean).
pub fn audit_report(net: &Network, config: &AclConfig) -> String {
    let findings = jinjing_net::audit::audit(net, config);
    if findings.is_empty() {
        return "no findings — data looks consistent\n".to_string();
    }
    let mut out = String::new();
    use std::fmt::Write;
    for f in &findings {
        let _ = writeln!(out, "- {}", f.display(net));
    }
    let _ = writeln!(out, "{} finding(s)", findings.len());
    out
}

/// Topology summary for `jinjing show`.
pub fn show_network(net: &Network) -> String {
    let mut out = format!("{}", net.topology());
    use std::fmt::Write;
    let _ = writeln!(out, "announcements:");
    for (p, i) in net.announced() {
        let _ = writeln!(out, "  {p} @ {}", net.topology().iface_name(*i));
    }
    out
}

#[cfg(all(test, not(jinjing_offline)))]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("jinjing-cli-test-{name}"));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }

    const NET_JSON: &str = r#"{
        "devices": [
            {"name": "A", "interfaces": ["0", "1"]},
            {"name": "B", "interfaces": ["0", "1"]}
        ],
        "links": [["A:1", "B:0"]],
        "announcements": [{"prefix": "1.0.0.0/8", "interface": "B:1"}],
        "entering": [{"interface": "A:0", "dst_prefixes": ["1.0.0.0/8"]}]
    }"#;

    const ACLS_JSON: &str = r#"{"slots": [
        {"interface": "A:0", "acl": ["deny dst 1.2.0.0/16", "default permit"]}
    ]}"#;

    #[test]
    fn end_to_end_check_flow() {
        let net_path = write_temp("net.json", NET_JSON);
        let acl_path = write_temp("acls.json", ACLS_JSON);
        let net = load_network(&net_path).unwrap();
        let config = load_acls(&acl_path, &net).unwrap();
        // A consistent no-op modify.
        let intent = "acl Same {\n deny dst 1.2.0.0/16\n permit all\n}\n\
                      scope A:*, B:*\nallow A:*\nmodify A:0 to Same\ncheck\n";
        let (text, plan) = run_command(&net, &config, intent).unwrap();
        assert!(text.contains("consistent"), "{text}");
        assert_eq!(plan.command, "check");
        assert!(plan.changes.is_empty());
    }

    #[test]
    fn end_to_end_fix_flow_produces_plan() {
        let net = load_network(&write_temp("net2.json", NET_JSON)).unwrap();
        let config = load_acls(&write_temp("acls2.json", ACLS_JSON), &net).unwrap();
        // Dropping the deny breaks consistency; fix must restore it within
        // the allowed slots.
        let intent = "acl Open { permit all }\nscope A:*, B:*\nallow A:*, B:*\n\
                      modify A:0 to Open\nfix\n";
        let (_, plan) = run_command(&net, &config, intent).unwrap();
        assert!(!plan.changes.is_empty());
        // The plan document renders as canonical JSON.
        let json = plan.to_canonical_json();
        assert!(json.contains("\"command\""));
    }

    #[test]
    fn simplify_utility() {
        let out = simplify_acl_text("permit dst 9.0.0.0/8\ndeny dst 6.0.0.0/8\ndefault permit\n")
            .unwrap();
        assert!(out.contains("deny dst 6.0.0.0/8"));
        assert!(!out.contains("permit dst 9.0.0.0/8"), "{out}");
        assert!(out.contains("2 rules -> 1 rules"));
    }

    #[test]
    fn show_lists_announcements() {
        let net = load_network(&write_temp("net3.json", NET_JSON)).unwrap();
        let out = show_network(&net);
        assert!(out.contains("1.0.0.0/8 @ B:1"));
    }

    #[test]
    fn lint_collects_spec_errors_before_build() {
        // An ACL slot on an undeclared interface: build() would fail fast;
        // lint reports it as JL201 instead.
        let bad_acls = r#"{"slots": [
            {"interface": "Z:9", "acl": ["default permit"]}
        ]}"#;
        let out = lint_command(NET_JSON, bad_acls, None, &RunOptions::default()).unwrap();
        assert!(out.report.has_errors());
        assert!(out.report.has_code("JL201"), "{}", out.report.render_text());
    }

    #[test]
    fn lint_reports_rule_findings_on_built_config() {
        let shadowed = r#"{"slots": [
            {"interface": "A:0", "acl": [
                "deny dst 1.0.0.0/8", "deny dst 1.2.0.0/16", "default permit"
            ]}
        ]}"#;
        let out = lint_command(NET_JSON, shadowed, None, &RunOptions::default()).unwrap();
        let d = out
            .report
            .diagnostics()
            .iter()
            .find(|d| d.code == "JL001")
            .expect("full shadow found");
        assert_eq!(d.location, "A:0-in:rule:1");
        assert!(!out.report.has_errors(), "shadows are warnings, not errors");
    }

    #[test]
    fn lint_includes_intent_layer_and_is_byte_stable() {
        let intent = "acl Unused { permit all }\nacl X { deny dst 1.2.0.0/16\n permit all\n}\n\
                      scope A:*, B:*\nallow A:*\nmodify A:0 to X\ncheck\n";
        let run = || {
            lint_command(NET_JSON, ACLS_JSON, Some(intent), &RunOptions::default())
                .unwrap()
                .report
                .to_json()
        };
        let json = run();
        assert!(json.contains("JL104"), "{json}");
        assert_eq!(json, run(), "lint JSON must be deterministic");
    }

    #[test]
    fn errors_are_messages_not_panics() {
        assert!(load_network("/nonexistent/net.json").is_err());
        let net = load_network(&write_temp("net4.json", NET_JSON)).unwrap();
        let bad_intent = "scope Z:*\ncheck\n";
        assert!(run_command(&net, &AclConfig::new(), bad_intent).is_err());
    }
}

/// Registry-free tests: everything here runs under `--cfg jinjing_offline`
/// too (no serde, no spec files — the Figure 1 network is programmatic).
#[cfg(test)]
mod offline_tests {
    use super::*;
    use jinjing_core::figure1::Figure1;

    const CHECK_INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";

    #[test]
    fn deny_patterns_match_exact_glob_and_all() {
        assert!(deny_matches("JL301", "JL301"));
        assert!(!deny_matches("JL301", "JL302"));
        assert!(deny_matches("JL3*", "JL301"));
        assert!(deny_matches("JL3*", "JL304"));
        assert!(!deny_matches("JL3*", "JL203"));
        assert!(deny_matches("all", "JL001"));
        assert!(deny_matches("*", "JL001"));
        assert!(!deny_matches("", "JL001"));
    }

    #[test]
    fn lint_gate_fires_on_errors_and_denied_codes() {
        use jinjing_lint::{Diagnostic, LintReport, Severity};
        let mut warn = LintReport::new();
        warn.push(Diagnostic::new("JL301", Severity::Warning, "multi:x", "m"));
        assert!(!lint_gate(&warn, &[]));
        assert!(lint_gate(&warn, &["JL301".to_string()]));
        assert!(lint_gate(&warn, &["JL3*".to_string()]));
        assert!(lint_gate(&warn, &["all".to_string()]));
        assert!(!lint_gate(&warn, &["JL0*".to_string()]));
        let mut err = LintReport::new();
        err.push(Diagnostic::new("JL201", Severity::Error, "spec:x", "m"));
        assert!(lint_gate(&err, &[]));
    }

    #[test]
    fn plan_document_canonical_json_is_stable() {
        let f = Figure1::new();
        let render = || {
            run_command_with(&f.net, &f.config, CHECK_INTENT, &RunOptions::default())
                .unwrap()
                .plan
                .to_canonical_json()
        };
        let json = render();
        assert!(json.starts_with("{\"changes\":["), "{json}");
        assert!(json.contains("\"command\":\"check\""), "{json}");
        assert!(json.contains("\"verdict\":\"inconsistent"), "{json}");
        assert!(json.ends_with("}\n"));
        assert_eq!(json, render(), "canonical JSON must be byte-stable");
    }

    #[test]
    fn watch_session_rechecks_a_delta_stream() {
        let f = Figure1::new();
        let script = "\
step rewrite-D2
set D:2 deny dst 2.0.0.0/8; deny dst 1.0.0.0/8
step open-D2
set D:2 permit all
step noop
";
        let out = watch_command(
            &f.net,
            &f.config,
            CHECK_INTENT,
            script,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(out.steps.len(), 3);
        assert_eq!(out.rejected, 1);
        assert_eq!(out.steps[0].verdict, "consistent");
        assert!(out.steps[0].applied);
        assert!(out.steps[1].verdict.starts_with("inconsistent"));
        assert!(!out.steps[1].applied, "violating delta is rejected");
        assert_eq!(out.steps[2].verdict, "consistent");
        assert_eq!(out.steps[2].dirty_classes, 0, "noop takes the fast path");
        assert!(
            out.steps[0].clean_classes > 0,
            "a small edit must leave most classes clean"
        );
        assert!(out.text.contains("[rejected]"), "{}", out.text);
        // Canonical JSON: byte-stable and schema-pinned.
        let json = out.to_canonical_json();
        assert!(json.starts_with("{\"class_count\":"), "{json}");
        assert!(json.contains("\"label\":\"rewrite-D2\""), "{json}");
        let again = watch_command(
            &f.net,
            &f.config,
            CHECK_INTENT,
            script,
            &RunOptions {
                threads: 4,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            json,
            again.to_canonical_json(),
            "watch JSON must not depend on thread count"
        );
    }

    #[test]
    fn serve_config_parses_flags_and_rejects_garbage() {
        let args: Vec<String> = [
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--queue",
            "5",
            "--deadline-ms",
            "250",
            "--drain-on-stdin-eof",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = serve_config_from_args(&args).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue, 5);
        assert_eq!(cfg.deadline_ms, 250);
        assert!(cfg.drain_on_stdin_eof);
        assert!(!cfg.trace);
        // Unspecified knobs keep the daemon defaults.
        let defaults = jinjing_serve::ServeConfig::default();
        assert_eq!(cfg.max_body, defaults.max_body);
        assert_eq!(cfg.max_sessions, defaults.max_sessions);

        let bad: Vec<String> = ["serve", "--queue", "nope"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(serve_config_from_args(&bad).is_err());
    }

    #[test]
    fn serve_config_accepts_max_body_bytes_spelling() {
        let args: Vec<String> = ["serve", "--max-body-bytes", "4194304"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = serve_config_from_args(&args).unwrap();
        assert_eq!(cfg.max_body, 4 << 20);
        // The new spelling wins when both are given.
        let both: Vec<String> = ["serve", "--max-body", "1024", "--max-body-bytes", "2048"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(serve_config_from_args(&both).unwrap().max_body, 2048);
    }

    #[test]
    fn shard_config_parses_backends_and_rejects_garbage() {
        let args: Vec<String> = [
            "shard",
            "--addr",
            "127.0.0.1:0",
            "--backends",
            "127.0.0.1:9001, 127.0.0.1:9002",
            "--threads",
            "2",
            "--timeout-ms",
            "5000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = shard_config_from_args(&args).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.backends, vec!["127.0.0.1:9001", "127.0.0.1:9002"]);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.timeout_ms, 5000);
        assert!(!cfg.trace);

        let missing: Vec<String> = ["shard"].iter().map(|s| s.to_string()).collect();
        assert!(shard_config_from_args(&missing).is_err());
        let empty: Vec<String> = ["shard", "--backends", " , "]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(shard_config_from_args(&empty).is_err());
    }

    #[test]
    fn call_shards_merges_lint_and_rejects_other_paths() {
        let mk_backend = || {
            let f = Figure1::new();
            let srv = jinjing_serve::Server::bind(
                f.net,
                f.config,
                jinjing_serve::ServeConfig::default(),
            )
            .unwrap();
            let addr = srv.local_addr().unwrap().to_string();
            let h = std::thread::spawn(move || srv.run().unwrap());
            (addr, h)
        };
        let (a1, h1) = mk_backend();
        let (a2, h2) = mk_backend();
        let args: Vec<String> = [
            "call",
            "--path",
            "/v1/lint",
            "--shards",
            &format!("{a1},{a2}"),
            "--timeout-ms",
            "20000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(call_command(&args).unwrap(), 0);
        // Verdict-bearing endpoints need the coordinator.
        let bad: Vec<String> = [
            "call",
            "--path",
            "/v1/check",
            "--shards",
            &format!("{a1},{a2}"),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let e = call_command(&bad).unwrap_err();
        assert!(e.to_string().contains("only --path /v1/lint"), "{e}");
        for (addr, h) in [(a1, h1), (a2, h2)] {
            let _ = jinjing_serve::client::call(
                &addr,
                "POST",
                "/v1/shutdown",
                &[],
                b"",
                std::time::Duration::from_secs(10),
            )
            .unwrap();
            h.join().unwrap();
        }
    }

    #[test]
    fn call_command_maps_daemon_exit_codes() {
        let f = Figure1::new();
        let srv =
            jinjing_serve::Server::bind(f.net, f.config, jinjing_serve::ServeConfig::default())
                .unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || srv.run().unwrap());
        let args = |path: &str, body: &str| -> Vec<String> {
            [
                "call",
                "--addr",
                &addr,
                "--path",
                path,
                "--body",
                body,
                "--timeout-ms",
                "20000",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        };
        // A failing bare check maps to the CLI's exit 3.
        assert_eq!(call_command(&args("/v1/check", CHECK_INTENT)).unwrap(), 3);
        // A malformed intent maps to 1.
        assert_eq!(
            call_command(&args("/v1/check", "scope Z:*\ncheck\n")).unwrap(),
            1
        );
        // Missing --path is a usage error, not a panic.
        assert!(call_command(&["call".to_string()]).is_err());
        assert_eq!(call_command(&args("/v1/shutdown", "")).unwrap(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn trace_command_captures_without_perturbing_output() {
        let f = Figure1::new();
        let plain = run_command_with(&f.net, &f.config, CHECK_INTENT, &RunOptions::default())
            .unwrap()
            .plan
            .to_canonical_json();
        let traced = trace_command(&f.net, &f.config, CHECK_INTENT, &RunOptions::default()).unwrap();
        assert_eq!(
            traced.run.plan.to_canonical_json(),
            plain,
            "tracing must not perturb the plan bytes"
        );
        assert_eq!(traced.trace_id, jinjing_obs::trace_id_of(CHECK_INTENT));
        assert_eq!(traced.events_dropped, 0);
        for needle in ["\"traceEvents\"", "cli.trace", "engine.run", "solver.query"] {
            assert!(traced.chrome_json.contains(needle), "missing {needle}");
        }
        assert!(
            traced.summary.contains(&traced.trace_id),
            "{}",
            traced.summary
        );
        // Same bytes when the engine runs 4-wide under the recorder.
        let wide = trace_command(
            &f.net,
            &f.config,
            CHECK_INTENT,
            &RunOptions {
                threads: 4,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(wide.run.plan.to_canonical_json(), plain);
    }

    #[test]
    fn watch_rejects_bad_scripts_with_messages() {
        let f = Figure1::new();
        let e = watch_command(
            &f.net,
            &f.config,
            CHECK_INTENT,
            "set Z:9 permit all\n",
            &RunOptions::default(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown interface"), "{e}");
    }
}

#[cfg(all(test, not(jinjing_offline)))]
mod convert_tests {
    use super::*;

    #[test]
    fn cisco_conversion_binds_lists_to_slots() {
        let cfg = "ip access-list extended EDGE-IN\n deny ip any 10.1.1.0 0.0.0.255\n permit ip any any\n";
        let json = convert_cisco(cfg, &[("EDGE-IN".into(), "A:0".into(), "in".into())]).unwrap();
        let spec: jinjing_net::spec::AclConfigSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec.slots.len(), 1);
        assert_eq!(spec.slots[0].interface, "A:0");
        assert!(spec.slots[0].acl.iter().any(|l| l.contains("10.1.1.0/24")));
        assert!(spec.slots[0].acl.last().unwrap().contains("default deny"));
    }

    #[test]
    fn cisco_conversion_rejects_unknown_lists() {
        let e = convert_cisco(
            "access-list 1 permit ip any any\n",
            &[("X".into(), "A:0".into(), "in".into())],
        )
        .unwrap_err();
        assert!(e.to_string().contains("no access list"));
    }
}
