//! Multi-tenant intent generation for the cross-tenant lint benchmarks.
//!
//! Emits a set of `(tenant, program)` pairs over one WAN, deliberately
//! drawing endpoints and destination prefixes from *small shared pools* so
//! independently-generated tenants are likely to contest the same flow
//! spaces — the workload the JL3xx lint layer exists for. Generation is
//! seeded and deterministic: same WAN + same seed → same intents.

use crate::build::Wan;
use jinjing_acl::IpPrefix;
use jinjing_lai::{Command, ControlStmt, ControlVerb, HeaderSel, Program, SlotPattern};
use jinjing_net::DeviceId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Generate `tenants` intent programs, each with `controls_per_tenant`
/// control statements, over the given WAN.
///
/// Tenants are named `tenant00`, `tenant01`, …. Every program scopes the
/// whole network and carries `check` as its command. Endpoint devices come
/// from a shared pool (the cores plus the first few edge devices) and
/// headers from a shared pool of edge destination prefixes, so different
/// tenants frequently overlap; verbs alternate between `isolate` and
/// `open` with seeded randomness, so overlapping pairs frequently
/// *conflict*.
pub fn multi_tenant_intents(
    wan: &Wan,
    tenants: usize,
    controls_per_tenant: usize,
    seed: u64,
) -> Vec<(String, Program)> {
    let topo = wan.net.topology();
    let scope: Vec<SlotPattern> = topo
        .devices()
        .map(|d| SlotPattern::star(&topo.device(d).name))
        .collect();
    // Small shared endpoint pool: every core plus the first edge device
    // of each cell — few enough that tenants collide.
    let mut pool: Vec<DeviceId> = wan.cores.clone();
    for cell in &wan.edges {
        pool.extend(cell.iter().take(1));
    }
    let endpoints: Vec<SlotPattern> = pool
        .iter()
        .map(|&d| SlotPattern::star(&topo.device(d).name))
        .collect();
    // Small shared prefix pool: the first two edge prefixes.
    let prefixes: Vec<IpPrefix> = wan
        .edge_prefixes
        .iter()
        .flatten()
        .take(2)
        .copied()
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(tenants);
    for k in 0..tenants {
        let mut controls = Vec::with_capacity(controls_per_tenant);
        for _ in 0..controls_per_tenant {
            let from = endpoints[rng.random_range(0..endpoints.len())].clone();
            let to = endpoints[rng.random_range(0..endpoints.len())].clone();
            let verb = if rng.random::<bool>() {
                ControlVerb::Isolate
            } else {
                ControlVerb::Open
            };
            let header = if prefixes.is_empty() {
                HeaderSel::All
            } else {
                HeaderSel::Dst(prefixes[rng.random_range(0..prefixes.len())])
            };
            controls.push(ControlStmt {
                from: vec![from],
                to: vec![to],
                verb,
                header,
            });
        }
        let program = Program {
            scope: scope.clone(),
            controls,
            command: Some(Command::Check),
            ..Program::default()
        };
        out.push((format!("tenant{k:02}"), program));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_wan;
    use crate::params::WanParams;

    #[test]
    fn generation_is_seeded_and_deterministic() {
        let wan = build_wan(&WanParams::preset(crate::params::NetSize::Small));
        let a = multi_tenant_intents(&wan, 3, 4, 7);
        let b = multi_tenant_intents(&wan, 3, 4, 7);
        assert_eq!(a.len(), 3);
        for ((na, pa), (nb, pb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(pa.controls.len(), 4);
            for (ca, cb) in pa.controls.iter().zip(&pb.controls) {
                assert_eq!(ca.verb, cb.verb);
                assert_eq!(ca.header, cb.header);
                assert_eq!(ca.from, cb.from);
                assert_eq!(ca.to, cb.to);
            }
        }
        // Different seed, different workload.
        let c = multi_tenant_intents(&wan, 3, 4, 8);
        let differs = a.iter().zip(&c).any(|((_, pa), (_, pc))| {
            pa.controls
                .iter()
                .zip(&pc.controls)
                .any(|(x, y)| x.verb != y.verb || x.header != y.header || x.from != y.from)
        });
        assert!(differs);
    }

    #[test]
    fn generated_programs_validate() {
        let wan = build_wan(&WanParams::preset(crate::params::NetSize::Small));
        for (name, program) in multi_tenant_intents(&wan, 4, 6, 7) {
            assert!(name.starts_with("tenant"));
            jinjing_lai::validate(program).expect("generated program validates");
        }
    }
}
