//! Update-plan perturbation — the §8 check/fix workload.
//!
//! "We generate ACL update plans by randomly perturbing 1%, 3%, and 5% of
//! the rules in each router": [`perturb`] mutates the requested fraction of
//! installed rules (delete / flip action / widen prefix / insert fresh
//! rule) and returns the updated configuration plus the touched slots.

use jinjing_acl::{Acl, IpPrefix, MatchSpec, Rule};
use jinjing_net::{AclConfig, Slot};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One applied mutation, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// A rule was deleted.
    Delete,
    /// A rule's action was inverted.
    FlipAction,
    /// A destination prefix was widened by one bit.
    WidenPrefix,
    /// A fresh deny rule was inserted at a random position.
    Insert,
}

/// Perturb `fraction` (0.0–1.0) of the rules across all configured slots.
/// Returns the mutated configuration, the slots touched, and the mutation
/// kinds applied. Deterministic for a given seed.
pub fn perturb(
    config: &AclConfig,
    fraction: f64,
    seed: u64,
) -> (AclConfig, Vec<Slot>, Vec<Perturbation>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let slots = config.slots();
    let total: usize = config.total_rules();
    let budget = ((total as f64) * fraction)
        .round()
        .max(if fraction > 0.0 { 1.0 } else { 0.0 }) as usize;
    let mut out = config.clone();
    let mut touched: Vec<Slot> = Vec::new();
    let mut kinds: Vec<Perturbation> = Vec::new();
    for _ in 0..budget {
        // Pick a random non-empty slot.
        let candidates: Vec<Slot> = slots
            .iter()
            .copied()
            .filter(|s| out.get(*s).is_some_and(|a| !a.is_empty()))
            .collect();
        let Some(&slot) = pick(&mut rng, &candidates) else {
            break;
        };
        let acl = out.get(slot).expect("candidate slot has an ACL").clone();
        let mut rules: Vec<Rule> = acl.rules().to_vec();
        // Bias the mutation toward deny rules: under a permit-all default
        // those are the rules that carry semantics, which is what a botched
        // operator edit would touch (deleting/flipping an idle permit is a
        // no-op that check would rightly wave through).
        let deny_idxs: Vec<usize> = rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.action == jinjing_acl::Action::Deny)
            .map(|(i, _)| i)
            .collect();
        let idx = if deny_idxs.is_empty() {
            rng.random_range(0..rules.len())
        } else {
            deny_idxs[rng.random_range(0..deny_idxs.len())]
        };
        let kind = match rng.random_range(0..4) {
            0 => {
                rules.remove(idx);
                Perturbation::Delete
            }
            1 => {
                rules[idx].action = rules[idx].action.flip();
                Perturbation::FlipAction
            }
            2 => {
                let m = rules[idx].matches;
                if let Some(parent) = m.dst.parent() {
                    rules[idx].matches = MatchSpec { dst: parent, ..m };
                    Perturbation::WidenPrefix
                } else {
                    rules[idx].action = rules[idx].action.flip();
                    Perturbation::FlipAction
                }
            }
            _ => {
                // Insert a fresh deny for a nearby /26 of an existing rule's
                // destination.
                let base = rules[idx].matches.dst;
                let fresh = IpPrefix::new(base.addr(), base.len().clamp(8, 24) + 2);
                let pos = rng.random_range(0..=rules.len());
                rules.insert(
                    pos,
                    Rule::new(jinjing_acl::Action::Deny, MatchSpec::dst(fresh)),
                );
                Perturbation::Insert
            }
        };
        out.set(slot, Acl::new(rules, acl.default_action()));
        if !touched.contains(&slot) {
            touched.push(slot);
        }
        kinds.push(kind);
    }
    touched.sort();
    (out, touched, kinds)
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.random_range(0..xs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_wan;
    use crate::params::{NetSize, WanParams};

    #[test]
    fn perturbation_budget_respected() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let total = wan.installed_rules();
        for fraction in [0.01, 0.03, 0.05] {
            let (_, _, kinds) = perturb(&wan.config, fraction, 7);
            let expected = ((total as f64) * fraction).round() as usize;
            assert_eq!(kinds.len(), expected.max(1));
        }
    }

    #[test]
    fn zero_fraction_is_identity() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let (after, touched, kinds) = perturb(&wan.config, 0.0, 7);
        assert!(touched.is_empty());
        assert!(kinds.is_empty());
        for slot in wan.config.slots() {
            assert_eq!(after.get(slot), wan.config.get(slot));
        }
    }

    #[test]
    fn perturbation_changes_something() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let (after, touched, _) = perturb(&wan.config, 0.05, 7);
        assert!(!touched.is_empty());
        let changed = touched.iter().any(|s| after.get(*s) != wan.config.get(*s));
        assert!(changed, "at least one touched slot differs syntactically");
    }

    #[test]
    fn deterministic_for_seed() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let (a, ta, ka) = perturb(&wan.config, 0.03, 42);
        let (b, tb, kb) = perturb(&wan.config, 0.03, 42);
        assert_eq!(ta, tb);
        assert_eq!(ka, kb);
        for slot in a.slots() {
            assert_eq!(a.get(slot), b.get(slot));
        }
    }
}
