#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-wan
//!
//! Synthetic WAN and ACL workload generation — the stand-in for the
//! Alibaba production network the paper evaluates on (§8 takes 8%/30%/80%
//! slices of it; we generate layered multi-cell topologies of three sizes
//! with the same structure: "layered topology connected to an external
//! backbone", ACLs and prefixes "placed across multiple layers").
//!
//! A generated [`Wan`] is a three-layer network:
//!
//! ```text
//!   backbone ══ uplinks ══ [ core … core ]
//!                             │   (full mesh)
//!                 cell k:  [ agg … agg ]
//!                             │   (full mesh within the cell)
//!                          [ edge … edge ] ══ downlinks ══ servers
//! ```
//!
//! Edge devices announce customer /24 prefixes; uplinks announce external
//! /16 prefixes. The traffic matrix is directional: southbound traffic
//! (dst = edge prefixes) enters at uplinks, northbound traffic (dst =
//! external prefixes) enters at edge downlinks. Ingress ACLs sit on the
//! aggregation layer's core-facing interfaces and filter southbound
//! traffic — the layer the §8 migration experiment drains ("move all ACLs
//! from middle layer to lower layers").
//!
//! Modules:
//! - [`params`] — generation parameters and the small/medium/large presets.
//! - [`build`] — topology/routing/ACL construction.
//! - [`mod@perturb`] — the §8 "randomly perturbing 1%, 3%, 5% of the rules"
//!   update generator for the check/fix experiments.
//! - [`scenarios`] — resolved [`Task`](jinjing_core::Task)s for each
//!   experiment (check/fix, migration, control-open) plus their LAI
//!   programs for the Table 5 line counts.
//! - [`rollout`] — seeded base→target rollout campaigns for the planner
//!   (maintenance-window drains, staged rule swaps, and a no-safe-order
//!   swap that must yield an infeasibility core).

pub mod build;
pub mod multi;
pub mod params;
pub mod perturb;
pub mod rollout;
pub mod scenarios;

pub use crate::build::{build_wan, build_wan_observed, Wan};
pub use crate::multi::multi_tenant_intents;
pub use crate::params::{NetSize, WanParams};
pub use crate::perturb::{perturb, Perturbation};
pub use crate::rollout::{rollout_scenario, RolloutKind, RolloutScenario};
