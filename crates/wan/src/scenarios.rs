//! The §8 experiment scenarios as resolved tasks + LAI programs.
//!
//! Each scenario constructs the [`jinjing_core::Task`] the benches
//! drive directly, *and* the equivalent LAI [`Program`] (whose statement
//! count reproduces Table 5). An integration test asserts the program
//! resolves to the same task.

use crate::build::Wan;
use jinjing_acl::{Acl, IpPrefix, PacketSet};
use jinjing_core::control::ResolvedControl;
use jinjing_core::Task;
use jinjing_lai::{
    AclDef, Command, ControlStmt, ControlVerb, DirSpec, HeaderSel, IfaceSel, Modify, Program,
    SlotPattern,
};
use jinjing_net::fib::prefix_set;
use jinjing_net::{IfaceId, Slot};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// A scenario: the executable task and its LAI program.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Task to hand to the engine.
    pub task: Task,
    /// Equivalent LAI program.
    pub program: Program,
}

pub(crate) fn pattern_for_iface(wan: &Wan, iface: IfaceId, dir: Option<DirSpec>) -> SlotPattern {
    let topo = wan.net.topology();
    let name = topo.iface_name(iface);
    let (dev, ifname) = name.split_once(':').expect("iface_name is dev:iface");
    SlotPattern {
        device: dev.to_string(),
        iface: IfaceSel::Named(ifname.to_string()),
        dir,
    }
}

pub(crate) fn scope_patterns(wan: &Wan) -> Vec<SlotPattern> {
    wan.net
        .topology()
        .devices()
        .map(|d| SlotPattern::star(&wan.net.topology().device(d).name))
        .collect()
}

fn slot_pattern(wan: &Wan, slot: Slot) -> SlotPattern {
    let dir = match slot.dir {
        jinjing_net::Dir::In => DirSpec::In,
        jinjing_net::Dir::Out => DirSpec::Out,
    };
    pattern_for_iface(wan, slot.iface, Some(dir))
}

/// The check/fix scenario (Figure 4a/4b): perturb `fraction` of the rules,
/// then check (or fix) that the perturbed plan preserves reachability.
/// `allow` covers the whole ACL layer, so fix always has a repair.
pub fn checkfix(wan: &Wan, fraction: f64, seed: u64, command: Command) -> Scenario {
    let (after, touched, _) = crate::perturb::perturb(&wan.config, fraction, seed);
    let allow = wan.all_acl_slots();
    let task = Task {
        scope: wan.scope(),
        allow: allow.clone(),
        before: wan.config.clone(),
        after: after.clone(),
        modified: touched.clone(),
        controls: Vec::new(),
        command,
    };
    // LAI program: one named ACL per touched slot.
    let mut program = Program {
        scope: scope_patterns(wan),
        command: Some(command),
        ..Program::default()
    };
    for (i, &slot) in touched.iter().enumerate() {
        let name = format!("U{i}");
        program.acl_defs.push(AclDef {
            name: name.clone(),
            acl: after.get(slot).cloned().unwrap_or_else(Acl::permit_all),
        });
        program.modifies.push(Modify {
            target: slot_pattern(wan, slot),
            acl: name,
        });
    }
    for &slot in &allow {
        program.allow.push(slot_pattern(wan, slot));
    }
    Scenario { task, program }
}

/// The migration scenario (Figure 4c / §7 Scenario 3): drain every
/// aggregation-layer ACL and regenerate equivalent filtering at the edge
/// layer.
pub fn migration(wan: &Wan) -> Scenario {
    let sources = wan.all_acl_slots();
    let mut after = wan.config.clone();
    for &s in &sources {
        after.set(s, Acl::permit_all());
    }
    let task = Task {
        scope: wan.scope(),
        allow: wan.edge_slots.clone(),
        before: wan.config.clone(),
        after,
        modified: sources.clone(),
        controls: Vec::new(),
        command: Command::Generate,
    };
    let mut program = Program {
        scope: scope_patterns(wan),
        command: Some(Command::Generate),
        ..Program::default()
    };
    program.acl_defs.push(AclDef {
        name: "PermitAll".to_string(),
        acl: Acl::permit_all(),
    });
    for &slot in &sources {
        program.modifies.push(Modify {
            target: slot_pattern(wan, slot),
            acl: "PermitAll".to_string(),
        });
    }
    for &slot in &wan.edge_slots {
        program.allow.push(slot_pattern(wan, slot));
    }
    Scenario { task, program }
}

/// The reachability-control scenario (Figure 4d): `control … open` a set of
/// `k` prefixes per edge device, regenerating the aggregation ACLs so the
/// opened traffic flows while everything else keeps its reachability.
pub fn control_open(wan: &Wan, prefixes_per_device: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let uplinks: HashSet<IfaceId> = wan.uplinks.iter().copied().collect();
    let mut controls: Vec<ResolvedControl> = Vec::new();
    let mut stmts: Vec<ControlStmt> = Vec::new();
    let from_pats: Vec<SlotPattern> = wan
        .uplinks
        .iter()
        .map(|&u| pattern_for_iface(wan, u, None))
        .collect();
    for (ei, prefixes) in wan.edge_prefixes.iter().enumerate() {
        let k = prefixes_per_device.min(prefixes.len());
        let mut chosen: Vec<IpPrefix> = Vec::new();
        while chosen.len() < k {
            let p = prefixes[rng.random_range(0..prefixes.len())];
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
        for p in chosen {
            controls.push(ResolvedControl {
                from: uplinks.clone(),
                to: HashSet::from([wan.downlinks[ei]]),
                verb: ControlVerb::Open,
                region: prefix_set(&p),
            });
            stmts.push(ControlStmt {
                from: from_pats.clone(),
                to: vec![pattern_for_iface(wan, wan.downlinks[ei], None)],
                verb: ControlVerb::Open,
                header: HeaderSel::Dst(p),
            });
        }
    }
    let targets = wan.all_acl_slots();
    let task = Task {
        scope: wan.scope(),
        allow: targets.clone(),
        before: wan.config.clone(),
        after: wan.config.clone(),
        modified: Vec::new(),
        controls,
        command: Command::Generate,
    };
    let mut program = Program {
        scope: scope_patterns(wan),
        controls: stmts,
        command: Some(Command::Generate),
        ..Program::default()
    };
    for &slot in &targets {
        program.allow.push(slot_pattern(wan, slot));
    }
    Scenario { task, program }
}

/// The southbound traffic universe (what the §8 experiments verify).
pub fn southbound_universe(wan: &Wan) -> PacketSet {
    wan.edge_prefixes
        .iter()
        .flatten()
        .fold(PacketSet::empty(), |a, p| a.union(&prefix_set(p)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_wan;
    use crate::params::{NetSize, WanParams};
    use jinjing_core::resolve::resolve;
    use jinjing_lai::{print_program, validate};

    fn small() -> Wan {
        build_wan(&WanParams::preset(NetSize::Small))
    }

    #[test]
    fn checkfix_program_resolves_to_equivalent_task() {
        let wan = small();
        let sc = checkfix(&wan, 0.03, 11, Command::Check);
        let printed = print_program(&sc.program);
        let reparsed = validate(jinjing_lai::parse_program(&printed).unwrap()).unwrap();
        let task = resolve(&wan.net, &reparsed, &wan.config).unwrap();
        assert_eq!(task.command, Command::Check);
        assert_eq!(task.scope.len(), sc.task.scope.len());
        assert_eq!(task.modified.len(), sc.task.modified.len());
        // After-configs agree semantically on every modified slot.
        for &slot in &sc.task.modified {
            assert!(task
                .after
                .get(slot)
                .unwrap()
                .equivalent(sc.task.after.get(slot).unwrap()));
        }
    }

    #[test]
    fn migration_program_resolves() {
        let wan = small();
        let sc = migration(&wan);
        let printed = print_program(&sc.program);
        let reparsed = validate(jinjing_lai::parse_program(&printed).unwrap()).unwrap();
        let task = resolve(&wan.net, &reparsed, &wan.config).unwrap();
        assert_eq!(task.command, Command::Generate);
        assert_eq!(task.allow, sc.task.allow);
        for &slot in &sc.task.modified {
            assert!(task.after.get(slot).unwrap().is_permit_all());
        }
    }

    #[test]
    fn control_open_program_resolves() {
        let wan = small();
        let sc = control_open(&wan, 2, 5);
        let printed = print_program(&sc.program);
        let reparsed = validate(jinjing_lai::parse_program(&printed).unwrap()).unwrap();
        let task = resolve(&wan.net, &reparsed, &wan.config).unwrap();
        assert_eq!(task.controls.len(), sc.task.controls.len());
        // Controls carry the same regions.
        for (a, b) in task.controls.iter().zip(&sc.task.controls) {
            assert!(a.region.same_set(&b.region));
            assert_eq!(a.verb, b.verb);
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
        }
    }

    #[test]
    fn table5_statement_counts_scale_as_expected() {
        use jinjing_lai::printer::statement_count;
        let wan = small();
        let check = checkfix(&wan, 0.01, 3, Command::Check);
        let mig = migration(&wan);
        let open1 = control_open(&wan, 1, 3);
        let open3 = control_open(&wan, 3, 3);
        // check/fix and migration stay compact; open grows with k.
        assert!(statement_count(&check.program) < 40);
        assert!(statement_count(&mig.program) < 40);
        let edges = wan.all_edges().len();
        assert_eq!(
            statement_count(&open3.program) - statement_count(&open1.program),
            2 * edges
        );
    }

    #[test]
    fn unperturbed_checkfix_is_consistent() {
        use jinjing_core::check::{check, CheckConfig};
        let wan = small();
        let sc = checkfix(&wan, 0.0, 3, Command::Check);
        let r = check(&wan.net, &sc.task, &CheckConfig::default()).unwrap();
        assert!(r.outcome.is_consistent());
    }
}
