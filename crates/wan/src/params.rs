//! Generation parameters and the §8 size presets.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// The three evaluation network sizes of §8 (8% / 30% / 80% WAN slices,
/// scaled to a single-machine reproduction), plus the production-scale
/// `Xlarge` used by the sharded-verification benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum NetSize {
    /// The "small" testbed.
    Small,
    /// The "medium" testbed.
    Medium,
    /// The "large" testbed.
    Large,
    /// The full-WAN scale target of the paper's deployment story: 10k+
    /// devices across multi-region cells carrying ~1M generated rules.
    /// Deliberately *not* in [`NetSize::ALL`] — building it takes real
    /// time and memory, so only the shard benchmarks and explicitly
    /// opted-in tests ask for it.
    Xlarge,
}

impl NetSize {
    /// The per-figure sweep sizes, smallest first. `Xlarge` is excluded:
    /// the standard figures replay must stay cheap enough for CI.
    pub const ALL: [NetSize; 3] = [NetSize::Small, NetSize::Medium, NetSize::Large];

    /// Display label used by the figures harness.
    pub fn label(self) -> &'static str {
        match self {
            NetSize::Small => "small",
            NetSize::Medium => "medium",
            NetSize::Large => "large",
            NetSize::Xlarge => "xlarge",
        }
    }
}

/// Knobs for the WAN generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WanParams {
    /// Core routers (each with one backbone uplink).
    pub cores: usize,
    /// Cells (pods).
    pub cells: usize,
    /// Aggregation routers per cell.
    pub aggs_per_cell: usize,
    /// Edge routers per cell.
    pub edges_per_cell: usize,
    /// Customer /24 prefixes announced per edge router.
    pub prefixes_per_edge: usize,
    /// External /16 prefixes announced per uplink.
    pub external_per_uplink: usize,
    /// ACL rules generated per aggregation ingress slot.
    pub rules_per_slot: usize,
    /// RNG seed (generation is fully deterministic given the parameters).
    pub seed: u64,
}

impl WanParams {
    /// The preset for one of the §8 sizes.
    pub fn preset(size: NetSize) -> WanParams {
        match size {
            NetSize::Small => WanParams {
                cores: 2,
                cells: 2,
                aggs_per_cell: 2,
                edges_per_cell: 2,
                prefixes_per_edge: 6,
                external_per_uplink: 2,
                rules_per_slot: 25,
                seed: 0x5eed_0001,
            },
            NetSize::Medium => WanParams {
                cores: 3,
                cells: 3,
                aggs_per_cell: 2,
                edges_per_cell: 3,
                prefixes_per_edge: 8,
                external_per_uplink: 2,
                rules_per_slot: 50,
                seed: 0x5eed_0002,
            },
            NetSize::Large => WanParams {
                cores: 4,
                cells: 5,
                aggs_per_cell: 3,
                edges_per_cell: 4,
                prefixes_per_edge: 10,
                external_per_uplink: 3,
                rules_per_slot: 80,
                seed: 0x5eed_0003,
            },
            // 8 + 40·(50+200) = 10,008 devices; 40·50·8 = 16,000 ACL
            // slots × 63 rules = 1,008,000 rules.
            NetSize::Xlarge => WanParams {
                cores: 8,
                cells: 40,
                aggs_per_cell: 50,
                edges_per_cell: 200,
                prefixes_per_edge: 4,
                external_per_uplink: 4,
                rules_per_slot: 63,
                seed: 0x5eed_0004,
            },
        }
    }

    /// Total devices.
    pub fn device_count(&self) -> usize {
        self.cores + self.cells * (self.aggs_per_cell + self.edges_per_cell)
    }

    /// Total ACL slots (aggregation ingress interfaces facing cores).
    pub fn acl_slot_count(&self) -> usize {
        self.cells * self.aggs_per_cell * self.cores
    }

    /// Total generated rules.
    pub fn total_rules(&self) -> usize {
        self.acl_slot_count() * self.rules_per_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let s = WanParams::preset(NetSize::Small);
        let m = WanParams::preset(NetSize::Medium);
        let l = WanParams::preset(NetSize::Large);
        assert!(s.device_count() < m.device_count());
        assert!(m.device_count() < l.device_count());
        assert!(s.total_rules() < m.total_rules());
        assert!(m.total_rules() < l.total_rules());
        // The large preset carries thousands of rules, as §8 describes.
        assert!(l.total_rules() >= 1000, "{}", l.total_rules());
    }

    #[test]
    fn labels() {
        assert_eq!(NetSize::Small.label(), "small");
        assert_eq!(NetSize::Xlarge.label(), "xlarge");
        assert_eq!(NetSize::ALL.len(), 3);
        assert!(
            !NetSize::ALL.contains(&NetSize::Xlarge),
            "xlarge must stay out of the standard sweep"
        );
    }

    #[test]
    fn xlarge_reaches_production_scale_on_paper() {
        // Arithmetic only — actually building the xlarge WAN is the shard
        // benchmark's job, not the unit suite's.
        let xl = WanParams::preset(NetSize::Xlarge);
        assert!(xl.device_count() > 10_000, "{}", xl.device_count());
        assert_eq!(xl.device_count(), 10_008);
        assert_eq!(xl.acl_slot_count(), 16_000);
        assert!(xl.total_rules() >= 1_000_000, "{}", xl.total_rules());
        assert_eq!(xl.total_rules(), 1_008_000);
        let l = WanParams::preset(NetSize::Large);
        assert!(l.total_rules() < xl.total_rules());
    }
}
