//! Rollout-plan scenario generation: seeded base→target configuration
//! pairs whose safe orderings the planner (`jinjing_core::plan`) must
//! discover — or prove absent.
//!
//! Three shapes, mirroring the update campaigns §7 motivates:
//!
//! - [`RolloutKind::Drain`] — a maintenance-window drain: denies for a
//!   handful of customer prefixes move from the aggregation layer up to
//!   the core uplink ingress, so the aggregation layer can be serviced.
//!   Feasible, but order-constrained: every core must filter at the edge
//!   of the network *before* any aggregation deny is withdrawn.
//! - [`RolloutKind::StagedSwap`] — a staged rule swap: one prefix drains
//!   aggregation→core while another simultaneously undrains core→
//!   aggregation. The core devices sit in the middle of both chains, so
//!   any safe plan is forced through three stages (new aggregation
//!   denies, then the core swaps, then the old aggregation withdrawals).
//! - [`RolloutKind::NoOrder`] — a deny swap between the single core and
//!   the single edge of a minimal WAN. Whichever device moves first
//!   opens one of the isolated prefixes, so *no* monotone ordering is
//!   safe and the planner must return an infeasibility core.
//!
//! Every scenario also carries the equivalent LAI program (scope +
//! `isolate` controls + `check`), so the front ends can drive the same
//! plan through `jinjing plan` / `POST /v1/plan`.

use crate::build::{build_wan, Wan};
use crate::params::{NetSize, WanParams};
use jinjing_acl::parse::parse_rule;
use jinjing_acl::{Acl, Action, IpPrefix, Rule};
use jinjing_core::control::ResolvedControl;
use jinjing_lai::{Command, ControlStmt, ControlVerb, HeaderSel, Program};
use jinjing_net::fib::prefix_set;
use jinjing_net::{AclConfig, Slot};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// The rollout campaign shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutKind {
    /// Maintenance-window drain: aggregation denies move to the cores.
    Drain,
    /// Staged swap: one prefix drains upward while another undrains.
    StagedSwap,
    /// Deny swap with no safe ordering (expects an infeasibility core).
    NoOrder,
}

impl RolloutKind {
    /// All kinds, feasible first.
    pub const ALL: [RolloutKind; 3] =
        [RolloutKind::Drain, RolloutKind::StagedSwap, RolloutKind::NoOrder];

    /// Display label used by the figures harness.
    pub fn label(self) -> &'static str {
        match self {
            RolloutKind::Drain => "drain",
            RolloutKind::StagedSwap => "staged_swap",
            RolloutKind::NoOrder => "no_order",
        }
    }
}

/// A generated rollout scenario: the WAN, the base and target
/// configurations, the safety intent, and the equivalent LAI program.
#[derive(Debug, Clone)]
pub struct RolloutScenario {
    /// The generated WAN (its `config` is untouched; use `base`).
    pub wan: Wan,
    /// The configuration the rollout starts from.
    pub base: AclConfig,
    /// The configuration the rollout must reach.
    pub target: AclConfig,
    /// The safety intent every intermediate state must satisfy.
    pub controls: Vec<ResolvedControl>,
    /// Equivalent LAI program (scope + isolate controls + check).
    pub program: Program,
    /// Whether a safe ordering exists by construction.
    pub feasible: bool,
}

fn deny_rule(p: IpPrefix) -> Rule {
    parse_rule(&format!("deny dst {p}")).expect("generated rule must parse")
}

/// An isolate control + its LAI statement for edge prefix `p` of flat
/// edge index `ei`.
fn isolate(wan: &Wan, ei: usize, p: IpPrefix) -> (ResolvedControl, ControlStmt) {
    let ctl = ResolvedControl {
        from: wan.uplinks.iter().copied().collect(),
        to: HashSet::from([wan.downlinks[ei]]),
        verb: ControlVerb::Isolate,
        region: prefix_set(&p),
    };
    let stmt = ControlStmt {
        from: wan
            .uplinks
            .iter()
            .map(|&u| crate::scenarios::pattern_for_iface(wan, u, None))
            .collect(),
        to: vec![crate::scenarios::pattern_for_iface(
            wan,
            wan.downlinks[ei],
            None,
        )],
        verb: ControlVerb::Isolate,
        header: HeaderSel::Dst(p),
    };
    (ctl, stmt)
}

/// Remove every rule that could match one of `regions` from all
/// configured policies. The generated aggregation policies are random,
/// so without this a baseline rule may already deny a drained prefix —
/// making the scenario's explicit deny partially redundant and the
/// intended ordering constraint vacuous.
fn scrub_config(cfg: &AclConfig, regions: &[IpPrefix]) -> AclConfig {
    let mut out = AclConfig::new();
    for slot in cfg.slots() {
        let acl = cfg.get(slot).unwrap();
        let hit: HashSet<usize> = regions
            .iter()
            .flat_map(|p| acl.hit_rules(&prefix_set(p)))
            .collect();
        let rules: Vec<Rule> = acl
            .rules()
            .iter()
            .enumerate()
            .filter(|(i, _)| !hit.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        out.set(slot, Acl::new(rules, acl.default_action()));
    }
    out
}

/// Prepend `deny dst p` (for each prefix) to the policy group of the
/// flat aggregation index `ai`, preserving the one-policy-per-device
/// invariant across its core-facing slots.
fn prepend_on_agg(wan: &Wan, cfg: &mut AclConfig, ai: usize, prefixes: &[IpPrefix]) {
    let slots = &wan.acl_slots[ai];
    let denies: Vec<Rule> = prefixes.iter().map(|&p| deny_rule(p)).collect();
    let acl = cfg
        .get(slots[0])
        .cloned()
        .unwrap_or_else(Acl::permit_all)
        .with_prepended(&denies);
    for &s in slots {
        cfg.set(s, acl.clone());
    }
}

/// Build the scenario: seed drives which prefixes drain (the topology
/// itself stays on the preset seed, perturbed by `seed`, so a
/// (size, kind, seed) triple is fully deterministic).
pub fn rollout_scenario(size: NetSize, kind: RolloutKind, seed: u64) -> RolloutScenario {
    match kind {
        RolloutKind::Drain => drain(size, seed),
        RolloutKind::StagedSwap => staged_swap(size, seed),
        RolloutKind::NoOrder => no_order(seed),
    }
}

fn program_for(wan: &Wan, stmts: Vec<ControlStmt>) -> Program {
    Program {
        scope: crate::scenarios::scope_patterns(wan),
        controls: stmts,
        command: Some(Command::Check),
        ..Program::default()
    }
}

/// Flat aggregation indices of cell `c`.
fn cell_aggs(wan: &Wan, c: usize) -> std::ops::Range<usize> {
    let per = wan.params.aggs_per_cell;
    c * per..(c + 1) * per
}

fn drain(size: NetSize, seed: u64) -> RolloutScenario {
    let mut params = WanParams::preset(size);
    params.seed ^= seed.rotate_left(17);
    let wan = build_wan(&params);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

    // Drain denies for one prefix of each of up to three distinct edges.
    let edge_count = wan.downlinks.len();
    let drained = edge_count.min(3);
    let mut picked: Vec<(usize, IpPrefix)> = Vec::new();
    while picked.len() < drained {
        let ei = rng.random_range(0..edge_count);
        if picked.iter().any(|&(e, _)| e == ei) {
            continue;
        }
        let ps = &wan.edge_prefixes[ei];
        picked.push((ei, ps[rng.random_range(0..ps.len())]));
    }
    picked.sort_by_key(|&(ei, _)| ei);
    let regions: Vec<IpPrefix> = picked.iter().map(|&(_, p)| p).collect();
    let baseline = scrub_config(&wan.config, &regions);

    // Base: every aggregation device of a drained edge's cell denies the
    // drained prefixes of that cell (all paths cross the cell's aggs).
    let mut base = baseline.clone();
    for c in 0..wan.params.cells {
        let in_cell: Vec<IpPrefix> = picked
            .iter()
            .filter(|&&(ei, _)| ei / wan.params.edges_per_cell == c)
            .map(|&(_, p)| p)
            .collect();
        if in_cell.is_empty() {
            continue;
        }
        for ai in cell_aggs(&wan, c) {
            prepend_on_agg(&wan, &mut base, ai, &in_cell);
        }
    }

    // Target: the aggregation layer reverts to the baseline policies and
    // every core uplink ingress filters the drained prefixes at entry.
    let mut target = baseline;
    let entry_denies: Vec<Rule> = picked.iter().map(|&(_, p)| deny_rule(p)).collect();
    for &up in &wan.uplinks {
        target.set(
            Slot::ingress(up),
            Acl::new(entry_denies.clone(), Action::Permit),
        );
    }

    let (controls, stmts) = picked
        .iter()
        .map(|&(ei, p)| isolate(&wan, ei, p))
        .unzip::<_, _, Vec<_>, Vec<_>>();
    let program = program_for(&wan, stmts);
    RolloutScenario {
        wan,
        base,
        target,
        controls,
        program,
        feasible: true,
    }
}

fn staged_swap(size: NetSize, seed: u64) -> RolloutScenario {
    let mut params = WanParams::preset(size);
    assert!(params.cells >= 2, "staged swap wants two cells");
    params.seed ^= seed.rotate_left(17);
    let wan = build_wan(&params);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);

    // One prefix per cell: `a` (cell 0) drains aggregation→core while
    // `b` (cell 1) undrains core→aggregation.
    let per = wan.params.edges_per_cell;
    let ei_a = rng.random_range(0..per);
    let ei_b = per + rng.random_range(0..per);
    let t_a = wan.edge_prefixes[ei_a][rng.random_range(0..wan.edge_prefixes[ei_a].len())];
    let t_b = wan.edge_prefixes[ei_b][rng.random_range(0..wan.edge_prefixes[ei_b].len())];
    let baseline = scrub_config(&wan.config, &[t_a, t_b]);

    // Base: cell-0 aggs deny `a`; every core uplink denies `b` at entry.
    let mut base = baseline.clone();
    for ai in cell_aggs(&wan, 0) {
        prepend_on_agg(&wan, &mut base, ai, &[t_a]);
    }
    for &up in &wan.uplinks {
        base.set(
            Slot::ingress(up),
            Acl::new(vec![deny_rule(t_b)], Action::Permit),
        );
    }

    // Target: the mirror image — cell-1 aggs deny `b`, cores deny `a`.
    let mut target = baseline;
    for ai in cell_aggs(&wan, 1) {
        prepend_on_agg(&wan, &mut target, ai, &[t_b]);
    }
    for &up in &wan.uplinks {
        target.set(
            Slot::ingress(up),
            Acl::new(vec![deny_rule(t_a)], Action::Permit),
        );
    }

    let (controls, stmts) = [(ei_a, t_a), (ei_b, t_b)]
        .iter()
        .map(|&(ei, p)| isolate(&wan, ei, p))
        .unzip::<_, _, Vec<_>, Vec<_>>();
    let program = program_for(&wan, stmts);
    RolloutScenario {
        wan,
        base,
        target,
        controls,
        program,
        feasible: true,
    }
}

fn no_order(seed: u64) -> RolloutScenario {
    // A minimal WAN: one core, one cell, one agg, one edge — and a
    // rule-free aggregation layer so nothing filters but the two slots
    // the swap touches.
    let params = WanParams {
        cores: 1,
        cells: 1,
        aggs_per_cell: 1,
        edges_per_cell: 1,
        prefixes_per_edge: 2,
        external_per_uplink: 1,
        rules_per_slot: 0,
        seed: 0x5eed_0100 ^ seed,
    };
    let wan = build_wan(&params);
    let t_a = wan.edge_prefixes[0][0];
    let t_b = wan.edge_prefixes[0][1];

    // Base: the core denies `a` at entry, the edge denies `b`. Target
    // swaps them. Moving either device first opens the other prefix, so
    // no monotone ordering is safe — only an atomic swap would be.
    let core_slot = Slot::ingress(wan.uplinks[0]);
    let edge_slot = wan.edge_slots[0];
    let mut base = wan.config.clone();
    base.set(core_slot, Acl::new(vec![deny_rule(t_a)], Action::Permit));
    base.set(edge_slot, Acl::new(vec![deny_rule(t_b)], Action::Permit));
    let mut target = wan.config.clone();
    target.set(core_slot, Acl::new(vec![deny_rule(t_b)], Action::Permit));
    target.set(edge_slot, Acl::new(vec![deny_rule(t_a)], Action::Permit));

    let (controls, stmts) = [(0, t_a), (0, t_b)]
        .iter()
        .map(|&(ei, p)| isolate(&wan, ei, p))
        .unzip::<_, _, Vec<_>, Vec<_>>();
    let program = program_for(&wan, stmts);
    RolloutScenario {
        wan,
        base,
        target,
        controls,
        program,
        feasible: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_core::check::CheckConfig;
    use jinjing_core::plan::{synthesize, PlanConfig, PlanOutcome};

    fn plan(sc: &RolloutScenario) -> jinjing_core::plan::RolloutPlan {
        synthesize(
            &sc.wan.net,
            &sc.wan.scope(),
            &sc.controls,
            &sc.base,
            &sc.target,
            &CheckConfig::default(),
            &PlanConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn drain_is_feasible_and_cores_precede_aggs() {
        let sc = rollout_scenario(NetSize::Small, RolloutKind::Drain, 7);
        assert!(sc.feasible);
        let rp = plan(&sc);
        let PlanOutcome::Feasible { waves, .. } = &rp.outcome else {
            panic!("drain must be feasible: {:?}", rp.outcome);
        };
        // The on-path agg for the last-swapped core can only be drained
        // after that core filters at entry: some agg wave follows every
        // core wave. (Off-path aggs may legally float earlier — routing
        // pins each (core, prefix) to one next-hop.)
        let wave_of = |dev: &str| {
            waves
                .iter()
                .position(|w| w.iter().any(|&i| rp.steps[i].device == dev))
                .unwrap_or_else(|| panic!("device {dev} not planned"))
        };
        let last_core = (0..sc.wan.params.cores)
            .map(|i| wave_of(&format!("core{i}")))
            .max()
            .unwrap();
        let last_agg = rp
            .steps
            .iter()
            .filter(|s| s.device.contains("agg"))
            .map(|s| wave_of(&s.device))
            .max()
            .unwrap();
        assert!(last_core < last_agg, "cores {last_core} aggs {last_agg}");
    }

    #[test]
    fn staged_swap_is_feasible_with_cores_in_the_middle() {
        let sc = rollout_scenario(NetSize::Small, RolloutKind::StagedSwap, 3);
        let rp = plan(&sc);
        let PlanOutcome::Feasible { waves, .. } = &rp.outcome else {
            panic!("staged swap must be feasible: {:?}", rp.outcome);
        };
        // The swap is staged: before the first core swaps, its on-path
        // cell-1 agg must already deny `b`; after the last core swaps,
        // its on-path cell-0 agg may finally drop `a`. Off-path aggs may
        // float, so assert over the forced extremes.
        let wave_of = |dev: &str| {
            waves
                .iter()
                .position(|w| w.iter().any(|&i| rp.steps[i].device == dev))
                .unwrap()
        };
        let core_waves: Vec<usize> = (0..sc.wan.params.cores)
            .map(|i| wave_of(&format!("core{i}")))
            .collect();
        let agg_waves = |prefix: &str| {
            rp.steps
                .iter()
                .filter(|s| s.device.starts_with(prefix))
                .map(|s| wave_of(&s.device))
                .collect::<Vec<_>>()
        };
        let first_add = agg_waves("cell1-agg").into_iter().min().unwrap();
        let last_drop = agg_waves("cell0-agg").into_iter().max().unwrap();
        assert!(first_add < *core_waves.iter().min().unwrap());
        assert!(last_drop > *core_waves.iter().max().unwrap());
    }

    #[test]
    fn no_order_is_infeasible() {
        let sc = rollout_scenario(NetSize::Small, RolloutKind::NoOrder, 11);
        assert!(!sc.feasible);
        let rp = plan(&sc);
        let PlanOutcome::Infeasible { core } = &rp.outcome else {
            panic!("no_order must be infeasible: {:?}", rp.outcome);
        };
        assert!(!core.is_empty());
    }

    #[test]
    fn scenarios_are_deterministic_and_programs_validate() {
        for kind in RolloutKind::ALL {
            let a = rollout_scenario(NetSize::Small, kind, 5);
            let b = rollout_scenario(NetSize::Small, kind, 5);
            for slot in a.base.slots() {
                assert_eq!(a.base.get(slot), b.base.get(slot));
            }
            for slot in a.target.slots() {
                assert_eq!(a.target.get(slot), b.target.get(slot));
            }
            let printed = jinjing_lai::print_program(&a.program);
            let reparsed =
                jinjing_lai::validate(jinjing_lai::parse_program(&printed).unwrap()).unwrap();
            let task = jinjing_core::resolve::resolve(&a.wan.net, &reparsed, &a.base).unwrap();
            assert_eq!(task.controls.len(), a.controls.len());
            for (x, y) in task.controls.iter().zip(&a.controls) {
                assert!(x.region.same_set(&y.region));
                assert_eq!(x.verb, y.verb);
                assert_eq!(x.from, y.from);
                assert_eq!(x.to, y.to);
            }
        }
    }
}
