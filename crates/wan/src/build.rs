//! WAN construction: topology, routing, traffic matrix and ACL population.

use crate::params::WanParams;
use jinjing_acl::parse::parse_rule;
use jinjing_acl::IpPrefix;
use jinjing_acl::{Acl, Action, PacketSet, Rule};
use jinjing_net::fib::prefix_set;
use jinjing_net::{AclConfig, DeviceId, IfaceId, Network, Scope, Slot, TopologyBuilder};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A generated WAN: network + original ACL configuration + the structural
/// handles the scenarios need.
#[derive(Debug, Clone)]
pub struct Wan {
    /// The network (topology, FIBs, announcements, traffic matrix).
    pub net: Network,
    /// The original ACL configuration (`L_Ω`).
    pub config: AclConfig,
    /// Generation parameters.
    pub params: WanParams,
    /// Core devices.
    pub cores: Vec<DeviceId>,
    /// Aggregation devices, grouped by cell.
    pub aggs: Vec<Vec<DeviceId>>,
    /// Edge devices, grouped by cell.
    pub edges: Vec<Vec<DeviceId>>,
    /// Backbone uplink interfaces (one per core).
    pub uplinks: Vec<IfaceId>,
    /// Server-facing downlink interfaces (one per edge).
    pub downlinks: Vec<IfaceId>,
    /// ACL slots: aggregation ingress interfaces facing cores (grouped per
    /// aggregation device — one policy instance per core-facing interface).
    pub acl_slots: Vec<Vec<Slot>>,
    /// Migration targets: edge ingress interfaces facing aggs.
    pub edge_slots: Vec<Slot>,
    /// Customer /24 prefixes, grouped per edge device (index-aligned with
    /// the flattened `edges`).
    pub edge_prefixes: Vec<Vec<IpPrefix>>,
    /// External /16 prefixes announced at the uplinks.
    pub external_prefixes: Vec<IpPrefix>,
}

impl Wan {
    /// The whole-network scope used by all §8 experiments.
    pub fn scope(&self) -> Scope {
        Scope::whole(self.net.topology())
    }

    /// All ACL slots, flattened.
    pub fn all_acl_slots(&self) -> Vec<Slot> {
        self.acl_slots.iter().flatten().copied().collect()
    }

    /// Edge devices, flattened in cell order.
    pub fn all_edges(&self) -> Vec<DeviceId> {
        self.edges.iter().flatten().copied().collect()
    }

    /// Total installed rule instances.
    pub fn installed_rules(&self) -> usize {
        self.config.total_rules()
    }
}

/// [`build_wan`] with observability: the construction is timed under a
/// `wan.build` span and the generated workload's shape is recorded as
/// gauges (`wan.devices`, `wan.acl_slots`, `wan.installed_rules`,
/// `wan.edge_prefixes`), so benchmark metric dumps carry the workload size
/// next to the phase timings.
pub fn build_wan_observed(params: &WanParams, obs: &jinjing_obs::Collector) -> Wan {
    let sp = obs.span("wan.build");
    let wan = build_wan(params);
    let built = sp.finish();
    obs.gauge_set(
        "wan.devices",
        (wan.cores.len()
            + wan.aggs.iter().map(Vec::len).sum::<usize>()
            + wan.edges.iter().map(Vec::len).sum::<usize>()) as i64,
    );
    obs.gauge_set("wan.acl_slots", wan.all_acl_slots().len() as i64);
    obs.gauge_set("wan.installed_rules", wan.installed_rules() as i64);
    obs.gauge_set(
        "wan.edge_prefixes",
        wan.edge_prefixes.iter().map(Vec::len).sum::<usize>() as i64,
    );
    obs.event(
        jinjing_obs::Level::Debug,
        "wan.built",
        &format!(
            "seed {} built in {:.1} ms: {} rules over {} slots",
            params.seed,
            built.as_secs_f64() * 1e3,
            wan.installed_rules(),
            wan.all_acl_slots().len()
        ),
    );
    wan
}

/// Build a WAN from parameters. Fully deterministic for a given seed.
pub fn build_wan(params: &WanParams) -> Wan {
    let mut tb = TopologyBuilder::new();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Devices.
    let cores: Vec<DeviceId> = (0..params.cores)
        .map(|i| tb.device(&format!("core{i}")))
        .collect();
    let mut aggs: Vec<Vec<DeviceId>> = Vec::new();
    let mut edges: Vec<Vec<DeviceId>> = Vec::new();
    for c in 0..params.cells {
        aggs.push(
            (0..params.aggs_per_cell)
                .map(|i| tb.device(&format!("cell{c}-agg{i}")))
                .collect(),
        );
        edges.push(
            (0..params.edges_per_cell)
                .map(|i| tb.device(&format!("cell{c}-edge{i}")))
                .collect(),
        );
    }

    // Interfaces and links.
    let mut uplinks = Vec::new();
    for (i, &core) in cores.iter().enumerate() {
        uplinks.push(tb.iface(core, &format!("up{i}")));
    }
    // Core <-> agg full mesh; record the agg-side (core-facing) interfaces.
    let mut agg_core_ifaces: Vec<Vec<IfaceId>> = Vec::new(); // per agg device
    let mut agg_counter = 0usize;
    for cell_aggs in &aggs {
        for &agg in cell_aggs {
            let mut faces = Vec::new();
            for (k, &core) in cores.iter().enumerate() {
                let core_side = tb.iface(core, &format!("to-agg{agg_counter}"));
                let agg_side = tb.iface(agg, &format!("c{k}"));
                tb.link(core_side, agg_side);
                faces.push(agg_side);
            }
            agg_core_ifaces.push(faces);
            agg_counter += 1;
        }
    }
    // Agg <-> edge full mesh within each cell; record edge-side interfaces.
    let mut edge_agg_ifaces: Vec<Vec<IfaceId>> = Vec::new(); // per edge device
    let mut downlinks = Vec::new();
    let mut edge_counter = 0usize;
    for (c, cell_edges) in edges.iter().enumerate() {
        for &edge in cell_edges {
            let mut faces = Vec::new();
            for (j, &agg) in aggs[c].iter().enumerate() {
                let agg_side = tb.iface(agg, &format!("e{edge_counter}"));
                let edge_side = tb.iface(edge, &format!("a{j}"));
                tb.link(agg_side, edge_side);
                faces.push(edge_side);
            }
            downlinks.push(tb.iface(edge, "dn"));
            edge_agg_ifaces.push(faces);
            edge_counter += 1;
        }
    }
    let mut net = Network::new(tb.build());

    // Prefixes and announcements.
    let mut edge_prefixes: Vec<Vec<IpPrefix>> = Vec::new();
    {
        let mut flat_idx = 0usize;
        for c in 0..params.cells {
            for e in 0..params.edges_per_cell {
                let mut ps = Vec::new();
                for k in 0..params.prefixes_per_edge {
                    // 10.<cell>.<edge*16 + k>.0/24 — unique per (edge, k).
                    let third = e * 16 + k;
                    assert!(third < 256, "prefix space exhausted; shrink parameters");
                    let addr = (10u32 << 24) | ((c as u32) << 16) | ((third as u32) << 8);
                    let p = IpPrefix::new(addr, 24);
                    net.announce(p, downlinks[flat_idx]);
                    ps.push(p);
                }
                edge_prefixes.push(ps);
                flat_idx += 1;
            }
        }
    }
    let mut external_prefixes = Vec::new();
    for (i, &up) in uplinks.iter().enumerate() {
        for x in 0..params.external_per_uplink {
            let addr = (100u32 << 24) | (((i * params.external_per_uplink + x) as u32) << 16);
            let p = IpPrefix::new(addr, 16);
            net.announce(p, up);
            external_prefixes.push(p);
        }
    }
    net.compute_routes();

    // Traffic matrix: southbound at uplinks, northbound at downlinks.
    let south: PacketSet = edge_prefixes
        .iter()
        .flatten()
        .fold(PacketSet::empty(), |a, p| a.union(&prefix_set(p)));
    let north: PacketSet = external_prefixes
        .iter()
        .fold(PacketSet::empty(), |a, p| a.union(&prefix_set(p)));
    for &up in &uplinks {
        net.set_entering(up, south.clone());
    }
    for &dn in &downlinks {
        net.set_entering(dn, north.clone());
    }

    // ACL population: one policy per aggregation device, installed on each
    // of its core-facing interfaces (southbound ingress).
    let mut config = AclConfig::new();
    let mut acl_slots: Vec<Vec<Slot>> = Vec::new();
    let all_edge_prefixes: Vec<IpPrefix> = edge_prefixes.iter().flatten().copied().collect();
    for faces in &agg_core_ifaces {
        let acl = random_policy(
            &mut rng,
            params.rules_per_slot,
            &all_edge_prefixes,
            &external_prefixes,
        );
        let slots: Vec<Slot> = faces.iter().map(|&i| Slot::ingress(i)).collect();
        for &s in &slots {
            config.set(s, acl.clone());
        }
        acl_slots.push(slots);
    }

    let edge_slots: Vec<Slot> = edge_agg_ifaces
        .iter()
        .flatten()
        .map(|&i| Slot::ingress(i))
        .collect();

    Wan {
        net,
        config,
        params: *params,
        cores,
        aggs,
        edges,
        uplinks,
        downlinks,
        acl_slots,
        edge_slots,
        edge_prefixes,
        external_prefixes,
    }
}

/// Generate one aggregation-layer policy: a prefix-structured mix of
/// destination denies (with occasional supernets/subnets for overlap and
/// shadowing), source-conditioned denies, port-scoped denies and redundant
/// permits, closed by an implicit `permit all`.
fn random_policy(
    rng: &mut StdRng,
    rules: usize,
    edge_prefixes: &[IpPrefix],
    external_prefixes: &[IpPrefix],
) -> Acl {
    let mut out: Vec<Rule> = Vec::with_capacity(rules);
    while out.len() < rules {
        let dst = edge_prefixes[rng.random_range(0..edge_prefixes.len())];
        let roll: f64 = rng.random();
        let text = if roll < 0.50 {
            // Destination deny, sometimes widened/narrowed for overlap.
            let width: i32 = rng.random_range(-2..=1);
            let len = (24i32 + width).clamp(8, 25) as u32;
            format!("deny dst {}", IpPrefix::new(dst.addr(), len))
        } else if roll < 0.65 {
            let src = external_prefixes[rng.random_range(0..external_prefixes.len())];
            format!("deny src {src} dst {dst}")
        } else if roll < 0.80 {
            // Port selections are prefix-aligned (as real low-ports/app
            // ranges tend to be); this also keeps fix's neighborhoods 1:1
            // with the rule regions instead of splitting per aligned block.
            let (lo, hi) = match rng.random_range(0..3) {
                0 => (0u16, 1023u16),
                1 => (3389, 3389),
                _ => (8192, 9215),
            };
            format!("deny dst {dst} dport {lo}-{hi}")
        } else {
            format!("permit dst {dst}")
        };
        out.push(parse_rule(&text).expect("generated rule must parse"));
    }
    Acl::new(out, Action::Permit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::NetSize;
    use jinjing_acl::Packet;

    #[test]
    fn small_wan_builds_with_expected_shape() {
        let params = WanParams::preset(NetSize::Small);
        let wan = build_wan(&params);
        assert_eq!(wan.net.topology().device_count(), params.device_count());
        assert_eq!(wan.uplinks.len(), params.cores);
        assert_eq!(wan.downlinks.len(), params.cells * params.edges_per_cell);
        assert_eq!(wan.all_acl_slots().len(), params.acl_slot_count());
        assert_eq!(wan.installed_rules(), params.total_rules());
    }

    #[test]
    fn generation_is_deterministic() {
        let params = WanParams::preset(NetSize::Small);
        let a = build_wan(&params);
        let b = build_wan(&params);
        for slot in a.config.slots() {
            assert_eq!(a.config.get(slot), b.config.get(slot));
        }
        assert_eq!(a.net.announced().len(), b.net.announced().len());
    }

    #[test]
    fn southbound_traffic_crosses_an_acl_slot() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let scope = wan.scope();
        let prefix = wan.edge_prefixes[0][0];
        let class = prefix_set(&prefix);
        let paths = wan.net.paths_for_class(&scope, wan.uplinks[0], &class);
        assert!(!paths.is_empty(), "southbound path exists");
        for p in &paths {
            let acls = wan.config.configured_slots_on(p);
            assert_eq!(acls.len(), 1, "exactly one agg ACL on {p:?}");
            assert_eq!(p.ingress(), wan.uplinks[0]);
            assert!(wan.downlinks.contains(&p.egress()));
        }
    }

    #[test]
    fn northbound_traffic_avoids_acl_slots() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let scope = wan.scope();
        let class = prefix_set(&wan.external_prefixes[0]);
        let paths = wan.net.paths_for_class(&scope, wan.downlinks[0], &class);
        assert!(!paths.is_empty(), "northbound path exists");
        for p in &paths {
            assert!(wan.config.configured_slots_on(p).is_empty());
            assert!(wan.uplinks.contains(&p.egress()));
        }
    }

    #[test]
    fn routing_reaches_all_edge_prefixes_from_all_uplinks() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let scope = wan.scope();
        for (ei, ps) in wan.edge_prefixes.iter().enumerate() {
            for p in ps {
                let class = prefix_set(p);
                for &up in &wan.uplinks {
                    let paths = wan.net.paths_for_class(&scope, up, &class);
                    assert!(!paths.is_empty(), "uplink {up:?} -> edge {ei} prefix {p}");
                    for path in &paths {
                        assert_eq!(path.egress(), wan.downlinks[ei]);
                    }
                }
            }
        }
    }

    #[test]
    fn policies_vary_across_aggs_but_not_within() {
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        // Same policy on all core-facing slots of one agg.
        for group in &wan.acl_slots {
            let first = wan.config.get(group[0]).unwrap();
            for &s in &group[1..] {
                assert_eq!(wan.config.get(s).unwrap(), first);
            }
        }
        // At least two agg devices differ (overwhelmingly likely).
        let a = wan.config.get(wan.acl_slots[0][0]).unwrap();
        let differs = wan
            .acl_slots
            .iter()
            .any(|g| wan.config.get(g[0]).unwrap() != a);
        assert!(differs);
    }

    #[test]
    fn some_traffic_is_actually_denied() {
        // The generated policies must bite: at least one southbound
        // (prefix, path) pair is denied.
        let wan = build_wan(&WanParams::preset(NetSize::Small));
        let scope = wan.scope();
        let mut denied = 0usize;
        for ps in &wan.edge_prefixes {
            for p in ps {
                let pkt = Packet::to_dst(p.addr() | 1);
                for &up in &wan.uplinks {
                    for path in wan.net.paths_for_class(&scope, up, &prefix_set(p)) {
                        if !wan.config.path_permits(&path, &pkt) {
                            denied += 1;
                        }
                    }
                }
            }
        }
        assert!(denied > 0, "generated ACLs never deny anything");
    }
}
