//! Developer timing probe for the §8 presets: run any subset of the
//! primitives against the three network sizes and print wall-clock
//! breakdowns. Used while tuning the workload generator; the polished
//! equivalent for reproducing the paper's tables is the `figures` binary
//! in `jinjing-bench`.
//!
//! ```sh
//! cargo run --release -p jinjing-wan --example calibrate -- check,fix,batch,gen,open
//! ```
use jinjing_core::check::{check, CheckConfig};
use jinjing_core::fix::{fix, FixConfig};
use jinjing_core::generate::{generate, GenerateConfig};
use jinjing_core::Encoding;
use jinjing_lai::Command;
use jinjing_wan::scenarios;
use jinjing_wan::{build_wan, NetSize, WanParams};
use std::time::Instant;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    for size in [NetSize::Small, NetSize::Medium, NetSize::Large] {
        let wan = build_wan(&WanParams::preset(size));
        // Pre-warm the forwarding-predicate cache (routing data is static).
        for d in wan.net.topology().devices() {
            let _ = wan.net.forwarding_predicates(d);
        }
        if arg.contains("check") {
            let sc = scenarios::checkfix(&wan, 0.03, 1, Command::Check);
            for (label, cfg) in [
                ("diff+tree", CheckConfig::default()),
                (
                    "basic+seq",
                    CheckConfig {
                        differential: false,
                        encoding: Encoding::Sequential,
                        ..CheckConfig::default()
                    },
                ),
            ] {
                let t = Instant::now();
                let r = check(&wan.net, &sc.task, &cfg).unwrap();
                println!("{} check[{label}]: {:?} fecs={} paths={} pre={:?} refine={:?} pathen={:?} solve={:?}", size.label(), t.elapsed(), r.fec_count, r.paths_checked, r.t_preprocess, r.t_refine, r.t_paths, r.t_solve);
            }
        }
        if arg.contains("fix") {
            let sc = scenarios::checkfix(&wan, 0.03, 1, Command::Fix);
            let t = Instant::now();
            let plan = fix(&wan.net, &sc.task, &FixConfig::default()).unwrap();
            println!(
                "{} fix: {:?} neighborhoods={} rules={}",
                size.label(),
                t.elapsed(),
                plan.neighborhoods.len(),
                plan.added_rules.len()
            );
        }
        if arg.contains("batch") {
            use jinjing_core::fix::FixStrategy;
            let sc = scenarios::checkfix(&wan, 0.03, 1, Command::Fix);
            let cfg = FixConfig {
                strategy: FixStrategy::ExactBatch,
                ..FixConfig::default()
            };
            let t = Instant::now();
            let plan = fix(&wan.net, &sc.task, &cfg).unwrap();
            println!(
                "{} fix[batch]: {:?} neighborhoods={} rules={}",
                size.label(),
                t.elapsed(),
                plan.neighborhoods.len(),
                plan.added_rules.len()
            );
        }
        if arg.contains("gen") {
            let sc = scenarios::migration(&wan);
            let t = Instant::now();
            let r = generate(&wan.net, &sc.task, &GenerateConfig::default()).unwrap();
            println!("{} generate: {:?} aecs={} split={} rows={} rules={} phases: derive={:?} solve={:?} synth={:?}",
                size.label(), t.elapsed(), r.aec_count, r.aecs_split, r.rows, r.rules_final,
                r.phases.derive_aec, r.phases.solve, r.phases.synthesize);
        }
        if arg.contains("noopt") {
            let sc = scenarios::migration(&wan);
            let t = Instant::now();
            let r = generate(
                &wan.net,
                &sc.task,
                &GenerateConfig {
                    optimize: false,
                    ..GenerateConfig::default()
                },
            )
            .unwrap();
            println!(
                "{} generate[noopt]: {:?} rows={} rules={}",
                size.label(),
                t.elapsed(),
                r.rows,
                r.rules_final
            );
        }
        if arg.contains("exact") {
            use jinjing_core::check::check_exact;
            let sc = scenarios::migration(&wan);
            let r = generate(&wan.net, &sc.task, &GenerateConfig::default()).unwrap();
            let t = Instant::now();
            let v = check_exact(&wan.net, &sc.task.scope, &sc.task.before, &r.generated, &[]);
            println!(
                "{} exact-verify: {:?} consistent={}",
                size.label(),
                t.elapsed(),
                v.is_consistent()
            );
        }
        if arg.contains("open") {
            let sc = scenarios::control_open(&wan, 2, 1);
            let t = Instant::now();
            let r = generate(&wan.net, &sc.task, &GenerateConfig::default()).unwrap();
            println!(
                "{} open2: {:?} aecs={} rules={}",
                size.label(),
                t.elapsed(),
                r.aec_count,
                r.rules_final
            );
        }
    }
}
