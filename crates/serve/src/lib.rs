#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-serve
//!
//! The long-running verification daemon: the same engine the `jinjing`
//! CLI drives, kept resident behind a small HTTP/1.1 JSON API so a
//! deployment pipeline can ask "is this update safe?" without paying
//! process start-up and network-spec parsing on every question.
//!
//! ```text
//! POST /v1/check                LAI intent text → canonical plan JSON
//! POST /v1/fix                  ditto (fix command)
//! POST /v1/generate             ditto (generate command)
//! POST /v1/lint                 optional intent text → lint report JSON
//! POST /v1/lint/multi           #tenant-sectioned intents → lint report JSON
//! POST /v1/plan                 intent [+ #target deltas] → rollout plan JSON
//! POST /v1/shard/check          shard-scoped check → wire verdict JSON
//! POST /v1/sessions             intent text → {"classes":…,"id":"s1"}
//! POST /v1/sessions/{id}/delta  delta script → watch JSON for the batch
//! DELETE /v1/sessions/{id}      drop a session
//! GET  /healthz                 queue/session gauges, canonical JSON
//! GET  /metrics                 live jinjing-obs snapshot, Prometheus text
//! GET  /metrics.json            the same snapshot, canonical JSON
//! GET  /v1/trace/{id}           captured flight-recorder trace, Chrome JSON
//! POST /v1/shutdown             graceful drain
//! ```
//!
//! **Tracing.** A one-shot request carrying `X-Jinjing-Trace: 1` runs
//! with a per-request flight recorder attached: the response gains an
//! `X-Jinjing-Trace-Id` header (deterministic —
//! [`jinjing_obs::trace_id_of`] over the intent text) and the rendered
//! Chrome `trace_event` JSON is parked in a bounded FIFO
//! ([`store::TraceStore`], capacity [`ServeConfig::max_traces`]) for
//! `GET /v1/trace/{id}`. Tracing is off by default and never changes
//! response bodies — the byte-identity contract below holds with it on.
//!
//! **The byte-identity contract.** A response body is byte-identical to
//! the corresponding CLI output: `/v1/check|fix|generate` return exactly
//! `jinjing run --format json`, `/v1/lint` exactly
//! `jinjing lint --format json`, `/v1/plan` exactly
//! `jinjing plan --format json`, and a session delta batch exactly the
//! `jinjing watch --format json` document for those steps. Both front
//! ends call the same renderers in [`jinjing_core::query`], so the golden
//! files under `tests/golden/` pin the daemon and the CLI at once.
//!
//! **Admission control.** The accept thread parses each request (with
//! head/body caps → 400/413) and answers the cheap introspection routes
//! inline; engine work is pushed onto a bounded
//! [`jinjing_par::queue::Bounded`] queue. A full queue sheds load
//! immediately — HTTP 429 with `Retry-After` — instead of letting latency
//! grow without bound, and a job that waits past its deadline
//! (`X-Jinjing-Deadline-Ms` or the server default) is answered 408
//! without touching the solver. Queue depth, per-endpoint latency
//! histograms, shed/eviction counters and request events all land in the
//! daemon's [`jinjing_obs::Collector`], which `/metrics` snapshots live.
//!
//! **Sessions.** `POST /v1/sessions` opens a resident
//! [`jinjing_core::incr::CheckSession`] (fresh per-session query cache,
//! so generation counters match the CLI's `watch`); deltas are re-checked
//! incrementally and *rejected* deltas leave the session base untouched —
//! the same policy as the in-process API. The store is LRU-capped:
//! opening past `max_sessions` evicts the least-recently-used session
//! (counted in `serve.sessions_evicted`) and later requests for it get a
//! clean 404.
//!
//! **Drain.** `POST /v1/shutdown` stops accepting, lets the workers
//! finish every admitted job, flushes a final metrics snapshot to
//! `--metrics-out` (when configured) and returns from [`Server::run`].
//! Std can't catch signals, so interactive use gets the same effect from
//! `drain_on_stdin_eof` (the `jinjing serve --drain-on-stdin-eof` flag):
//! closing the daemon's stdin triggers a self-POST of `/v1/shutdown`.
//!
//! **Sharding.** `POST /v1/shard/check` is the backend half of the
//! `jinjing-shard` coordinator: the body carries an intent plus optional
//! `#shard-base` / `#shard-apply` delta-script sections describing the
//! exact before/after configurations, and an `X-Jinjing-Shard: i/n`
//! header restricts the run to the equivalence classes that shard owns
//! (consistent hashing — [`jinjing_acl::shard::ShardSpec`]). The response
//! is a compact wire document (global violating pair, dirty-pair and
//! query counts, mergeable obs snapshot), *not* the canonical plan JSON:
//! the coordinator re-derives the witness and renders canonical bytes
//! locally, which is how byte-identity at any shard count falls out.
//! `/v1/lint` honors the same header by linting only shard-owned slots.
//!
//! **Keep-alive.** A request carrying `Connection: keep-alive` (the
//! crate's own [`client::Conn`] always does) pins its worker to the
//! connection after the response: follow-up requests on that socket skip
//! the admission queue and are served in place until the peer closes,
//! stays idle past [`KEEPALIVE_IDLE`], or [`KEEPALIVE_MAX_REQUESTS`] is
//! reached. Only the queueable engine routes are served on a pinned
//! connection — introspection GETs and `/v1/shutdown` want a dedicated
//! (close-delimited) connection, which is how the CLI issues them.
//!
//! Std-only, like every inner crate: the server is `TcpListener` + the
//! crate's own [`http`] parser; no runtime, no TLS, one request per
//! connection unless the client negotiates keep-alive.

pub mod client;
pub mod http;
pub mod store;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use jinjing_acl::shard::ShardSpec;
use jinjing_core::engine::{EngineConfig, ReportKind};
use jinjing_core::incr::CheckSession;
use jinjing_core::query::{open_intent_session, plan_query, recheck_steps, run_query, WatchOutput};
use jinjing_net::{AclConfig, Network};
use jinjing_obs::json::JsonWriter;
use jinjing_obs::{Collector, Level};
use jinjing_par::queue::{Bounded, PushError};

use http::{read_request, HttpError, Request, Response};
use store::{Lru, TraceStore};

/// How long a read on an accepted connection may stall before the
/// connection is dropped. Bounds the damage a trickling client can do to
/// the accept thread.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a pinned keep-alive connection may sit idle between requests
/// before its worker hangs up and returns to the admission queue. Short
/// on purpose: an idle pinned worker serves nobody else.
pub const KEEPALIVE_IDLE: Duration = Duration::from_secs(2);

/// Requests served per pinned connection before the server closes it and
/// makes the client re-enter admission — bounds how long one client can
/// monopolize a worker.
pub const KEEPALIVE_MAX_REQUESTS: usize = 1000;

/// Everything that can go wrong standing the daemon up, as a printable
/// message.
#[derive(Debug)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError(format!("io error: {e}"))
    }
}

/// Daemon configuration: where to listen and how much work to admit.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:8080`; port `0` asks the OS for an
    /// ephemeral port (read it back via [`Server::local_addr`] or
    /// `port_file`).
    pub addr: String,
    /// Worker threads executing queued jobs (minimum 1).
    pub workers: usize,
    /// Bounded-queue capacity; a full queue answers 429.
    pub queue: usize,
    /// Default per-request deadline in milliseconds (0 = none). A job
    /// still queued past its deadline is answered 408 without running.
    /// Clients may override per request with `X-Jinjing-Deadline-Ms`.
    pub deadline_ms: u64,
    /// Largest accepted request body in bytes; larger declares 413.
    pub max_body: usize,
    /// LRU cap on resident check sessions.
    pub max_sessions: usize,
    /// FIFO cap on captured flight-recorder traces (`X-Jinjing-Trace`
    /// opt-in; fetched via `GET /v1/trace/{id}`).
    pub max_traces: usize,
    /// Engine worker threads per request (the CLI's `--threads`; 0 =
    /// consult `JINJING_THREADS`, default serial). Responses are
    /// byte-identical for every value.
    pub threads: usize,
    /// Write the final observability snapshot here on drain.
    pub metrics_out: Option<String>,
    /// Write the bound address (`host:port`, one line) here once
    /// listening — how scripts find an ephemeral port.
    pub port_file: Option<String>,
    /// Drain when stdin reaches EOF (the ctrl-d / supervisor-pipe story;
    /// std cannot catch SIGINT). Off by default so daemons started with
    /// stdin closed don't drain instantly.
    pub drain_on_stdin_eof: bool,
    /// Honor the test-only `X-Jinjing-Test-Delay-Ms` header, which makes
    /// a worker sleep before executing — how the integration tests and
    /// the bench saturate the queue deterministically. Never enable in
    /// production.
    pub allow_test_delay: bool,
    /// Stream observability events to stderr as they happen.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue: 64,
            deadline_ms: 10_000,
            max_body: 1 << 20,
            max_sessions: 8,
            max_traces: 16,
            threads: 0,
            metrics_out: None,
            port_file: None,
            drain_on_stdin_eof: false,
            allow_test_delay: false,
            trace: false,
        }
    }
}

/// What a finished daemon reports back to its starter.
#[derive(Debug)]
pub struct ServeSummary {
    /// Requests parsed off the wire (including shed and errored ones).
    pub requests: u64,
    /// Jobs refused with 429 because the queue was full.
    pub shed: u64,
    /// The final observability snapshot (the same data `metrics_out`
    /// receives).
    pub snapshot: jinjing_obs::Snapshot,
}

/// The daemon: a resident network + ACL configuration behind a bound
/// listener. [`Server::bind`] claims the port (so callers can read
/// [`Server::local_addr`] before blocking); [`Server::run`] serves until
/// drained.
pub struct Server {
    net: Network,
    config: AclConfig,
    cfg: ServeConfig,
    listener: TcpListener,
    obs: Collector,
}

/// A server-resident check session plus the fields the watch renderer
/// needs that the session itself doesn't expose after opening.
struct SessionCell<'n> {
    session: CheckSession<'n>,
    class_count: usize,
}

/// What travels from the accept thread to a worker: the parsed request,
/// the socket to answer on, and admission metadata.
struct Job {
    req: Request,
    stream: TcpStream,
    route: Route,
    admitted: Instant,
    id: u64,
}

/// The dispatchable POST/DELETE endpoints (GETs and shutdown are
/// answered inline on the accept thread).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    Check,
    Fix,
    Generate,
    Lint,
    LintMulti,
    Plan,
    ShardCheck,
    SessionOpen,
    SessionDelta(String),
    SessionDelete(String),
}

impl Route {
    /// The metrics key for per-endpoint latency histograms.
    fn key(&self) -> &'static str {
        match self {
            Route::Check => "check",
            Route::Fix => "fix",
            Route::Generate => "generate",
            Route::Lint => "lint",
            Route::LintMulti => "lint_multi",
            Route::Plan => "plan",
            Route::ShardCheck => "shard_check",
            Route::SessionOpen => "session_open",
            Route::SessionDelta(_) => "session_delta",
            Route::SessionDelete(_) => "session_delete",
        }
    }
}

/// Resolve a method + path to a queueable route, or the error response
/// to send inline.
fn route_of(method: &str, path: &str) -> Result<Route, Response> {
    match (method, path) {
        ("POST", "/v1/check") => Ok(Route::Check),
        ("POST", "/v1/fix") => Ok(Route::Fix),
        ("POST", "/v1/generate") => Ok(Route::Generate),
        ("POST", "/v1/lint") => Ok(Route::Lint),
        ("POST", "/v1/lint/multi") => Ok(Route::LintMulti),
        ("POST", "/v1/plan") => Ok(Route::Plan),
        ("POST", "/v1/shard/check") => Ok(Route::ShardCheck),
        ("POST", "/v1/sessions") => Ok(Route::SessionOpen),
        _ => {
            if let Some(rest) = path.strip_prefix("/v1/sessions/") {
                if let Some(id) = rest.strip_suffix("/delta") {
                    return if method == "POST" {
                        Ok(Route::SessionDelta(id.to_string()))
                    } else {
                        Err(Response::error(405, "delta wants POST"))
                    };
                }
                if !rest.is_empty() && !rest.contains('/') {
                    return if method == "DELETE" {
                        Ok(Route::SessionDelete(rest.to_string()))
                    } else {
                        Err(Response::error(405, "session resources want DELETE"))
                    };
                }
            }
            Err(Response::error(
                404,
                &format!("no route for {method} {path}"),
            ))
        }
    }
}

/// Shared immutable context for the accept thread and the workers.
struct Ctx<'a, 'n> {
    net: &'n Network,
    config: &'a AclConfig,
    cfg: &'a ServeConfig,
    obs: &'a Collector,
    queue: &'a Bounded<Job>,
    sessions: &'a Mutex<Lru<SessionCell<'n>>>,
    traces: &'a Mutex<TraceStore>,
    next_request: &'a AtomicU64,
}

impl<'a, 'n> Ctx<'a, 'n> {
    fn engine_config(&self) -> EngineConfig {
        // A *fresh* config (and thus a fresh collector + query cache) per
        // request/session keeps every response byte-identical to a cold
        // CLI run — the contract the goldens pin.
        EngineConfig {
            threads: self.cfg.threads,
            ..EngineConfig::default()
        }
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'a, Lru<SessionCell<'n>>> {
        // The store is plain bookkeeping; recover it from a poisoned lock
        // rather than taking the whole daemon down with one panic.
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_traces(&self) -> std::sync::MutexGuard<'a, TraceStore> {
        self.traces
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Send a response, counting the status class and write failures.
    fn respond(&self, stream: &mut TcpStream, resp: &Response) {
        self.respond_with(stream, resp, false);
    }

    /// [`Ctx::respond`] with an explicit connection disposition: pass
    /// `keep_alive` when the worker intends to keep serving this socket.
    fn respond_with(&self, stream: &mut TcpStream, resp: &Response, keep_alive: bool) {
        self.obs
            .counter_add(&format!("serve.http_{}", resp.status), 1);
        if resp.write_with(stream, keep_alive).is_err() {
            self.obs.counter_add("serve.write_failures", 1);
        }
    }
}

// Every field is a shared reference, so the context can be handed to
// each scoped worker by plain copy.
impl<'a, 'n> Clone for Ctx<'a, 'n> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, 'n> Copy for Ctx<'a, 'n> {}

impl Server {
    /// Bind the listener (so the ephemeral port is knowable) without
    /// serving yet.
    pub fn bind(net: Network, config: AclConfig, cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError(format!("bind {}: {e}", cfg.addr)))?;
        let obs = Collector::with_trace(cfg.trace || jinjing_obs::trace_env_enabled());
        Ok(Server {
            net,
            config,
            cfg,
            listener,
            obs,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serve until drained: accept + parse on the calling thread, execute
    /// on `workers` scoped threads, answer introspection inline. Returns
    /// once a `POST /v1/shutdown` (or stdin EOF with
    /// [`ServeConfig::drain_on_stdin_eof`]) has been honored and every
    /// admitted job is answered.
    pub fn run(self) -> Result<ServeSummary, ServeError> {
        let Server {
            net,
            config,
            cfg,
            listener,
            obs,
        } = self;
        let addr = listener.local_addr()?;
        if let Some(path) = &cfg.port_file {
            std::fs::write(path, format!("{addr}\n"))
                .map_err(|e| ServeError(format!("{path}: {e}")))?;
        }
        if cfg.drain_on_stdin_eof {
            // Detached on purpose: if stdin never closes, the thread
            // parks until process exit.
            let self_addr = addr.to_string();
            std::thread::spawn(move || {
                use std::io::Read;
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                let _ = client::call(
                    &self_addr,
                    "POST",
                    "/v1/shutdown",
                    &[],
                    b"",
                    Duration::from_secs(5),
                );
            });
        }

        let queue: Bounded<Job> = Bounded::new(cfg.queue);
        let sessions: Mutex<Lru<SessionCell<'_>>> = Mutex::new(Lru::new(cfg.max_sessions));
        let traces: Mutex<TraceStore> = Mutex::new(TraceStore::new(cfg.max_traces));
        let next_request = AtomicU64::new(0);
        obs.gauge_set("serve.queue_capacity", cfg.queue.max(1) as i64);
        obs.event(Level::Info, "serve.start", &format!("listening on {addr}"));

        std::thread::scope(|s| {
            let ctx = Ctx {
                net: &net,
                config: &config,
                cfg: &cfg,
                obs: &obs,
                queue: &queue,
                sessions: &sessions,
                traces: &traces,
                next_request: &next_request,
            };
            for _ in 0..cfg.workers.max(1) {
                s.spawn(move || worker_loop(ctx));
            }
            accept_loop(&listener, ctx);
            // Shutdown observed: admit nothing more, let the workers
            // drain what's queued and exit on the closed queue.
            queue.close();
        });

        obs.event(Level::Info, "serve.stop", "drained");
        let snapshot = obs.snapshot();
        if let Some(path) = &cfg.metrics_out {
            std::fs::write(path, snapshot.to_json())
                .map_err(|e| ServeError(format!("{path}: {e}")))?;
        }
        Ok(ServeSummary {
            requests: snapshot.counter("serve.requests_total"),
            shed: snapshot.counter("serve.queue_shed_total"),
            snapshot,
        })
    }
}

/// Accept + parse until a shutdown request arrives.
fn accept_loop(listener: &TcpListener, ctx: Ctx<'_, '_>) {
    for stream in listener.incoming() {
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
        let req = match read_request(&mut stream, ctx.cfg.max_body) {
            Ok(r) => r,
            Err(HttpError::Malformed(m)) => {
                ctx.obs.counter_add("serve.requests_total", 1);
                ctx.respond(&mut stream, &Response::error(400, &m));
                drain_rejected(&mut stream);
                continue;
            }
            Err(HttpError::TooLarge(m)) => {
                ctx.obs.counter_add("serve.requests_total", 1);
                ctx.respond(&mut stream, &Response::error(413, &m));
                drain_rejected(&mut stream);
                continue;
            }
            Err(HttpError::Io(_)) => continue, // peer went away mid-read
        };
        ctx.obs.counter_add("serve.requests_total", 1);
        let id = ctx.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        ctx.obs.event(
            Level::Debug,
            "serve.request",
            &format!("r{id} {} {}", req.method, req.path),
        );

        // Introspection and shutdown are answered inline: they must work
        // even when every worker is busy and the queue is full.
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                let body = healthz_body(ctx);
                ctx.respond(&mut stream, &Response::json(200, body));
                continue;
            }
            ("GET", "/metrics") => {
                refresh_gauges(ctx);
                let body = ctx.obs.snapshot().to_prometheus();
                ctx.respond(&mut stream, &Response::text(200, body));
                continue;
            }
            ("GET", "/metrics.json") => {
                refresh_gauges(ctx);
                let body = ctx.obs.snapshot().to_json();
                ctx.respond(&mut stream, &Response::json(200, body));
                continue;
            }
            ("GET", p) if p.starts_with("/v1/trace/") => {
                let id = &p["/v1/trace/".len()..];
                let resp = match ctx.lock_traces().get(id) {
                    Some(body) => Response::json(200, body.to_string()),
                    None => Response::error(404, &format!("unknown trace {id:?}")),
                };
                ctx.respond(&mut stream, &resp);
                continue;
            }
            ("POST", "/v1/shutdown") => {
                let mut w = JsonWriter::new();
                w.begin_object();
                w.key("status");
                w.string("draining");
                w.end_object();
                let mut body = w.finish();
                body.push('\n');
                ctx.respond(
                    &mut stream,
                    &Response::json(200, body).with_header("X-Jinjing-Exit", "0"),
                );
                return;
            }
            _ => {}
        }

        let route = match route_of(&req.method, &req.path) {
            Ok(r) => r,
            Err(resp) => {
                ctx.respond(&mut stream, &resp);
                continue;
            }
        };
        let job = Job {
            req,
            stream,
            route,
            admitted: Instant::now(),
            id,
        };
        match ctx.queue.try_push(job) {
            Ok(depth) => ctx.obs.gauge_set("serve.queue_depth", depth as i64),
            Err(PushError::Full(mut job)) => {
                ctx.obs.counter_add("serve.queue_shed_total", 1);
                ctx.respond(
                    &mut job.stream,
                    &Response::error(429, "queue full — retry later")
                        .with_header("Retry-After", "1"),
                );
            }
            Err(PushError::Closed(mut job)) => {
                ctx.respond(&mut job.stream, &Response::error(503, "draining"));
            }
        }
    }
}

/// After an early reject (413, malformed head) the peer may still be
/// writing its body: those unread bytes sit in the kernel buffer, and
/// closing a socket with pending input sends RST — which can destroy the
/// already-written response before the client reads it. Half-close our
/// write side so the client sees EOF, then swallow a bounded amount of
/// whatever the peer still had in flight before dropping the stream.
fn drain_rejected(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut budget: usize = 1 << 20;
    let mut buf = [0u8; 8192];
    while budget > 0 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// Set the live gauges right before a metrics snapshot.
fn refresh_gauges(ctx: Ctx<'_, '_>) {
    ctx.obs
        .gauge_set("serve.queue_depth", ctx.queue.depth() as i64);
    ctx.obs
        .gauge_set("serve.sessions_live", ctx.lock_sessions().len() as i64);
}

/// The `/healthz` body: cheap liveness + pressure gauges, canonical JSON.
fn healthz_body(ctx: Ctx<'_, '_>) -> String {
    let sessions = ctx.lock_sessions().len();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("queue_capacity");
    w.u64(ctx.queue.capacity() as u64);
    w.key("queue_depth");
    w.u64(ctx.queue.depth() as u64);
    w.key("sessions");
    w.u64(sessions as u64);
    w.key("status");
    w.string("ok");
    w.end_object();
    let mut body = w.finish();
    body.push('\n');
    body
}

/// A worker: pop admitted jobs until the queue closes empty. A job whose
/// client negotiated keep-alive pins this worker to the connection after
/// the response (see [`pinned_loop`]).
fn worker_loop(ctx: Ctx<'_, '_>) {
    while let Some(mut job) = ctx.queue.pop() {
        ctx.obs
            .gauge_set("serve.queue_depth", ctx.queue.depth() as i64);
        let keep = job.req.wants_keep_alive();
        let start = Instant::now();
        let resp = handle(ctx, &job.req, &job.route, job.admitted);
        record_done(ctx, &job.route, job.id, start, &resp);
        ctx.respond_with(&mut job.stream, &resp, keep);
        if keep {
            pinned_loop(ctx, job.stream);
        }
    }
}

/// Serve follow-up requests on a connection whose client negotiated
/// keep-alive. Admission control applied to the connection's *first*
/// request (it flowed through the bounded queue); follow-ups ride the
/// already-pinned worker directly, bounded by [`KEEPALIVE_IDLE`] between
/// requests and [`KEEPALIVE_MAX_REQUESTS`] per connection. Only the
/// queueable engine routes are served here — anything else (including
/// `/v1/shutdown`) is answered and the connection closed.
fn pinned_loop(ctx: Ctx<'_, '_>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE));
    for _ in 1..KEEPALIVE_MAX_REQUESTS {
        let req = match read_request(&mut stream, ctx.cfg.max_body) {
            Ok(r) => r,
            Err(HttpError::Malformed(m)) => {
                ctx.obs.counter_add("serve.requests_total", 1);
                ctx.respond(&mut stream, &Response::error(400, &m));
                return;
            }
            Err(HttpError::TooLarge(m)) => {
                ctx.obs.counter_add("serve.requests_total", 1);
                ctx.respond(&mut stream, &Response::error(413, &m));
                return;
            }
            Err(HttpError::Io(_)) => return, // idle timeout or peer hung up
        };
        ctx.obs.counter_add("serve.requests_total", 1);
        ctx.obs.counter_add("serve.keepalive_requests", 1);
        let id = ctx.next_request.fetch_add(1, Ordering::Relaxed) + 1;
        ctx.obs.event(
            Level::Debug,
            "serve.request",
            &format!("r{id} {} {} (pinned)", req.method, req.path),
        );
        let route = match route_of(&req.method, &req.path) {
            Ok(r) => r,
            Err(resp) => {
                ctx.respond(&mut stream, &resp);
                return;
            }
        };
        let keep = req.wants_keep_alive();
        let start = Instant::now();
        let resp = handle(ctx, &req, &route, start);
        record_done(ctx, &route, id, start, &resp);
        ctx.respond_with(&mut stream, &resp, keep);
        if !keep {
            return;
        }
    }
    // Request cap reached: drop the stream; the client re-dials and
    // re-enters admission.
    ctx.obs.counter_add("serve.keepalive_capped", 1);
}

/// Per-request bookkeeping once an endpoint body has produced a response.
fn record_done(ctx: Ctx<'_, '_>, route: &Route, id: u64, start: Instant, resp: &Response) {
    let elapsed = start.elapsed();
    ctx.obs.histogram_record(
        &format!("serve.latency_us.{}", route.key()),
        elapsed.as_micros() as u64,
    );
    ctx.obs.record_span("serve.request", 1, elapsed);
    ctx.obs.event(
        Level::Debug,
        "serve.response",
        &format!("r{id} {} -> {}", route.key(), resp.status),
    );
}

/// Execute one admitted request: deadline check, optional test delay,
/// then the endpoint body.
fn handle(ctx: Ctx<'_, '_>, req: &Request, route: &Route, admitted: Instant) -> Response {
    let deadline_ms = req
        .header("x-jinjing-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(ctx.cfg.deadline_ms);
    if deadline_ms > 0 && admitted.elapsed() >= Duration::from_millis(deadline_ms) {
        ctx.obs.counter_add("serve.deadline_expired", 1);
        return Response::error(
            408,
            &format!("request queued past its {deadline_ms} ms deadline"),
        );
    }
    if ctx.cfg.allow_test_delay {
        if let Some(ms) = req
            .header("x-jinjing-test-delay-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
    }
    match route.clone() {
        Route::Check => one_shot(ctx, req, "check"),
        Route::Fix => one_shot(ctx, req, "fix"),
        Route::Generate => one_shot(ctx, req, "generate"),
        Route::Lint => lint_endpoint(ctx, req),
        Route::LintMulti => lint_multi_endpoint(ctx, req),
        Route::Plan => plan_endpoint(ctx, req),
        Route::ShardCheck => shard_check_endpoint(ctx, req),
        Route::SessionOpen => session_open(ctx, req),
        Route::SessionDelta(id) => session_delta(ctx, req, &id),
        Route::SessionDelete(id) => session_delete(ctx, &id),
    }
}

/// `POST /v1/check|fix|generate`: run the intent, demand its command
/// matches the endpoint, answer the canonical plan JSON.
fn one_shot(ctx: Ctx<'_, '_>, req: &Request, endpoint: &str) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    let ecfg = ctx.engine_config();
    // Flight-recorder opt-in: any non-empty, non-"0" header value arms a
    // request-scoped recorder on this request's private collector. The
    // trace id is deterministic in the intent text, so re-tracing the
    // same query replaces its old capture rather than duplicating it.
    let tctx = req
        .header("x-jinjing-trace")
        .filter(|v| !v.is_empty() && *v != "0")
        .map(|_| {
            let t = jinjing_obs::TraceCtx::new(&jinjing_obs::trace_id_of(text));
            ecfg.obs.attach_trace_ctx(t.clone());
            t
        });
    let req_span = tctx.as_ref().map(|t| t.span(0, "serve.request"));
    let result = run_query(ctx.net, ctx.config, text, &ecfg);
    drop(req_span);
    let trace_id = tctx.map(|t| {
        let id = t.id().unwrap_or("").to_string();
        ctx.lock_traces().insert(&id, t.to_chrome_json());
        ctx.obs.counter_add("serve.traces_captured", 1);
        let dropped = t.events_dropped();
        if dropped > 0 {
            ctx.obs.counter_add("serve.trace_events_dropped", dropped);
        }
        id
    });
    let resp = match result {
        Err(e) => Response::error(400, &e.to_string()),
        Ok(out) => {
            if out.plan.command != endpoint {
                Response::error(
                    400,
                    &format!(
                        "intent command {:?} does not match endpoint /v1/{endpoint}",
                        out.plan.command
                    ),
                )
            } else {
                // Exit-code parity with `jinjing run`: a failed bare check
                // gates pipelines with 3.
                let exit = if endpoint == "check" && out.plan.verdict.starts_with("inconsistent") {
                    3
                } else {
                    0
                };
                Response::json(200, out.plan.to_canonical_json())
                    .with_header("X-Jinjing-Exit", &exit.to_string())
            }
        }
    };
    match trace_id {
        Some(id) => resp.with_header("X-Jinjing-Trace-Id", &id),
        None => resp,
    }
}

/// Parse an `X-Jinjing-Shard: i/n` header into a shard spec. Absent
/// header means "the whole space" (`None`); a malformed or out-of-range
/// value is an error the endpoint answers with 400 — [`ShardSpec::new`]
/// panics on bad input, so validate here first.
fn shard_spec_of(req: &Request) -> Result<Option<ShardSpec>, String> {
    let Some(v) = req.header("x-jinjing-shard") else {
        return Ok(None);
    };
    let parsed = v.split_once('/').and_then(|(i, n)| {
        let i: usize = i.trim().parse().ok()?;
        let n: usize = n.trim().parse().ok()?;
        (n > 0 && i < n).then(|| ShardSpec::new(i, n))
    });
    match parsed {
        Some(spec) => Ok(Some(spec)),
        None => Err(format!(
            "X-Jinjing-Shard wants i/n with i < n, got {v:?}"
        )),
    }
}

/// `POST /v1/lint`: lint the resident network + configuration, with the
/// body (when non-empty) as the intent program. Byte-identical to
/// `jinjing lint --format json` on the same inputs. An
/// `X-Jinjing-Shard: i/n` header restricts the pass to shard-owned slots
/// (network-wide findings come from the primary shard only), so the
/// per-shard reports partition the unsharded one.
fn lint_endpoint(ctx: Ctx<'_, '_>, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    let shard = match shard_spec_of(req) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &e),
    };
    let program = if text.trim().is_empty() {
        None
    } else {
        let parsed = match jinjing_lai::parse_program(text) {
            Ok(p) => p,
            Err(e) => return Response::error(400, &e.to_string()),
        };
        match jinjing_lai::validate(parsed) {
            Ok(p) => Some(p),
            Err(e) => return Response::error(400, &e.to_string()),
        }
    };
    let lcfg = jinjing_lint::LintConfig {
        shard,
        ..jinjing_lint::LintConfig::default()
    };
    let out = jinjing_core::engine::lint(ctx.net, ctx.config, program.as_ref(), &lcfg);
    let ReportKind::Lint(report) = out.kind else {
        return Response::error(500, "engine returned a non-lint report for lint");
    };
    // Exit-code parity with `jinjing lint`: error-severity findings gate
    // with 4.
    let exit = if report.has_errors() { 4 } else { 0 };
    let mut body = report.to_json();
    body.push('\n');
    Response::json(200, body).with_header("X-Jinjing-Exit", &exit.to_string())
}

/// Parse the `POST /v1/lint/multi` wire body into `(tenant, program-text)`
/// pairs and a priority order.
///
/// The body is plain text sectioned by directives (chosen so the
/// serde-free daemon needs no JSON body): a `#tenant NAME` line starts
/// that tenant's intent program, and an optional `#priority a,b,c` line
/// (anywhere) gives the tenant priority order. `#` already starts a
/// comment in LAI, so the directives are invisible to the intent parser;
/// everything else is passed through verbatim.
fn parse_multi_lint_body(text: &str) -> Result<(Vec<(String, String)>, Vec<String>), String> {
    let mut tenants: Vec<(String, String)> = Vec::new();
    let mut priority: Vec<String> = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed == "#tenant" {
            return Err("#tenant wants a name".to_string());
        } else if let Some(name) = trimmed.strip_prefix("#tenant ") {
            let name = name.trim();
            if tenants.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate tenant {name:?}"));
            }
            tenants.push((name.to_string(), String::new()));
        } else if let Some(order) = trimmed.strip_prefix("#priority ") {
            if !priority.is_empty() {
                return Err("more than one #priority line".to_string());
            }
            priority = order
                .split(',')
                .map(|t| t.trim().to_string())
                .filter(|t| !t.is_empty())
                .collect();
            if priority.is_empty() {
                return Err("#priority wants a comma-separated tenant list".to_string());
            }
        } else {
            match tenants.last_mut() {
                Some((_, body)) => {
                    body.push_str(line);
                    body.push('\n');
                }
                None if trimmed.is_empty() => {}
                None => {
                    return Err(format!(
                        "intent text before the first #tenant line: {trimmed:?}"
                    ))
                }
            }
        }
    }
    if tenants.is_empty() {
        return Err("no #tenant sections in body".to_string());
    }
    for p in &priority {
        if !tenants.iter().any(|(n, _)| n == p) {
            return Err(format!("#priority names unknown tenant {p:?}"));
        }
    }
    Ok((tenants, priority))
}

/// `POST /v1/lint/multi`: the cross-tenant lint pass (JL3xx) over a set
/// of tenant intents against the resident network + configuration. The
/// body is sectioned by `#tenant NAME` lines with an optional
/// `#priority a,b,c` order (see [`parse_multi_lint_body`]). Byte-identical
/// to `jinjing lint --intent tenant=FILE ... --format json` on the same
/// inputs.
fn lint_multi_endpoint(ctx: Ctx<'_, '_>, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    let (sections, priority) = match parse_multi_lint_body(text) {
        Ok(parts) => parts,
        Err(e) => return Response::error(400, &e),
    };
    let mut tenants = Vec::with_capacity(sections.len());
    for (name, body) in &sections {
        let parsed = match jinjing_lai::parse_program(body) {
            Ok(p) => p,
            Err(e) => return Response::error(400, &format!("tenant {name}: {e}")),
        };
        match jinjing_lai::validate(parsed) {
            Ok(p) => tenants.push(jinjing_lint::TenantIntent::new(name.clone(), p)),
            Err(e) => return Response::error(400, &format!("tenant {name}: {e}")),
        }
    }
    let out = jinjing_core::engine::lint_multi(
        ctx.net,
        ctx.config,
        &tenants,
        &priority,
        &jinjing_lint::LintConfig::default(),
    );
    let ReportKind::Lint(report) = out.kind else {
        return Response::error(500, "engine returned a non-lint report for lint");
    };
    let exit = if report.has_errors() { 4 } else { 0 };
    let mut body = report.to_json();
    body.push('\n');
    Response::json(200, body).with_header("X-Jinjing-Exit", &exit.to_string())
}

/// Parse the `POST /v1/plan` wire body into the intent program text and
/// the optional target delta script.
///
/// Like `/v1/lint/multi`, the body is plain text sectioned by directives
/// so the serde-free daemon needs no JSON body: everything up to an
/// optional `#target` line is the intent program; everything after it is
/// a delta script describing the target configuration (the same syntax
/// `jinjing plan --target` reads). An optional `#max-waves N` line caps
/// the wave count. `#` already starts a comment in LAI, so the
/// directives are invisible to the intent parser.
///
/// Public so the `jinjing-shard` coordinator reuses the exact wire
/// grammar when it proxies `/v1/plan`.
pub fn parse_plan_body(text: &str) -> Result<(String, Option<String>, usize), String> {
    let mut intent = String::new();
    let mut target: Option<String> = None;
    let mut max_waves = 0usize;
    let mut saw_max_waves = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed == "#target" {
            if target.is_some() {
                return Err("more than one #target line".to_string());
            }
            target = Some(String::new());
        } else if let Some(n) = trimmed.strip_prefix("#max-waves ") {
            if saw_max_waves {
                return Err("more than one #max-waves line".to_string());
            }
            max_waves = n
                .trim()
                .parse()
                .map_err(|_| format!("#max-waves wants a number, got {:?}", n.trim()))?;
            saw_max_waves = true;
        } else {
            let sink = target.as_mut().unwrap_or(&mut intent);
            sink.push_str(line);
            sink.push('\n');
        }
    }
    Ok((intent, target, max_waves))
}

/// `POST /v1/plan`: synthesize a certified rollout plan from the
/// resident configuration to a target described by the body's `#target`
/// delta script (or the intent's own after-state when absent).
/// Byte-identical to `jinjing plan --format json` on the same inputs;
/// `X-Jinjing-Exit` is 3 when no safe ordering exists.
fn plan_endpoint(ctx: Ctx<'_, '_>, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    let (intent, target, max_waves) = match parse_plan_body(text) {
        Ok(parts) => parts,
        Err(e) => return Response::error(400, &e),
    };
    let mut ecfg = ctx.engine_config();
    ecfg.plan.max_waves = max_waves;
    match plan_query(ctx.net, ctx.config, &intent, target.as_deref(), &ecfg) {
        Err(e) => Response::error(400, &e.to_string()),
        Ok(out) => {
            // Exit-code parity with `jinjing plan`: infeasibility gates
            // pipelines with 3.
            let exit = if out.feasible { 0 } else { 3 };
            Response::json(200, out.json).with_header("X-Jinjing-Exit", &exit.to_string())
        }
    }
}

/// Parse the `POST /v1/shard/check` wire body into the intent text and
/// the optional `#shard-base` / `#shard-apply` delta scripts.
///
/// Same directive convention as the other plain-text bodies: everything
/// up to the first marker is the intent program; `#shard-base` starts a
/// delta script carrying the resident→before edits, `#shard-apply` the
/// before→after edits. The coordinator always sends both markers (the
/// sections may be empty); a hand-written probe may omit them, in which
/// case the intent's own before/after stand.
///
/// Public so the coordinator and the backend agree on one grammar.
pub fn parse_shard_body(text: &str) -> Result<(String, Option<String>, Option<String>), String> {
    let mut intent = String::new();
    let mut base: Option<String> = None;
    let mut apply: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed == "#shard-base" {
            if base.is_some() {
                return Err("more than one #shard-base line".to_string());
            }
            if apply.is_some() {
                return Err("#shard-base after #shard-apply".to_string());
            }
            base = Some(String::new());
        } else if trimmed == "#shard-apply" {
            if apply.is_some() {
                return Err("more than one #shard-apply line".to_string());
            }
            apply = Some(String::new());
        } else {
            let sink = apply.as_mut().or(base.as_mut()).unwrap_or(&mut intent);
            sink.push_str(line);
            sink.push('\n');
        }
    }
    Ok((intent, base, apply))
}

/// `POST /v1/shard/check`: the backend half of sharded verification.
///
/// Resolves the intent against the resident network, folds the
/// `#shard-base` / `#shard-apply` delta scripts into explicit
/// before/after configurations, and checks only the equivalence classes
/// the `X-Jinjing-Shard` spec owns. The response is the compact wire
/// document the coordinator merges (sorted keys, one trailing newline):
///
/// ```text
/// {"dirty_pairs":…,"fec_count":…,"obs":{…},"pair":{"class":…,"path":…}|null,
///  "queries":…,"shard":{"count":…,"index":…},"status":"ok"}
/// ```
///
/// `pair` is the shard-local minimum violating `(class, path)` in
/// **global** coordinates; the coordinator takes the lexicographic
/// minimum across shards, re-solves that one pair locally to materialize
/// the witness packet, and renders the canonical document itself.
fn shard_check_endpoint(ctx: Ctx<'_, '_>, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    let shard = match shard_spec_of(req) {
        Ok(s) => s,
        Err(e) => return Response::error(400, &e),
    };
    let (intent, base, apply) = match parse_shard_body(text) {
        Ok(parts) => parts,
        Err(e) => return Response::error(400, &e),
    };
    let program = match jinjing_lai::parse_program(&intent) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    // Lax validation: the configurations under test come from the delta
    // scripts, so a modify-less intent (a rollout-planning probe) is
    // legal here. The coordinator already applied the strict rules its
    // own endpoint demands.
    let program = match jinjing_lai::validate_plan_intent(program) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let task = match jinjing_core::resolve(ctx.net, &program, ctx.config) {
        Ok(t) => t,
        Err(e) => return Response::error(400, &e.to_string()),
    };

    // Fold the delta scripts into the exact configurations under test.
    // An empty (or absent) script is a no-op, so a plain intent checks
    // its own before/after.
    let fold = |label: &str, start: &AclConfig, script: &str| -> Result<AclConfig, Response> {
        let deltas = jinjing_core::incr::parse_delta_script(ctx.net, script)
            .map_err(|e| Response::error(400, &format!("{label}: {e}")))?;
        let mut config = start.clone();
        for (_, delta) in &deltas {
            config = delta.applied_to(&config);
        }
        Ok(config)
    };
    let before = match base {
        Some(script) => match fold("#shard-base", &task.before, &script) {
            Ok(c) => c,
            Err(resp) => return resp,
        },
        None => task.before.clone(),
    };
    let after = match apply {
        // The apply script is relative to the (possibly rebased) before.
        Some(script) => match fold("#shard-apply", &before, &script) {
            Ok(c) => c,
            Err(resp) => return resp,
        },
        None => task.after.clone(),
    };

    let ccfg = jinjing_core::check::CheckConfig {
        threads: ctx.cfg.threads,
        shard: shard.clone(),
        ..jinjing_core::check::CheckConfig::default()
    };
    let report = match jinjing_core::check::check_configs(
        ctx.net,
        &task.scope,
        &before,
        &after,
        &task.controls,
        &ccfg,
    ) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let snapshot = ccfg.obs.snapshot();

    // Hand-rolled so the mergeable obs snapshot embeds raw; keys stay
    // sorted (the coordinator parses this with jinjing-obs's Json).
    let (index, count) = shard.as_ref().map_or((0, 1), |s| (s.index(), s.count()));
    let mut body = String::new();
    body.push_str("{\"dirty_pairs\":");
    body.push_str(&report.paths_checked.to_string());
    body.push_str(",\"fec_count\":");
    body.push_str(&report.fec_count.to_string());
    body.push_str(",\"obs\":");
    body.push_str(snapshot.to_json().trim_end());
    body.push_str(",\"pair\":");
    match report.violation_pair {
        Some((class, path)) => {
            body.push_str(&format!("{{\"class\":{class},\"path\":{path}}}"));
        }
        None => body.push_str("null"),
    }
    body.push_str(",\"queries\":");
    body.push_str(&snapshot.counter("solver.queries").to_string());
    body.push_str(&format!(
        ",\"shard\":{{\"count\":{count},\"index\":{index}}},\"status\":\"ok\"}}\n"
    ));
    Response::json(200, body).with_header("X-Jinjing-Exit", "0")
}

/// `POST /v1/sessions`: open a resident check session over the intent's
/// scope and the daemon's current configuration.
fn session_open(ctx: Ctx<'_, '_>, req: &Request) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    match open_intent_session(ctx.net, ctx.config, text, &ctx.engine_config()) {
        Err(e) => Response::error(400, &e.to_string()),
        Ok(session) => {
            let class_count = session.class_count();
            let mut store = ctx.lock_sessions();
            let r = store.insert(SessionCell {
                session,
                class_count,
            });
            ctx.obs.counter_add("serve.sessions_opened", 1);
            if let Some(victim) = &r.evicted {
                ctx.obs.counter_add("serve.sessions_evicted", 1);
                ctx.obs.event(
                    Level::Info,
                    "serve.session_evicted",
                    &format!("{victim} evicted by {}", r.id),
                );
            }
            ctx.obs.gauge_set("serve.sessions_live", store.len() as i64);
            drop(store);
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("classes");
            w.u64(class_count as u64);
            w.key("id");
            w.string(&r.id);
            w.end_object();
            let mut body = w.finish();
            body.push('\n');
            Response::json(200, body).with_header("X-Jinjing-Exit", "0")
        }
    }
}

/// `POST /v1/sessions/{id}/delta`: re-check one delta batch against a
/// resident session, answering the canonical watch JSON for the batch.
fn session_delta(ctx: Ctx<'_, '_>, req: &Request, id: &str) -> Response {
    let text = match req.body_text() {
        Ok(t) => t,
        Err(HttpError::Malformed(m)) => return Response::error(400, &m),
        Err(_) => return Response::error(400, "unreadable body"),
    };
    let deltas = match jinjing_core::incr::parse_delta_script(ctx.net, text) {
        Ok(d) => d,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let Some(cell) = ctx.lock_sessions().get(id) else {
        return Response::error(
            404,
            &format!("unknown session {id:?} (expired or evicted?)"),
        );
    };
    // Deltas to the *same* session serialize here; other sessions and
    // one-shot queries proceed in parallel on the other workers.
    let mut cell = cell
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match recheck_steps(&mut cell.session, &deltas) {
        Err(e) => Response::error(400, &e.to_string()),
        Ok(steps) => {
            let rejected = steps.iter().filter(|s| !s.applied).count();
            if rejected > 0 {
                ctx.obs
                    .counter_add("serve.deltas_rejected", rejected as u64);
            }
            let out = WatchOutput::from_steps(
                cell.class_count,
                deltas.len(),
                steps,
                jinjing_obs::Snapshot::empty(),
            );
            // Exit-code parity with `jinjing watch`: rejected deltas gate
            // with 3.
            let exit = if rejected > 0 { 3 } else { 0 };
            Response::json(200, out.to_canonical_json())
                .with_header("X-Jinjing-Exit", &exit.to_string())
        }
    }
}

/// `DELETE /v1/sessions/{id}`.
fn session_delete(ctx: Ctx<'_, '_>, id: &str) -> Response {
    let mut store = ctx.lock_sessions();
    if store.remove(id) {
        ctx.obs.counter_add("serve.sessions_closed", 1);
        ctx.obs.gauge_set("serve.sessions_live", store.len() as i64);
        drop(store);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("deleted");
        w.string(id);
        w.end_object();
        let mut body = w.finish();
        body.push('\n');
        Response::json(200, body).with_header("X-Jinjing-Exit", "0")
    } else {
        Response::error(404, &format!("unknown session {id:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_core::figure1::Figure1;

    const CHECK_INTENT: &str = "\
acl PermitAll { permit all }
scope A:*, B:*, C:*, D:*
allow A:*, B:*
modify D:2 to PermitAll
check
";

    fn call(addr: &str, method: &str, path: &str, body: &str) -> client::CallResponse {
        client::call(
            addr,
            method,
            path,
            &[],
            body.as_bytes(),
            Duration::from_secs(20),
        )
        .expect("call")
    }

    #[test]
    fn daemon_round_trip_check_sessions_metrics_drain() {
        let f = Figure1::new();
        let srv = Server::bind(f.net, f.config, ServeConfig::default()).unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || srv.run().unwrap());

        // One-shot check: inconsistent on the Figure 1 opening → exit 3,
        // canonical plan body.
        let r = call(&addr, "POST", "/v1/check", CHECK_INTENT);
        assert_eq!(r.status, 200);
        assert_eq!(r.exit_code(), 3);
        let body = r.body_text();
        assert!(body.starts_with("{\"changes\":["), "{body}");
        assert!(body.ends_with("}\n"), "{body}");
        // Byte-identity with the in-process query layer.
        let f2 = Figure1::new();
        let direct = run_query(&f2.net, &f2.config, CHECK_INTENT, &EngineConfig::default())
            .unwrap()
            .plan
            .to_canonical_json();
        assert_eq!(
            body, direct,
            "daemon and library must render identical bytes"
        );

        // Command/endpoint mismatch is a 400, not a silent re-dispatch.
        let r = call(&addr, "POST", "/v1/fix", CHECK_INTENT);
        assert_eq!(r.status, 400);
        assert_eq!(r.exit_code(), 1);

        // Session lifecycle: open, delta, delete.
        let r = call(&addr, "POST", "/v1/sessions", CHECK_INTENT);
        assert_eq!(r.status, 200, "{}", r.body_text());
        let body = r.body_text();
        assert!(body.contains("\"id\":\"s1\""), "{body}");
        let r = call(&addr, "POST", "/v1/sessions/s1/delta", "step noop\n");
        assert_eq!(r.status, 200, "{}", r.body_text());
        assert!(r.body_text().contains("\"label\":\"noop\""));
        assert_eq!(r.exit_code(), 0);
        let r = call(&addr, "DELETE", "/v1/sessions/s1", "");
        assert_eq!(r.status, 200);
        let r = call(&addr, "POST", "/v1/sessions/s1/delta", "step x\n");
        assert_eq!(r.status, 404, "deleted sessions are gone");

        // Introspection.
        let r = call(&addr, "GET", "/healthz", "");
        assert_eq!(r.status, 200);
        assert!(r.body_text().contains("\"status\":\"ok\""));
        let r = call(&addr, "GET", "/metrics", "");
        assert_eq!(r.status, 200);
        let metrics = r.body_text();
        assert!(
            metrics.contains("jinjing_serve_requests_total"),
            "{metrics}"
        );
        assert!(
            metrics.contains("jinjing_serve_latency_us_check"),
            "{metrics}"
        );

        // Unknown routes and bad intents.
        let r = call(&addr, "GET", "/nope", "");
        assert_eq!(r.status, 404);
        let r = call(&addr, "POST", "/v1/check", "scope Z:*\ncheck\n");
        assert_eq!(r.status, 400);
        assert_eq!(r.exit_code(), 1);

        // Drain and collect the summary.
        let r = call(&addr, "POST", "/v1/shutdown", "");
        assert_eq!(r.status, 200);
        let summary = handle.join().unwrap();
        assert!(summary.requests >= 10, "{}", summary.requests);
        assert_eq!(summary.shed, 0);
        assert_eq!(summary.snapshot.counter("serve.sessions_opened"), 1);
        assert_eq!(summary.snapshot.counter("serve.sessions_closed"), 1);
    }

    #[test]
    fn traced_request_captures_and_serves_a_flight_record() {
        let f = Figure1::new();
        let srv = Server::bind(f.net, f.config, ServeConfig::default()).unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || srv.run().unwrap());

        // Baseline body without tracing: no trace id is stamped.
        let plain = call(&addr, "POST", "/v1/check", CHECK_INTENT);
        assert_eq!(plain.status, 200);
        assert!(plain.header("x-jinjing-trace-id").is_none());

        // Opt in via header: identical bytes, plus a deterministic id.
        let traced = client::call(
            &addr,
            "POST",
            "/v1/check",
            &[("X-Jinjing-Trace".to_string(), "1".to_string())],
            CHECK_INTENT.as_bytes(),
            Duration::from_secs(20),
        )
        .expect("traced call");
        assert_eq!(traced.status, 200);
        assert_eq!(
            traced.body_text(),
            plain.body_text(),
            "tracing must not perturb response bytes"
        );
        let id = traced
            .header("x-jinjing-trace-id")
            .expect("trace id")
            .to_string();
        assert_eq!(id, jinjing_obs::trace_id_of(CHECK_INTENT));

        // The capture is fetchable and holds spans from every layer:
        // serve, engine, a pool worker track, and the solver.
        let r = call(&addr, "GET", &format!("/v1/trace/{id}"), "");
        assert_eq!(r.status, 200, "{}", r.body_text());
        let trace = r.body_text();
        for needle in [
            "\"traceEvents\"",
            "serve.request",
            "engine.run",
            "worker-0",
            "solver.query",
        ] {
            assert!(trace.contains(needle), "missing {needle} in {trace}");
        }

        // Unknown ids are a clean 404.
        let r = call(&addr, "GET", "/v1/trace/tdeadbeef", "");
        assert_eq!(r.status, 404);

        let r = call(&addr, "POST", "/v1/shutdown", "");
        assert_eq!(r.status, 200);
        let summary = handle.join().unwrap();
        assert_eq!(summary.snapshot.counter("serve.traces_captured"), 1);
    }

    #[test]
    fn routes_resolve_and_reject() {
        assert_eq!(route_of("POST", "/v1/check").unwrap(), Route::Check);
        assert_eq!(
            route_of("POST", "/v1/sessions/s7/delta").unwrap(),
            Route::SessionDelta("s7".into())
        );
        assert_eq!(
            route_of("DELETE", "/v1/sessions/s7").unwrap(),
            Route::SessionDelete("s7".into())
        );
        assert_eq!(route_of("GET", "/v1/check").unwrap_err().status, 404);
        assert_eq!(
            route_of("GET", "/v1/sessions/s7/delta").unwrap_err().status,
            405
        );
        assert_eq!(
            route_of("PATCH", "/v1/sessions/s7").unwrap_err().status,
            405
        );
        assert_eq!(route_of("POST", "/v2/zzz").unwrap_err().status, 404);
        assert_eq!(route_of("POST", "/v1/lint/multi").unwrap(), Route::LintMulti);
        assert_eq!(Route::LintMulti.key(), "lint_multi");
        assert_eq!(route_of("GET", "/v1/lint/multi").unwrap_err().status, 404);
        assert_eq!(route_of("POST", "/v1/plan").unwrap(), Route::Plan);
        assert_eq!(Route::Plan.key(), "plan");
        assert_eq!(route_of("GET", "/v1/plan").unwrap_err().status, 404);
        assert_eq!(
            route_of("POST", "/v1/shard/check").unwrap(),
            Route::ShardCheck
        );
        assert_eq!(Route::ShardCheck.key(), "shard_check");
        assert_eq!(route_of("GET", "/v1/shard/check").unwrap_err().status, 404);
    }

    #[test]
    fn shard_body_parses_sections() {
        let body = "scope A:*\ncheck\n#shard-base\nclear C1 in\n#shard-apply\nclear C2 in\n";
        let (intent, base, apply) = parse_shard_body(body).unwrap();
        assert_eq!(intent, "scope A:*\ncheck\n");
        assert_eq!(base.as_deref(), Some("clear C1 in\n"));
        assert_eq!(apply.as_deref(), Some("clear C2 in\n"));

        // Markers with empty sections: explicit "no rebase, no edits".
        let (intent, base, apply) =
            parse_shard_body("check\n#shard-base\n#shard-apply\n").unwrap();
        assert_eq!(intent, "check\n");
        assert_eq!(base.as_deref(), Some(""));
        assert_eq!(apply.as_deref(), Some(""));

        // No markers: the whole body is the intent.
        let (intent, base, apply) = parse_shard_body("scope A:*\ncheck\n").unwrap();
        assert_eq!(intent, "scope A:*\ncheck\n");
        assert_eq!(base, None);
        assert_eq!(apply, None);

        assert!(parse_shard_body("check\n#shard-base\n#shard-base\n")
            .unwrap_err()
            .contains("more than one #shard-base"));
        assert!(parse_shard_body("check\n#shard-apply\n#shard-apply\n")
            .unwrap_err()
            .contains("more than one #shard-apply"));
        assert!(parse_shard_body("check\n#shard-apply\n#shard-base\n")
            .unwrap_err()
            .contains("after #shard-apply"));
    }

    #[test]
    fn shard_header_parses_and_rejects() {
        let req = |headers: &[(&str, &str)]| Request {
            method: "POST".to_string(),
            path: "/v1/shard/check".to_string(),
            headers: headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        };
        assert_eq!(shard_spec_of(&req(&[])).unwrap(), None);
        let spec = shard_spec_of(&req(&[("x-jinjing-shard", "1/4")]))
            .unwrap()
            .unwrap();
        assert_eq!((spec.index(), spec.count()), (1, 4));
        for bad in ["", "4", "4/4", "2/0", "a/b", "-1/4"] {
            assert!(
                shard_spec_of(&req(&[("x-jinjing-shard", bad)])).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    /// A semantically invisible update (D:2's denies reordered): every
    /// dirty pair solves to "unchanged", so the scan never short-circuits
    /// — the workload the partition arithmetic is provable on.
    const CONSISTENT_INTENT: &str = "\
acl D2r {
    deny dst 2.0.0.0/8
    deny dst 1.0.0.0/8
    permit all
}
scope A:*, B:*, C:*, D:*
allow D:*
modify D:2 to D2r
check
";

    #[test]
    fn shard_check_partitions_the_figure1_workload() {
        let f = Figure1::new();
        let srv = Server::bind(f.net, f.config, ServeConfig::default()).unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || srv.run().unwrap());

        let wire = |intent: &str, shard: Option<(u64, u64)>| {
            let headers: Vec<(String, String)> = shard
                .map(|(i, n)| vec![("X-Jinjing-Shard".to_string(), format!("{i}/{n}"))])
                .unwrap_or_default();
            let r = client::call(
                &addr,
                "POST",
                "/v1/shard/check",
                &headers,
                intent.as_bytes(),
                Duration::from_secs(20),
            )
            .expect("shard call");
            assert_eq!(r.status, 200, "{}", r.body_text());
            jinjing_obs::json::parse(r.body_text().trim()).unwrap()
        };

        // Consistent workload: the full pair space is scanned, so two
        // shards' dirty pairs and solver queries sum *exactly* to the
        // unsharded run — the pair space is partitioned, never duplicated.
        let whole = wire(CONSISTENT_INTENT, None);
        assert_eq!(whole.get("status").unwrap().as_str(), Some("ok"));
        assert!(whole.get("pair").unwrap().as_str().is_none()); // null
        let whole_pairs = whole.get("dirty_pairs").unwrap().as_u64().unwrap();
        let whole_queries = whole.get("queries").unwrap().as_u64().unwrap();
        assert!(whole_pairs > 0);
        assert!(whole_queries > 0);
        let mut pair_sum = 0;
        let mut query_sum = 0;
        for i in 0..2 {
            let doc = wire(CONSISTENT_INTENT, Some((i, 2)));
            let shard = doc.get("shard").unwrap();
            assert_eq!(shard.get("index").unwrap().as_u64(), Some(i));
            assert_eq!(shard.get("count").unwrap().as_u64(), Some(2));
            pair_sum += doc.get("dirty_pairs").unwrap().as_u64().unwrap();
            query_sum += doc.get("queries").unwrap().as_u64().unwrap();
        }
        assert_eq!(pair_sum, whole_pairs, "shards must partition the pairs");
        assert_eq!(query_sum, whole_queries, "no duplicated solver queries");

        // Inconsistent workload: the minimum pair over the shards is the
        // global minimum the unsharded run reports. (Pair *counts* differ
        // here by design — the unsharded scan short-circuits at the first
        // violation, a shard that owns none scans its whole slice.)
        let whole = wire(CHECK_INTENT, None);
        let whole_pair = whole.get("pair").unwrap();
        let min_pair = (
            whole_pair.get("class").unwrap().as_u64().unwrap(),
            whole_pair.get("path").unwrap().as_u64().unwrap(),
        );
        let mut best: Option<(u64, u64)> = None;
        for i in 0..2 {
            let doc = wire(CHECK_INTENT, Some((i, 2)));
            let p = doc.get("pair").unwrap();
            if let (Some(c), Some(pi)) = (
                p.get("class").and_then(|v| v.as_u64()),
                p.get("path").and_then(|v| v.as_u64()),
            ) {
                let candidate = (c, pi);
                if best.map_or(true, |b| candidate < b) {
                    best = Some(candidate);
                }
            }
        }
        assert_eq!(best, Some(min_pair), "min over shards is the global min");

        // A malformed shard header is a clean 400.
        let r = client::call(
            &addr,
            "POST",
            "/v1/shard/check",
            &[("X-Jinjing-Shard".to_string(), "3/2".to_string())],
            CHECK_INTENT.as_bytes(),
            Duration::from_secs(20),
        )
        .expect("call");
        assert_eq!(r.status, 400);

        let r = call(&addr, "POST", "/v1/shutdown", "");
        assert_eq!(r.status, 200);
        handle.join().unwrap();
    }

    #[test]
    fn keep_alive_connection_serves_many_requests_on_one_socket() {
        let f = Figure1::new();
        let srv = Server::bind(f.net, f.config, ServeConfig::default()).unwrap();
        let addr = srv.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || srv.run().unwrap());

        let mut conn = client::Conn::new(&addr, Duration::from_secs(20)).expect("conn");
        let one = conn
            .call("POST", "/v1/check", &[], CHECK_INTENT.as_bytes())
            .expect("first");
        let two = conn
            .call("POST", "/v1/check", &[], CHECK_INTENT.as_bytes())
            .expect("second");
        assert_eq!(one.status, 200);
        assert_eq!(two.status, 200);
        assert_eq!(
            one.body_text(),
            two.body_text(),
            "same query, same bytes, same connection"
        );

        let r = call(&addr, "POST", "/v1/shutdown", "");
        assert_eq!(r.status, 200);
        let summary = handle.join().unwrap();
        assert!(
            summary.snapshot.counter("serve.keepalive_requests") >= 1,
            "the second request must ride the pinned connection"
        );
    }

    #[test]
    fn plan_body_parses_sections() {
        let body = "scope A:*\ncheck\n#max-waves 2\n#target\nclear C1 in\n";
        let (intent, target, max_waves) = parse_plan_body(body).unwrap();
        assert_eq!(intent, "scope A:*\ncheck\n");
        assert_eq!(target.as_deref(), Some("clear C1 in\n"));
        assert_eq!(max_waves, 2);

        // No directives: the whole body is the intent, target defaults.
        let (intent, target, max_waves) = parse_plan_body("scope A:*\ncheck\n").unwrap();
        assert_eq!(intent, "scope A:*\ncheck\n");
        assert_eq!(target, None);
        assert_eq!(max_waves, 0);

        assert!(parse_plan_body("check\n#target\n#target\n")
            .unwrap_err()
            .contains("more than one #target"));
        assert!(parse_plan_body("check\n#max-waves 1\n#max-waves 2\n")
            .unwrap_err()
            .contains("more than one #max-waves"));
        assert!(parse_plan_body("check\n#max-waves zebra\n")
            .unwrap_err()
            .contains("wants a number"));
    }

    #[test]
    fn multi_lint_body_parses_sections_and_priority() {
        let body = "#priority alpha,beta\n\
                    #tenant alpha\nscope A:*\ncontrol A:* -> A:* isolate all\ncheck\n\
                    #tenant beta\nscope B:*\ncheck\n";
        let (tenants, priority) = parse_multi_lint_body(body).unwrap();
        assert_eq!(priority, vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].0, "alpha");
        assert!(tenants[0].1.contains("isolate all"));
        assert_eq!(tenants[1].0, "beta");
        assert_eq!(tenants[1].1, "scope B:*\ncheck\n");
    }

    #[test]
    fn multi_lint_body_rejects_malformed_inputs() {
        assert!(parse_multi_lint_body("").unwrap_err().contains("no #tenant"));
        assert!(parse_multi_lint_body("scope A:*\n")
            .unwrap_err()
            .contains("before the first #tenant"));
        assert!(parse_multi_lint_body("#tenant a\ncheck\n#tenant a\ncheck\n")
            .unwrap_err()
            .contains("duplicate tenant"));
        assert!(parse_multi_lint_body("#tenant a\ncheck\n#priority b\n")
            .unwrap_err()
            .contains("unknown tenant"));
        assert!(parse_multi_lint_body("#tenant\ncheck\n")
            .unwrap_err()
            .contains("wants a name"));
        assert!(
            parse_multi_lint_body("#tenant a\n#priority a\n#priority a\ncheck\n")
                .unwrap_err()
                .contains("more than one")
        );
    }
}
