//! The matching HTTP/1.1 client: `jinjing call`, the integration tests
//! and the `figures serve` load generator all speak to the daemon
//! through this one function, so the wire framing assumptions (one
//! request per connection, read to EOF) live in exactly two places —
//! here and in [`crate::http`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status, headers (names lower-cased) and body.
#[derive(Debug)]
pub struct CallResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl CallResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Map this response onto the CLI exit-code table. The daemon stamps
    /// every application-level response with `X-Jinjing-Exit` (0 ok,
    /// 1 error, 3 check-inconsistent / watch-rejected, 4 lint gate);
    /// absent the header, any non-2xx status is a generic failure (1).
    pub fn exit_code(&self) -> i32 {
        if let Some(v) = self.header("x-jinjing-exit") {
            if let Ok(code) = v.parse::<i32>() {
                return code;
            }
        }
        if self.status >= 400 {
            1
        } else {
            0
        }
    }
}

/// Issue one request and read the full response (the server always
/// closes, so EOF delimits it). `timeout` bounds connect, each read and
/// each write individually.
pub fn call(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(String, String)],
    body: &[u8],
    timeout: Duration,
) -> Result<CallResponse, String> {
    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write {addr}: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<CallResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad response header {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(CallResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\nX-Jinjing-Exit: 1\r\n\r\n{\"error\":\"queue full\",\"status\":429}\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert!(r.body_text().contains("queue full"));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn exit_code_prefers_the_header_then_the_status() {
        let with_header = parse_response(b"HTTP/1.1 200 OK\r\nx-jinjing-exit: 3\r\n\r\n").unwrap();
        assert_eq!(with_header.exit_code(), 3);
        let ok = parse_response(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert_eq!(ok.exit_code(), 0);
        let err = parse_response(b"HTTP/1.1 503 Service Unavailable\r\n\r\n").unwrap();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_response(b"junk with no terminator").is_err());
    }
}
