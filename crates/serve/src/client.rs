//! The matching HTTP/1.1 client: `jinjing call`, the shard
//! coordinator, the integration tests and the `figures serve` load
//! generator all speak to the daemon through this module, so the wire
//! framing assumptions live in exactly two places — here and in
//! [`crate::http`].
//!
//! Three entry points:
//! - [`call`] — one-shot: connect, send `Connection: close`, read to
//!   EOF. The historical path; still what `jinjing call` uses for a
//!   single request.
//! - [`Conn`] — a kept-alive connection: requests go out with
//!   `Connection: keep-alive`, responses are framed by
//!   `Content-Length`, and a connection the server dropped between
//!   requests is transparently re-dialed once. One `Conn` per backend
//!   is what lets the coordinator fan out N requests without N×M
//!   connect/teardown round-trips.
//! - [`call_stream`] — one-shot with a chunk callback: de-frames a
//!   `Transfer-Encoding: chunked` response incrementally, invoking the
//!   callback per chunk as it arrives (streamed partial results); the
//!   returned body is the *last* chunk — the canonical document.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status, headers (names lower-cased) and body.
#[derive(Debug)]
pub struct CallResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body bytes.
    pub body: Vec<u8>,
}

impl CallResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) text.
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Map this response onto the CLI exit-code table. The daemon stamps
    /// every application-level response with `X-Jinjing-Exit` (0 ok,
    /// 1 error, 3 check-inconsistent / watch-rejected, 4 lint gate);
    /// absent the header, any non-2xx status is a generic failure (1).
    pub fn exit_code(&self) -> i32 {
        if let Some(v) = self.header("x-jinjing-exit") {
            if let Ok(code) = v.parse::<i32>() {
                return code;
            }
        }
        if self.status >= 400 {
            1
        } else {
            0
        }
    }
}

/// Issue one request and read the full response (the server always
/// closes, so EOF delimits it). `timeout` bounds connect, each read and
/// each write individually.
pub fn call(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(String, String)],
    body: &[u8],
    timeout: Duration,
) -> Result<CallResponse, String> {
    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write {addr}: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {addr}: {e}"))?;
    parse_response(&raw)
}

fn parse_head(head: &str) -> Result<(u16, Vec<(String, String)>), String> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad response header {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((status, headers))
}

fn parse_response(raw: &[u8]) -> Result<CallResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response has no header terminator".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let (status, headers) = parse_head(head)?;
    let raw_body = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        crate::http::dechunk(raw_body)?
    } else {
        raw_body.to_vec()
    };
    Ok(CallResponse {
        status,
        headers,
        body,
    })
}

/// A kept-alive connection to one daemon: the coordinator's fan-out
/// primitive, and what `jinjing call --shards` reuses per backend.
///
/// The connection is dialed lazily on the first request and reused for
/// every subsequent one; responses are framed by `Content-Length`
/// (which the server always emits), so no EOF is needed to delimit
/// them. If the server answered `Connection: close` — or the socket
/// died between requests — the next request transparently re-dials
/// once. Errors on a *fresh* connection are returned to the caller: a
/// backend that is actually down surfaces as an error, never as a
/// silent retry loop.
#[derive(Debug)]
pub struct Conn {
    addr: std::net::SocketAddr,
    display: String,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Conn {
    /// Prepare a connection to `addr` (`host:port`); dialing happens on
    /// the first request.
    pub fn new(addr: &str, timeout: Duration) -> Result<Conn, String> {
        let sock_addr: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| format!("bad address {addr:?}: {e}"))?;
        Ok(Conn {
            addr: sock_addr,
            display: addr.to_string(),
            timeout,
            stream: None,
        })
    }

    /// The address this connection dials.
    pub fn addr(&self) -> &str {
        &self.display
    }

    fn dial(&self) -> Result<TcpStream, String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| format!("connect {}: {e}", self.display))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        Ok(stream)
    }

    /// Issue one request on the kept-alive connection and read its
    /// `Content-Length`-framed response. A send that fails on a *reused*
    /// stream (the server idled it out between requests) is retried once
    /// on a fresh connection; failures on a fresh connection are final.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<CallResponse, String> {
        let reused = self.stream.is_some();
        if self.stream.is_none() {
            self.stream = Some(self.dial()?);
        }
        match self.round_trip(method, path, headers, body) {
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                // The pooled stream was stale; reconnect once.
                self.stream = Some(self.dial()?);
                self.round_trip(method, path, headers, body)
                    .map_err(|e2| format!("{e2} (after stale-connection retry: {e})"))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn round_trip(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(String, String)],
        body: &[u8],
    ) -> Result<CallResponse, String> {
        // Take the stream out: any early return leaves `self.stream`
        // empty (don't reuse a connection in an unknown framing state);
        // only a fully-framed keep-alive response puts it back.
        let mut stream = self.stream.take().expect("dialed in call");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: keep-alive\r\n",
            self.display,
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush())
            .map_err(|e| format!("write {}: {e}", self.display))?;

        // Read the head, then exactly Content-Length body bytes.
        let mut raw: Vec<u8> = Vec::with_capacity(1024);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = stream
                .read(&mut chunk)
                .map_err(|e| format!("read {}: {e}", self.display))?;
            if n == 0 {
                return Err(format!("read {}: connection closed mid-head", self.display));
            }
            raw.extend_from_slice(&chunk[..n]);
        };
        let head_text = std::str::from_utf8(&raw[..head_end])
            .map_err(|_| "response head is not UTF-8".to_string())?;
        let (status, headers) = parse_head(head_text)?;
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| "keep-alive response without Content-Length".to_string())?;
        let mut body_bytes: Vec<u8> = raw[head_end + 4..].to_vec();
        while body_bytes.len() < content_length {
            let n = stream
                .read(&mut chunk)
                .map_err(|e| format!("read {}: {e}", self.display))?;
            if n == 0 {
                return Err(format!("read {}: connection closed mid-body", self.display));
            }
            body_bytes.extend_from_slice(&chunk[..n]);
        }
        if body_bytes.len() > content_length {
            return Err("more body bytes than Content-Length declared".to_string());
        }
        // Honor the server's disposition: `close` means don't reuse.
        let keep = headers
            .iter()
            .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("keep-alive"));
        if keep {
            self.stream = Some(stream);
        }
        Ok(CallResponse {
            status,
            headers,
            body: body_bytes,
        })
    }
}

/// Issue one request and de-frame a chunked response incrementally:
/// `on_chunk` fires per chunk as it arrives off the wire (the streaming
/// protocol sends newline-terminated JSON documents), and the returned
/// response carries the **last** chunk as its body — the canonical
/// document, byte-identical to the unstreamed response. A non-chunked
/// response degrades gracefully: one callback with the whole body.
pub fn call_stream(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(String, String)],
    body: &[u8],
    timeout: Duration,
    on_chunk: &mut dyn FnMut(&[u8]),
) -> Result<CallResponse, String> {
    let sock_addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("write {addr}: {e}"))?;

    // Read the head.
    let mut raw: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read {addr}: {e}"))?;
        if n == 0 {
            return Err(format!("read {addr}: connection closed mid-head"));
        }
        raw.extend_from_slice(&chunk[..n]);
    };
    let head_text = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let (status, resp_headers) = parse_head(head_text)?;
    let chunked = resp_headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut buf: Vec<u8> = raw[head_end + 4..].to_vec();
    if !chunked {
        // Plain response: read to EOF, one callback, done.
        stream
            .read_to_end(&mut buf)
            .map_err(|e| format!("read {addr}: {e}"))?;
        on_chunk(&buf);
        return Ok(CallResponse {
            status,
            headers: resp_headers,
            body: buf,
        });
    }
    // Incremental de-chunking: deliver each chunk as soon as its bytes
    // are complete; remember the last one as the canonical body.
    let mut last: Vec<u8> = Vec::new();
    loop {
        // Ensure a full size line.
        let line_end = loop {
            if let Some(pos) = buf.windows(2).position(|w| w == b"\r\n") {
                break pos;
            }
            let n = stream.read(&mut chunk).map_err(|e| format!("read {addr}: {e}"))?;
            if n == 0 {
                return Err(format!("read {addr}: stream ended mid-chunk-size"));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let size_line = std::str::from_utf8(&buf[..line_end])
            .map_err(|_| "chunk size line is not UTF-8".to_string())?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        buf.drain(..line_end + 2);
        if size == 0 {
            break;
        }
        while buf.len() < size + 2 {
            let n = stream.read(&mut chunk).map_err(|e| format!("read {addr}: {e}"))?;
            if n == 0 {
                return Err(format!("read {addr}: stream ended mid-chunk"));
            }
            buf.extend_from_slice(&chunk[..n]);
        }
        if &buf[size..size + 2] != b"\r\n" {
            return Err("chunk not CRLF-terminated".to_string());
        }
        last = buf[..size].to_vec();
        on_chunk(&last);
        buf.drain(..size + 2);
    }
    Ok(CallResponse {
        status,
        headers: resp_headers,
        body: last,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\nX-Jinjing-Exit: 1\r\n\r\n{\"error\":\"queue full\",\"status\":429}\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert!(r.body_text().contains("queue full"));
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn exit_code_prefers_the_header_then_the_status() {
        let with_header = parse_response(b"HTTP/1.1 200 OK\r\nx-jinjing-exit: 3\r\n\r\n").unwrap();
        assert_eq!(with_header.exit_code(), 3);
        let ok = parse_response(b"HTTP/1.1 200 OK\r\n\r\n").unwrap();
        assert_eq!(ok.exit_code(), 0);
        let err = parse_response(b"HTTP/1.1 503 Service Unavailable\r\n\r\n").unwrap();
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_response(b"").is_err());
        assert!(parse_response(b"HTTP/1.1\r\n\r\n").is_err());
        assert!(parse_response(b"junk with no terminator").is_err());
    }

    #[test]
    fn parse_response_dechunks_transfer_encoding() {
        let raw = b"HTTP/1.1 200 OK\r\ntransfer-encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body_text(), "hello world");
    }

    #[test]
    fn conn_reuses_one_connection_across_requests() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // A tiny keep-alive server: one accepted connection, two
        // responses, then EOF.
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut served = 0u32;
            let mut buf = [0u8; 4096];
            let mut pending: Vec<u8> = Vec::new();
            while served < 2 {
                let n = s.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                pending.extend_from_slice(&buf[..n]);
                // Requests here are bodyless; one head per request.
                while pending.windows(4).any(|w| w == b"\r\n\r\n") {
                    let pos = pending.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
                    pending.drain(..pos + 4);
                    served += 1;
                    let body = format!("{{\"n\":{served}}}\n");
                    let head = format!(
                        "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
                        body.len()
                    );
                    s.write_all(head.as_bytes()).unwrap();
                    s.write_all(body.as_bytes()).unwrap();
                }
            }
            served
        });
        let mut conn = Conn::new(&addr, Duration::from_secs(5)).unwrap();
        let r1 = conn.call("POST", "/v1/x", &[], b"").unwrap();
        assert_eq!(r1.body_text(), "{\"n\":1}\n");
        let r2 = conn.call("POST", "/v1/x", &[], b"").unwrap();
        assert_eq!(r2.body_text(), "{\"n\":2}\n");
        drop(conn);
        // Both requests were served on the single accepted connection.
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn conn_redials_once_when_the_server_closed_between_requests() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: claim keep-alive, then close anyway.
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let mut pending: Vec<u8> = Vec::new();
                loop {
                    let n = s.read(&mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    pending.extend_from_slice(&buf[..n]);
                    if pending.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                s.write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 3\r\nconnection: keep-alive\r\n\r\n{}\n",
                )
                .unwrap();
                // Dropping s closes the connection despite keep-alive.
            }
        });
        let mut conn = Conn::new(&addr, Duration::from_secs(5)).unwrap();
        assert_eq!(conn.call("POST", "/v1/x", &[], b"").unwrap().status, 200);
        // The pooled stream is now dead; the retry path re-dials.
        assert_eq!(conn.call("POST", "/v1/x", &[], b"").unwrap().status, 200);
        server.join().unwrap();
    }

    #[test]
    fn conn_surfaces_a_down_backend_as_an_error() {
        // Nothing listens on this address (bound then dropped).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut conn = Conn::new(&addr, Duration::from_millis(500)).unwrap();
        let err = conn.call("POST", "/v1/x", &[], b"").unwrap_err();
        assert!(err.contains("connect"), "{err}");
        assert!(Conn::new("not-an-addr", Duration::from_secs(1)).is_err());
    }
}
