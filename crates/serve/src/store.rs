//! An LRU-capped store for server-resident state (the daemon's check
//! sessions), generic so the eviction policy is unit-testable without
//! dragging a solver in.
//!
//! Shape: ids are minted by the store (`s1`, `s2`, …) and values are
//! handed out as `Arc<Mutex<T>>`, so the store's own lock (held by the
//! server around every map operation) is never held across a potentially
//! long-running use of the value — two requests touching *different*
//! sessions proceed in parallel, while two deltas racing for the *same*
//! session serialize on the value's mutex, which is exactly the
//! sequential-consistency story a session needs.
//!
//! Capacity is a hard bound on resident values. Inserting past it evicts
//! the least-recently-*used* entry (any successful `get` refreshes
//! recency) and reports the evicted id so the server can count it
//! (`serve.sessions_evicted`) — a client whose session disappears gets a
//! clean 404, not an OOM'd daemon.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An insertion receipt: the new value's id, plus the id of whatever got
/// evicted to make room (if anything).
#[derive(Debug)]
pub struct Inserted {
    /// The id minted for the inserted value (`s<N>`).
    pub id: String,
    /// The LRU entry displaced by this insert, if the store was full.
    pub evicted: Option<String>,
}

/// A least-recently-used store with server-minted string ids. See the
/// module docs for the locking discipline.
#[derive(Debug)]
pub struct Lru<T> {
    cap: usize,
    next_id: u64,
    /// Recency order, least-recent first. Linear scans are fine: the cap
    /// is small (a daemon holds tens of sessions, not millions).
    order: Vec<String>,
    map: HashMap<String, Arc<Mutex<T>>>,
    evicted: u64,
}

impl<T> Lru<T> {
    /// An empty store holding at most `cap` values (minimum 1).
    pub fn new(cap: usize) -> Lru<T> {
        Lru {
            cap: cap.max(1),
            next_id: 0,
            order: Vec::new(),
            map: HashMap::new(),
            evicted: 0,
        }
    }

    /// Insert a value, evicting the LRU entry when full. The new value is
    /// most-recent.
    pub fn insert(&mut self, value: T) -> Inserted {
        let evicted = if self.map.len() >= self.cap {
            let victim = self.order.remove(0);
            self.map.remove(&victim);
            self.evicted += 1;
            Some(victim)
        } else {
            None
        };
        self.next_id += 1;
        let id = format!("s{}", self.next_id);
        self.order.push(id.clone());
        self.map.insert(id.clone(), Arc::new(Mutex::new(value)));
        Inserted { id, evicted }
    }

    /// Look up a value and refresh its recency. `None` for unknown (or
    /// already-evicted) ids.
    pub fn get(&mut self, id: &str) -> Option<Arc<Mutex<T>>> {
        let value = self.map.get(id)?.clone();
        if let Some(pos) = self.order.iter().position(|x| x == id) {
            let touched = self.order.remove(pos);
            self.order.push(touched);
        }
        Some(value)
    }

    /// Drop a value by id; `true` if it was present. A request still
    /// holding the `Arc` keeps the value alive until it finishes.
    pub fn remove(&mut self, id: &str) -> bool {
        if self.map.remove(id).is_some() {
            self.order.retain(|x| x != id);
            true
        } else {
            false
        }
    }

    /// Resident values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total evictions since the store was created (monotone).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// A bounded FIFO store for captured flight-recorder traces, keyed by
/// the request's *deterministic* trace id (so the same query re-traced
/// replaces its old capture instead of duplicating it). Unlike [`Lru`],
/// ids come from the caller — they are part of the serve API
/// (`GET /v1/trace/{id}`) and must be predictable from the request body.
#[derive(Debug)]
pub struct TraceStore {
    cap: usize,
    /// Insertion order, oldest first; values are rendered Chrome JSON.
    entries: Vec<(String, String)>,
    evicted: u64,
}

impl TraceStore {
    /// An empty store holding at most `cap` traces (minimum 1).
    pub fn new(cap: usize) -> TraceStore {
        TraceStore {
            cap: cap.max(1),
            entries: Vec::new(),
            evicted: 0,
        }
    }

    /// Insert (or replace) a trace body under a caller-chosen id,
    /// evicting the oldest capture when the store is full. Replacement
    /// refreshes insertion order — the re-traced request is the newest.
    pub fn insert(&mut self, id: &str, body: String) {
        self.entries.retain(|(k, _)| k != id);
        self.entries.push((id.to_string(), body));
        while self.entries.len() > self.cap {
            self.entries.remove(0);
            self.evicted += 1;
        }
    }

    /// Look up a trace body; capture order is unaffected.
    pub fn get(&self, id: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == id)
            .map(|(_, v)| v.as_str())
    }

    /// Resident traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total captures displaced by newer ones (monotone).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_store_is_fifo_bounded_and_keyed() {
        let mut ts = TraceStore::new(2);
        ts.insert("ta", "{a}".to_string());
        ts.insert("tb", "{b}".to_string());
        assert_eq!(ts.get("ta"), Some("{a}"));
        // Same id replaces in place (deterministic ids recur) and
        // refreshes order, so "tb" is now the oldest…
        ts.insert("ta", "{a2}".to_string());
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.get("ta"), Some("{a2}"));
        // …and a third distinct id evicts it.
        ts.insert("tc", "{c}".to_string());
        assert_eq!(ts.get("tb"), None);
        assert_eq!(ts.get("ta"), Some("{a2}"));
        assert_eq!(ts.get("tc"), Some("{c}"));
        assert_eq!(ts.evicted(), 1);
        assert!(!ts.is_empty());
    }

    #[test]
    fn trace_store_capacity_clamps_to_one() {
        let mut ts = TraceStore::new(0);
        ts.insert("ta", "{a}".to_string());
        ts.insert("tb", "{b}".to_string());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.get("ta"), None);
        assert_eq!(ts.get("tb"), Some("{b}"));
    }

    #[test]
    fn mints_sequential_ids() {
        let mut lru: Lru<u32> = Lru::new(4);
        assert_eq!(lru.insert(10).id, "s1");
        assert_eq!(lru.insert(20).id, "s2");
        assert_eq!(lru.len(), 2);
        assert!(!lru.is_empty());
        assert_eq!(*lru.get("s1").unwrap().lock().unwrap(), 10);
        assert!(lru.get("s99").is_none());
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut lru: Lru<u32> = Lru::new(2);
        lru.insert(1); // s1
        lru.insert(2); // s2
                       // Touch s1 so s2 becomes the LRU victim.
        lru.get("s1").unwrap();
        let r = lru.insert(3); // s3 evicts s2
        assert_eq!(r.id, "s3");
        assert_eq!(r.evicted.as_deref(), Some("s2"));
        assert!(lru.get("s2").is_none());
        assert!(lru.get("s1").is_some(), "recently-used survives");
        assert_eq!(lru.evicted(), 1);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn remove_is_idempotent_and_ids_never_recycle() {
        let mut lru: Lru<u32> = Lru::new(2);
        lru.insert(1); // s1
        assert!(lru.remove("s1"));
        assert!(!lru.remove("s1"), "second remove is a no-op");
        assert!(lru.is_empty());
        // A fresh insert after a remove gets a *new* id — a stale client
        // holding "s1" must see 404, never someone else's session.
        assert_eq!(lru.insert(2).id, "s2");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut lru: Lru<u32> = Lru::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1); // s1
        let r = lru.insert(2); // evicts s1
        assert_eq!(r.evicted.as_deref(), Some("s1"));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn values_outlive_eviction_while_referenced() {
        let mut lru: Lru<String> = Lru::new(1);
        lru.insert("held".to_string());
        let held = lru.get("s1").unwrap();
        lru.insert("new".to_string()); // evicts s1 from the *map*
        assert!(lru.get("s1").is_none());
        // …but the in-flight reference still works.
        assert_eq!(*held.lock().unwrap(), "held");
    }
}
