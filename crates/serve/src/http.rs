//! A deliberately small HTTP/1.1 wire layer over `std::io`.
//!
//! The daemon speaks exactly the subset its clients need:
//! `Content-Length` bodies, opt-in keep-alive (a request carrying
//! `Connection: keep-alive` may be answered with the connection held
//! open — see [`Response::write_with`]), and opt-in chunked responses
//! for streamed partial results ([`ChunkedWriter`]); no TLS. That
//! subset is parsed defensively — the two resource limits a hostile or
//! buggy client could lean on are enforced *here*, before any engine
//! work happens:
//!
//! * the header section is capped at [`MAX_HEAD_BYTES`] (→ 400), and
//! * the declared body is capped at the server's `max_body` (→ 413 with
//!   the body left unread — the connection is closing anyway).
//!
//! Error payloads are canonical JSON (`{"error":…,"status":…}` through
//! [`jinjing_obs::json::JsonWriter`], sorted keys, trailing newline) so a
//! scripted client can parse failures the same way it parses successes.

use std::io::{Read, Write};
use std::net::TcpStream;

use jinjing_obs::json::JsonWriter;

/// Upper bound on the request line + headers, in bytes. Generous for any
/// legitimate client (ours send a handful of short headers) and small
/// enough that a garbage stream cannot balloon memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Why a request could not be read. The variants map onto the response
/// the server sends before closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically broken request (→ 400). The message is safe to echo
    /// back in the error body.
    Malformed(String),
    /// The declared body (or the header section) exceeds a limit (→ 413).
    TooLarge(String),
    /// The socket died or timed out mid-read; there is nobody left to
    /// answer, so the connection is simply dropped.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request: method, path, headers (original order, names
/// lower-cased) and the raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / `DELETE` (upper-case, as sent).
    pub method: String,
    /// The request target, e.g. `/v1/check`. Query strings are not split
    /// off — the daemon's API doesn't use them.
    pub path: String,
    /// Header name/value pairs; names are lower-cased at parse time.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names were lower-cased at parse).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, or a 400-shaped error.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("request body is not valid UTF-8".into()))
    }

    /// Did the client ask to reuse this connection (`Connection:
    /// keep-alive`)? The daemon defaults to close-per-request; only an
    /// explicit opt-in pins a worker to the connection.
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

/// Read one request from the stream, enforcing the head and body caps.
///
/// Blocks until the full head + declared body arrive (bounded by the
/// stream's read timeout, which the server sets before calling this).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line. One-byte reads would be wasteful;
    // read in chunks and keep whatever spills past the head as the start
    // of the body.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "header section exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Peer connected and went away: not worth an error body.
                return Err(HttpError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "closed before any bytes",
                )));
            }
            return Err(HttpError::Malformed("connection closed mid-header".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("header section is not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    if !path.starts_with('/') {
        return Err(HttpError::Malformed(format!("bad request target {path:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }

    // Body: whatever spilled past the head, then read the remainder.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length declared".into(),
        ));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(HttpError::Malformed(
                "more body bytes than Content-Length declared".into(),
            ));
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for a status code.
pub fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response, ready to serialize. By default every response closes
/// the connection (`Connection: close`), which is what lets one-shot
/// clients read to EOF instead of implementing framing; a keep-alive
/// server answers with [`Response::write_with`] instead, and the client
/// frames by `Content-Length` (always emitted).
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the standard set (e.g. `Retry-After`,
    /// `X-Jinjing-Exit`). Content-Length/Type and Connection are emitted
    /// automatically.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` for the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response (the daemon's default shape).
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "application/json",
        }
    }

    /// A plain-text response (`/metrics`' Prometheus exposition).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into_bytes(),
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// The canonical error shape: `{"error":…,"status":…}` plus an
    /// `X-Jinjing-Exit: 1` so `jinjing call` maps it without guessing.
    pub fn error(status: u16, message: &str) -> Response {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("error");
        w.string(message);
        w.key("status");
        w.u64(u64::from(status));
        w.end_object();
        let mut body = w.finish();
        body.push('\n');
        Response::json(status, body).with_header("X-Jinjing-Exit", "1")
    }

    /// Attach an extra header (builder-style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        reason_of(self.status)
    }

    /// Serialize onto the stream, closing the connection. Write errors
    /// are returned so the caller can count them, but there is nothing
    /// else to do — the peer is gone.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        self.write_with(stream, false)
    }

    /// Serialize onto the stream, advertising whether the server will
    /// keep the connection open (`Connection: keep-alive`) or close it.
    /// `Content-Length` is always emitted, so a keep-alive client frames
    /// the body exactly.
    pub fn write_with(&self, stream: &mut TcpStream, keep_alive: bool) -> std::io::Result<()> {
        let conn = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {conn}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A `Transfer-Encoding: chunked` response in flight — the streaming
/// half of the wire layer. [`ChunkedWriter::begin`] writes the head (no
/// `Content-Length`; the connection always closes when the stream
/// ends), then each [`ChunkedWriter::chunk`] flushes one length-framed
/// chunk to the peer immediately — which is what lets a coordinator
/// surface per-shard progress while the slow shards are still solving —
/// and [`ChunkedWriter::finish`] terminates the stream (`0\r\n\r\n`).
///
/// Protocol note: the streamed payload is a sequence of
/// newline-terminated JSON documents, the *last* of which is the
/// canonical response body (byte-identical to the unstreamed response).
/// Streaming responses carry no `X-Jinjing-Exit` header — the head goes
/// out before the outcome is known.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the streaming head and return the chunk writer.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        headers: &[(String, String)],
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: close\r\n",
            status,
            reason_of(status),
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Write one chunk and flush it to the peer. Empty data is skipped —
    /// a zero-length chunk would terminate the stream.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        self.stream
            .write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Decode a `Transfer-Encoding: chunked` body into the concatenated
/// payload bytes, validating the length-framing. Trailers are not
/// supported (nothing in this codebase sends them).
pub fn dechunk(raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut rest = raw;
    loop {
        let line_end = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or_else(|| "chunked body: missing size line".to_string())?;
        let size_line = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| "chunked body: size line is not UTF-8".to_string())?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("chunked body: bad chunk size {size_line:?}"))?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if rest.len() < size + 2 {
            return Err("chunked body: truncated chunk".to_string());
        }
        out.extend_from_slice(&rest[..size]);
        if &rest[size..size + 2] != b"\r\n" {
            return Err("chunked body: chunk not CRLF-terminated".to_string());
        }
        rest = &rest[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip helper: write `raw` into a loopback socket, parse it on
    /// the accept side.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/check HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_raw(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/check");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "lookup is case-insensitive");
        assert_eq!(req.body_text().unwrap(), "hello");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw = b"POST /v1/check HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match parse_raw(raw, 16) {
            Err(HttpError::TooLarge(msg)) => assert!(msg.contains("999999"), "{msg}"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_request_lines() {
        for raw in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET missing-slash HTTP/1.1\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nbroken header line\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
        ] {
            match parse_raw(raw, 1024) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("{raw:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_bodies_are_canonical_json() {
        let r = Response::error(429, "queue full");
        let body = String::from_utf8(r.body.clone()).unwrap();
        assert_eq!(body, "{\"error\":\"queue full\",\"status\":429}\n");
        assert_eq!(r.reason(), "Too Many Requests");
        assert!(r
            .headers
            .iter()
            .any(|(n, v)| n == "X-Jinjing-Exit" && v == "1"));
    }

    #[test]
    fn keep_alive_is_an_explicit_opt_in() {
        let raw = b"POST /v1/check HTTP/1.1\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n";
        assert!(parse_raw(raw, 1024).unwrap().wants_keep_alive());
        let raw = b"POST /v1/check HTTP/1.1\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
        assert!(!parse_raw(raw, 1024).unwrap().wants_keep_alive());
        let raw = b"POST /v1/check HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        assert!(!parse_raw(raw, 1024).unwrap().wants_keep_alive());
    }

    #[test]
    fn write_with_advertises_the_connection_disposition() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(200, "{}\n".into())
            .write_with(&mut stream, true)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("content-length: 3\r\n"), "{text}");
    }

    #[test]
    fn chunked_responses_round_trip_through_dechunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            buf
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut w = ChunkedWriter::begin(&mut stream, 200, "application/json", &[]).unwrap();
        w.chunk(b"{\"progress\":1}\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, not a terminator
        w.chunk(b"{\"done\":true}\n").unwrap();
        w.finish().unwrap();
        drop(stream);
        let raw = reader.join().unwrap();
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        let head = std::str::from_utf8(&raw[..head_end]).unwrap();
        assert!(head.contains("transfer-encoding: chunked"), "{head}");
        assert!(!head.contains("content-length"), "{head}");
        let body = dechunk(&raw[head_end + 4..]).unwrap();
        assert_eq!(body, b"{\"progress\":1}\n{\"done\":true}\n");
    }

    #[test]
    fn dechunk_rejects_malformed_framing() {
        assert!(dechunk(b"").unwrap_err().contains("missing size line"));
        assert!(dechunk(b"zz\r\n").unwrap_err().contains("bad chunk size"));
        assert!(dechunk(b"5\r\nab").unwrap_err().contains("truncated"));
        assert!(dechunk(b"2\r\nabXX0\r\n\r\n")
            .unwrap_err()
            .contains("not CRLF-terminated"));
        assert_eq!(dechunk(b"0\r\n\r\n").unwrap(), b"");
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        // Serialize through a real socket pair and sanity-check the bytes.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(200, "{\"ok\":true}\n".into())
            .with_header("Retry-After", "1")
            .write_to(&mut stream)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 12\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}\n"), "{text}");
    }
}
