//! Bit-blasting of the 104-bit packet header.
//!
//! [`HeaderVars`] allocates one solver variable per header bit (MSB-first
//! within each field) and provides circuits for the predicates ACL rules
//! need: prefix matches, value equality, unsigned range comparisons, full
//! [`MatchSpec`] matches, and membership in a [`PacketSet`]. After a `Sat`
//! answer the assignment decodes back into a concrete [`Packet`] — the
//! counterexample `h` the fix primitive starts from.

use crate::circuit::CircuitBuilder;
use crate::lit::Lit;
use jinjing_acl::set::PacketSet;
use jinjing_acl::{Field, MatchSpec, Packet};

/// One packet worth of header bits inside a solver.
#[derive(Debug, Clone)]
pub struct HeaderVars {
    /// `bits[field.index()]` = MSB-first literals for that field.
    bits: [Vec<Lit>; 5],
}

impl HeaderVars {
    /// Allocate fresh variables for every header bit.
    pub fn new(c: &mut CircuitBuilder) -> HeaderVars {
        let mut bits: [Vec<Lit>; 5] = Default::default();
        for f in Field::ALL {
            bits[f.index()] = (0..f.width()).map(|_| c.input()).collect();
        }
        HeaderVars { bits }
    }

    /// The MSB-first bit literals of one field.
    pub fn field_bits(&self, f: Field) -> &[Lit] {
        &self.bits[f.index()]
    }

    /// Circuit: field equals the constant `value`.
    pub fn field_eq(&self, c: &mut CircuitBuilder, f: Field, value: u64) -> Lit {
        let w = f.width();
        let lits: Vec<Lit> = (0..w)
            .map(|i| {
                let bit = (value >> (w - 1 - i)) & 1 == 1;
                let l = self.bits[f.index()][i as usize];
                if bit {
                    l
                } else {
                    !l
                }
            })
            .collect();
        c.and(&lits)
    }

    /// Circuit: the top `len` bits of the field equal those of `value`
    /// (an IP-prefix match; `len == 0` is `true`).
    pub fn field_prefix(&self, c: &mut CircuitBuilder, f: Field, value: u64, len: u32) -> Lit {
        let w = f.width();
        assert!(len <= w);
        let lits: Vec<Lit> = (0..len)
            .map(|i| {
                let bit = (value >> (w - 1 - i)) & 1 == 1;
                let l = self.bits[f.index()][i as usize];
                if bit {
                    l
                } else {
                    !l
                }
            })
            .collect();
        c.and(&lits)
    }

    /// Circuit: unsigned `field <= k`.
    ///
    /// Built LSB→MSB with the comparator recurrence
    /// `acc' = if k_i { ¬x_i ∨ acc } else { ¬x_i ∧ acc }`.
    pub fn field_leq(&self, c: &mut CircuitBuilder, f: Field, k: u64) -> Lit {
        if k >= f.max_value() {
            return c.t();
        }
        let w = f.width();
        let mut acc = c.t();
        for i in (0..w).rev() {
            // i counts from MSB=0; process LSB first.
            let bit_pos = i as usize;
            let k_bit = (k >> (w - 1 - i)) & 1 == 1;
            let x = self.bits[f.index()][bit_pos];
            acc = if k_bit {
                c.or(&[!x, acc])
            } else {
                c.and(&[!x, acc])
            };
        }
        acc
    }

    /// Circuit: unsigned `field >= k`.
    pub fn field_geq(&self, c: &mut CircuitBuilder, f: Field, k: u64) -> Lit {
        if k == 0 {
            return c.t();
        }
        let w = f.width();
        let mut acc = c.t();
        for i in (0..w).rev() {
            let bit_pos = i as usize;
            let k_bit = (k >> (w - 1 - i)) & 1 == 1;
            let x = self.bits[f.index()][bit_pos];
            acc = if k_bit {
                c.and(&[x, acc])
            } else {
                c.or(&[x, acc])
            };
        }
        acc
    }

    /// Circuit: `lo <= field <= hi`.
    pub fn field_range(&self, c: &mut CircuitBuilder, f: Field, lo: u64, hi: u64) -> Lit {
        let ge = self.field_geq(c, f, lo);
        let le = self.field_leq(c, f, hi);
        c.and(&[ge, le])
    }

    /// Circuit: the packet matches an ACL rule's [`MatchSpec`] — the `m_j(h)`
    /// predicate of the paper.
    pub fn matches(&self, c: &mut CircuitBuilder, m: &MatchSpec) -> Lit {
        let mut parts = Vec::with_capacity(5);
        if !m.src.is_any() {
            parts.push(self.field_prefix(c, Field::SrcIp, m.src.addr() as u64, m.src.len()));
        }
        if !m.dst.is_any() {
            parts.push(self.field_prefix(c, Field::DstIp, m.dst.addr() as u64, m.dst.len()));
        }
        if !m.sport.is_any() {
            parts.push(self.field_range(
                c,
                Field::SrcPort,
                m.sport.lo() as u64,
                m.sport.hi() as u64,
            ));
        }
        if !m.dport.is_any() {
            parts.push(self.field_range(
                c,
                Field::DstPort,
                m.dport.lo() as u64,
                m.dport.hi() as u64,
            ));
        }
        if let Some(p) = m.proto {
            parts.push(self.field_eq(c, Field::Proto, p.number() as u64));
        }
        c.and(&parts)
    }

    /// Circuit: the packet lies in `set` (disjunction over its cubes, each
    /// cube a conjunction of per-field ranges). This is the `ψ` predicate
    /// used to pin the solver inside one equivalence class in Eq. 3.
    pub fn in_set(&self, c: &mut CircuitBuilder, set: &PacketSet) -> Lit {
        let mut cubes = Vec::with_capacity(set.cubes().len());
        for cube in set.cubes() {
            let mut fields = Vec::with_capacity(5);
            for f in Field::ALL {
                let iv = cube.get(f);
                if iv.is_full(f) {
                    continue;
                }
                fields.push(self.field_range(c, f, iv.lo(), iv.hi()));
            }
            cubes.push(c.and(&fields));
        }
        c.or(&cubes)
    }

    /// Decode the model of the last `Sat` answer into a packet.
    pub fn decode(&self, c: &CircuitBuilder) -> Packet {
        let mut p = Packet::new(0, 0, 0, 0, 0);
        for f in Field::ALL {
            let w = f.width();
            let mut v: u64 = 0;
            for i in 0..w as usize {
                v = (v << 1) | (c.model_value(self.bits[f.index()][i]) as u64);
            }
            debug_assert!(v <= f.max_value());
            p.set_field(f, v);
        }
        p
    }

    /// Assert that the header equals a concrete packet (useful in tests and
    /// for per-packet queries).
    pub fn assert_packet(&self, c: &mut CircuitBuilder, p: &Packet) {
        for f in Field::ALL {
            let eq = self.field_eq(c, f, p.field(f));
            c.assert(eq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::SolveResult;
    use jinjing_acl::parse::parse_rule;
    use jinjing_acl::{Cube, Interval};

    /// Check a predicate circuit against its concrete semantics for a
    /// specific packet.
    fn agree_on(
        build: impl Fn(&mut CircuitBuilder, &HeaderVars) -> Lit,
        concrete: impl Fn(&Packet) -> bool,
        packets: &[Packet],
    ) {
        for p in packets {
            let mut c = CircuitBuilder::new();
            let h = HeaderVars::new(&mut c);
            let g = build(&mut c, &h);
            h.assert_packet(&mut c, p);
            assert_eq!(c.solve(), SolveResult::Sat);
            assert_eq!(c.model_value(g), concrete(p), "packet {p}");
        }
    }

    fn probe_packets() -> Vec<Packet> {
        vec![
            Packet::new(0, 0, 0, 0, 0),
            Packet::new(u32::MAX, u32::MAX, u16::MAX, u16::MAX, u8::MAX),
            Packet::new(0x0a00_0001, 0x0102_0304, 1024, 80, 6),
            Packet::new(0x0aff_ffff, 0x01ff_ffff, 1023, 81, 17),
            Packet::new(0x0b00_0000, 0x0200_0000, 5353, 443, 1),
        ]
    }

    #[test]
    fn prefix_circuit_matches_semantics() {
        agree_on(
            |c, h| h.field_prefix(c, Field::DstIp, 0x0100_0000, 8),
            |p| (p.dip >> 24) == 1,
            &probe_packets(),
        );
    }

    #[test]
    fn range_circuit_matches_semantics() {
        agree_on(
            |c, h| h.field_range(c, Field::DstPort, 80, 443),
            |p| (80..=443).contains(&p.dport),
            &probe_packets(),
        );
        // Exhaustive small-range check on the 8-bit proto field.
        for lo in [0u64, 5, 200] {
            for hi in [lo, lo + 7, 255] {
                for v in [0u8, 4, 5, 6, 12, 199, 200, 207, 208, 255] {
                    let p = Packet::new(0, 0, 0, 0, v);
                    agree_on(
                        |c, h| h.field_range(c, Field::Proto, lo, hi),
                        |p| (p.proto as u64) >= lo && (p.proto as u64) <= hi,
                        &[p],
                    );
                }
            }
        }
    }

    #[test]
    fn eq_circuit_matches_semantics() {
        agree_on(
            |c, h| h.field_eq(c, Field::Proto, 6),
            |p| p.proto == 6,
            &probe_packets(),
        );
    }

    #[test]
    fn matchspec_circuit_matches_semantics() {
        let rule =
            parse_rule("permit src 10.0.0.0/8 dst 1.0.0.0/8 sport 1024-65535 dport 80 proto tcp")
                .unwrap();
        agree_on(
            |c, h| h.matches(c, &rule.matches),
            |p| rule.matches.matches(p),
            &probe_packets(),
        );
    }

    #[test]
    fn in_set_circuit_matches_semantics() {
        let set = PacketSet::from_cubes(vec![
            Cube::full().with(Field::DstIp, Interval::new(0x0100_0000, 0x01ff_ffff)),
            Cube::full()
                .with(Field::DstPort, Interval::new(53, 53))
                .with(Field::Proto, Interval::new(17, 17)),
        ]);
        agree_on(
            |c, h| h.in_set(c, &set),
            |p| set.contains(p),
            &probe_packets(),
        );
        // Empty set is the constant false.
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let g = h.in_set(&mut c, &PacketSet::empty());
        assert_eq!(g, c.f());
    }

    #[test]
    fn decode_finds_member_of_constrained_set() {
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let rule = parse_rule("deny dst 6.0.0.0/8 dport 400-500").unwrap();
        let m = h.matches(&mut c, &rule.matches);
        c.assert(m);
        assert_eq!(c.solve(), SolveResult::Sat);
        let p = h.decode(&c);
        assert!(rule.matches.matches(&p), "decoded {p} should match");
    }

    #[test]
    fn solver_proves_prefix_range_equivalence() {
        // dst ∈ 1.0.0.0/8 ⇔ 0x01000000 <= dst <= 0x01ffffff; negation unsat.
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let a = h.field_prefix(&mut c, Field::DstIp, 0x0100_0000, 8);
        let b = h.field_range(&mut c, Field::DstIp, 0x0100_0000, 0x01ff_ffff);
        let eq = c.iff(a, b);
        c.assert(!eq);
        assert_eq!(c.solve(), SolveResult::Unsat);
    }

    #[test]
    fn full_and_empty_bounds_fold_to_constants() {
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let all = h.field_leq(&mut c, Field::SrcPort, u16::MAX as u64);
        assert_eq!(all, c.t());
        let all2 = h.field_geq(&mut c, Field::SrcPort, 0);
        assert_eq!(all2, c.t());
    }
}
