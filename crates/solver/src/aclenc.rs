//! ACL decision-model encodings.
//!
//! Two circuit encodings of `f_ξ(h)` — the boolean "does ACL `L` permit
//! packet `h`" function:
//!
//! - [`encode_sequential`]: the direct first-match chain
//!   `ite(m_1, a_1, ite(m_2, a_2, …, default))`. Faithful to rule priority
//!   but gives the solver an O(n)-deep dependency spine.
//! - [`encode_tree`]: the paper's §4.1 "ACL decision model optimization".
//!   Each rule becomes a `(hit, decision)` pair and pairs combine as in a
//!   tournament: `hit = hit_l ∨ hit_r`, `dec = ite(hit_l, dec_l, dec_r)`.
//!   The balanced reduction keeps the circuit O(log n) deep, trading DPLL
//!   search depth for width exactly as §9 describes.
//!
//! Both encodings are proven equivalent by the property tests below and by
//! the solver itself (`tree ⇎ sequential` is unsat).

use crate::circuit::CircuitBuilder;
use crate::header::HeaderVars;
use crate::lit::Lit;
use jinjing_acl::{Acl, Field};

/// Which decision-model encoding to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// Sequential first-match chain (the "prior decision model" of §4.1).
    Sequential,
    /// Balanced tournament tree (the paper's optimization; default).
    #[default]
    Tree,
}

/// Encode with the chosen strategy.
pub fn encode(c: &mut CircuitBuilder, h: &HeaderVars, acl: &Acl, enc: Encoding) -> Lit {
    match enc {
        Encoding::Sequential => encode_sequential(c, h, acl),
        Encoding::Tree => encode_tree(c, h, acl),
    }
}

/// Sequential encoding: fold the rule list from the bottom up into an
/// if-then-else chain.
pub fn encode_sequential(c: &mut CircuitBuilder, h: &HeaderVars, acl: &Acl) -> Lit {
    let mut dec = if acl.default_action().permits() {
        c.t()
    } else {
        c.f()
    };
    for rule in acl.rules().iter().rev() {
        let m = h.matches(c, &rule.matches);
        let action = if rule.action.permits() { c.t() } else { c.f() };
        dec = c.ite(m, action, dec);
    }
    dec
}

/// Tree encoding: combine `(hit, decision)` leaves in a balanced binary
/// tree, then fall back to the default action when nothing hit.
pub fn encode_tree(c: &mut CircuitBuilder, h: &HeaderVars, acl: &Acl) -> Lit {
    let default = if acl.default_action().permits() {
        c.t()
    } else {
        c.f()
    };
    if acl.rules().is_empty() {
        return default;
    }
    // Leaves, in priority order.
    let mut layer: Vec<(Lit, Lit)> = acl
        .rules()
        .iter()
        .map(|r| {
            let hit = h.matches(c, &r.matches);
            let dec = if r.action.permits() { c.t() } else { c.f() };
            (hit, dec)
        })
        .collect();
    // Balanced pairwise reduction. Combining (l, r) where l has priority:
    // the combined node hits if either hits and decides by the leftmost hit.
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut it = layer.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => {
                    let hit = c.or(&[left.0, right.0]);
                    let dec = c.ite(left.0, left.1, right.1);
                    next.push((hit, dec));
                }
                None => next.push(left),
            }
        }
        layer = next;
    }
    let (hit, dec) = layer[0];
    c.ite(hit, dec, default)
}

/// A cheap, stable, order-sensitive fingerprint of an ACL's decision
/// model, for use as a (pre)key in cross-query encoding caches.
///
/// FNV-1a over the default action and every rule's `(action, match cube)`
/// in priority order. Two ACLs that encode to the same circuit (identical
/// rule list + default) always get the same fingerprint; the converse is
/// only probabilistic, which is why cache keys must *also* store the full
/// ACLs and compare them on lookup (see `jinjing-core::qcache`). Stable
/// across processes (no `DefaultHasher` seed), so fingerprints are safe to
/// surface in logs and bench output.
#[must_use]
pub fn acl_fingerprint(acl: &Acl) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(u64::from(acl.default_action().permits()));
    mix(acl.rules().len() as u64);
    for rule in acl.rules() {
        mix(u64::from(rule.action.permits()));
        let cube = rule.matches.cube();
        for f in Field::ALL {
            let iv = cube.get(f);
            mix(iv.lo());
            mix(iv.hi());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::SolveResult;
    use jinjing_acl::{AclBuilder, Packet};

    fn sample_acl() -> Acl {
        AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .permit_dst("1.2.0.0/16") // shadowed
            .deny_dst("6.0.0.0/8")
            .deny_src("10.0.0.0/8")
            .permit_dst("7.0.0.0/8")
            .build()
    }

    fn probes() -> Vec<Packet> {
        vec![
            Packet::to_dst(0x0102_0304),
            Packet::to_dst(0x0600_0001),
            Packet::to_dst(0x0700_0001),
            Packet::new(0x0a00_0001, 0x0700_0001, 0, 0, 0),
            Packet::new(0x0b00_0001, 0x0800_0001, 0, 0, 0),
        ]
    }

    fn check_encoding_on_packets(enc: Encoding) {
        let acl = sample_acl();
        for p in probes() {
            let mut c = CircuitBuilder::new();
            let h = HeaderVars::new(&mut c);
            let g = encode(&mut c, &h, &acl, enc);
            h.assert_packet(&mut c, &p);
            assert_eq!(c.solve(), SolveResult::Sat);
            assert_eq!(c.model_value(g), acl.permits(&p), "{enc:?} on {p}");
        }
    }

    #[test]
    fn sequential_matches_concrete_eval() {
        check_encoding_on_packets(Encoding::Sequential);
    }

    #[test]
    fn tree_matches_concrete_eval() {
        check_encoding_on_packets(Encoding::Tree);
    }

    #[test]
    fn encodings_are_equivalent_by_solver_proof() {
        let acl = sample_acl();
        let mut c = CircuitBuilder::new();
        let h = HeaderVars::new(&mut c);
        let a = encode_sequential(&mut c, &h, &acl);
        let b = encode_tree(&mut c, &h, &acl);
        let eq = c.iff(a, b);
        c.assert(!eq);
        assert_eq!(c.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_acl_encodes_to_default_constant() {
        for (acl, expect_true) in [(Acl::permit_all(), true), (Acl::deny_all(), false)] {
            for enc in [Encoding::Sequential, Encoding::Tree] {
                let mut c = CircuitBuilder::new();
                let h = HeaderVars::new(&mut c);
                let g = encode(&mut c, &h, &acl, enc);
                assert_eq!(g, if expect_true { c.t() } else { c.f() });
            }
        }
    }

    #[test]
    fn single_rule_acl() {
        let acl = AclBuilder::default_deny().permit_dst("9.0.0.0/8").build();
        for enc in [Encoding::Sequential, Encoding::Tree] {
            let mut c = CircuitBuilder::new();
            let h = HeaderVars::new(&mut c);
            let g = encode(&mut c, &h, &acl, enc);
            c.assert(g);
            assert_eq!(c.solve(), SolveResult::Sat);
            let p = h.decode(&c);
            assert!(acl.permits(&p));
            assert_eq!(p.dip >> 24, 9);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_order_sensitive() {
        let a = sample_acl();
        let b = sample_acl();
        assert_eq!(acl_fingerprint(&a), acl_fingerprint(&b), "deterministic");
        // Rule order matters (priority is semantic).
        let fwd = AclBuilder::default_deny()
            .permit_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16")
            .build();
        let rev = AclBuilder::default_deny()
            .deny_dst("1.2.0.0/16")
            .permit_dst("1.0.0.0/8")
            .build();
        assert_ne!(acl_fingerprint(&fwd), acl_fingerprint(&rev));
        // Default action matters.
        assert_ne!(
            acl_fingerprint(&Acl::permit_all()),
            acl_fingerprint(&Acl::deny_all())
        );
        // Action on an otherwise identical rule matters.
        let p = AclBuilder::default_deny().permit_dst("9.0.0.0/8").build();
        let d = AclBuilder::default_deny().deny_dst("9.0.0.0/8").build();
        assert_ne!(acl_fingerprint(&p), acl_fingerprint(&d));
    }

    #[test]
    fn priority_respected_in_tree_encoding() {
        // A shadowing permit above a deny: the tree combine must keep
        // left-priority.
        let acl = AclBuilder::default_deny()
            .permit_dst("5.0.0.0/8")
            .deny_dst("5.5.0.0/16")
            .permit_dst("5.5.5.0/24")
            .build();
        let probes = [
            Packet::to_dst(0x0505_0501), // hits rule 0 (permit 5/8)
            Packet::to_dst(0x0505_0000),
            Packet::to_dst(0x0500_0000),
            Packet::to_dst(0x0600_0000),
        ];
        for p in probes {
            let mut c = CircuitBuilder::new();
            let h = HeaderVars::new(&mut c);
            let g = encode_tree(&mut c, &h, &acl);
            h.assert_packet(&mut c, &p);
            assert_eq!(c.solve(), SolveResult::Sat);
            assert_eq!(c.model_value(g), acl.permits(&p), "{p}");
        }
    }
}
