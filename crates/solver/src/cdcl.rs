//! A conflict-driven clause-learning SAT solver.
//!
//! Feature set: two-watched-literal unit propagation, first-UIP conflict
//! analysis with clause learning and non-chronological backjumping,
//! VSIDS-style exponential variable activities with an indexed max-heap,
//! phase saving, Luby-sequence restarts, incremental clause addition
//! between solves, solving under assumptions, and glucose-style learned
//! clause-database reduction (LBD-tagged learned clauses, periodic
//! deletion of high-LBD/stale clauses with watched-literal compaction)
//! so long-lived warm solvers stay healthy across thousands of queries.
//!
//! The solver exposes [`SolverStats`] — decisions, propagations, conflicts
//! and the maximum decision depth reached — because the paper's §9 argues
//! its optimizations in exactly these terms ("all optimizations in Jinjing
//! aim at reducing the recursive calls" of a DPLL-family solver). The
//! `encoding_ablation` bench reads these counters to reproduce that
//! discussion.

use crate::lit::{Lit, Var};

/// Sentinel for "no reason clause".
const NO_REASON: u32 = u32::MAX;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment exists (read it via [`Solver::model_value`]).
    Sat,
    /// No satisfying assignment (under the given assumptions).
    Unsat,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decision literals picked.
    pub decisions: u64,
    /// Number of literals enqueued by unit propagation.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learned clauses added.
    pub learned: u64,
    /// Maximum decision level ever reached — the "search depth" of §9.
    pub max_depth: u64,
    /// Summed literal-block distance (LBD) over all learned clauses — the
    /// glucose quality measure; `lbd / learned` is the mean glue.
    pub lbd: u64,
    /// Learned clauses deleted by database reductions.
    pub deleted: u64,
    /// Clause-database reduction passes performed.
    pub db_reductions: u64,
}

impl SolverStats {
    /// Fold `other` into `self`: counters add (saturating), `max_depth`
    /// takes the high-water mark. This is the one sanctioned way to
    /// aggregate stats across solver instances — the per-class check loop,
    /// the fix loop, and generate all use it.
    pub fn merge(&mut self, other: &SolverStats) {
        self.decisions = self.decisions.saturating_add(other.decisions);
        self.propagations = self.propagations.saturating_add(other.propagations);
        self.conflicts = self.conflicts.saturating_add(other.conflicts);
        self.restarts = self.restarts.saturating_add(other.restarts);
        self.learned = self.learned.saturating_add(other.learned);
        self.max_depth = self.max_depth.max(other.max_depth);
        self.lbd = self.lbd.saturating_add(other.lbd);
        self.deleted = self.deleted.saturating_add(other.deleted);
        self.db_reductions = self.db_reductions.saturating_add(other.db_reductions);
    }

    /// The work done since `earlier` was captured from the *same* solver.
    /// Counters subtract (the solver's stats are cumulative); `max_depth`
    /// passes through as the current high-water mark, since depth is not
    /// additive across queries.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learned: self.learned.saturating_sub(earlier.learned),
            max_depth: self.max_depth,
            lbd: self.lbd.saturating_sub(earlier.lbd),
            deleted: self.deleted.saturating_sub(earlier.deleted),
            db_reductions: self.db_reductions.saturating_sub(earlier.db_reductions),
        }
    }

    /// Record this stats delta as one solver query in the observability
    /// collector: one sample per `solver.*` histogram plus the
    /// `solver.queries` counter. `vars`/`clauses` describe the instance
    /// size at query time.
    pub fn record_query(&self, obs: &jinjing_obs::Collector, vars: usize, clauses: usize) {
        obs.counter_add("solver.queries", 1);
        obs.histogram_record("solver.decisions", self.decisions);
        obs.histogram_record("solver.propagations", self.propagations);
        obs.histogram_record("solver.conflicts", self.conflicts);
        obs.histogram_record("solver.restarts", self.restarts);
        obs.histogram_record("solver.learned", self.learned);
        obs.histogram_record("solver.max_depth", self.max_depth);
        obs.histogram_record("solver.vars", vars as u64);
        obs.histogram_record("solver.clauses", clauses as u64);
        obs.histogram_record("solver.lbd", self.lbd);
        obs.counter_add("solver.clauses_deleted", self.deleted);
        obs.counter_add("solver.db_reductions", self.db_reductions);
    }

    /// Close a per-query flight-recorder span with this stats delta as
    /// its arguments, and drop `solver.*` counter samples on the span's
    /// track so trace viewers plot the conflict / restart /
    /// learned-clause timeline across queries. The aggregate-side twin
    /// of [`SolverStats::record_query`]; a no-op when the span's context
    /// is disabled.
    pub fn trace_query(&self, span: jinjing_obs::trace::TraceSpan, vars: usize, clauses: usize) {
        let ctx = span.ctx().clone();
        let tid = span.tid();
        if !ctx.enabled() {
            return;
        }
        span.end_with(&[
            ("clauses", clauses as u64),
            ("conflicts", self.conflicts),
            ("db_reductions", self.db_reductions),
            ("decisions", self.decisions),
            ("deleted", self.deleted),
            ("lbd", self.lbd),
            ("learned", self.learned),
            ("max_depth", self.max_depth),
            ("propagations", self.propagations),
            ("restarts", self.restarts),
            ("vars", vars as u64),
        ]);
        ctx.counter(tid, "solver.conflicts", self.conflicts);
        ctx.counter(tid, "solver.restarts", self.restarts);
        ctx.counter(tid, "solver.learned", self.learned);
    }
}

impl std::ops::AddAssign<SolverStats> for SolverStats {
    fn add_assign(&mut self, other: SolverStats) {
        self.merge(&other);
    }
}

impl std::ops::AddAssign<&SolverStats> for SolverStats {
    fn add_assign(&mut self, other: &SolverStats) {
        self.merge(other);
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// Learned (vs original) — only learned clauses are ever deleted.
    learnt: bool,
    /// Literal block distance at learn time (distinct decision levels).
    lbd: u32,
    /// Conflict count at the last use in conflict analysis (recency).
    used: u64,
}

/// Indexed max-heap over variable activities (MiniSat's `VarOrder`).
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// var index -> position in `heap`, or usize::MAX when absent.
    pos: Vec<usize>,
}

impl VarHeap {
    fn grow(&mut self, n: usize) {
        self.pos.resize(n, usize::MAX);
    }

    fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != usize::MAX
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        let p = self.pos[v.index()];
        if p != usize::MAX {
            self.sift_up(p, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] <= act[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

/// The CDCL solver.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.code()]` = clause indices currently watching `lit`.
    watches: Vec<Vec<u32>>,
    /// Tri-state assignment per var: 0 = unassigned, 1 = true, -1 = false.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    order: VarHeap,
    /// False once an unconditional contradiction has been derived.
    ok: bool,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Assignment snapshot from the last `Sat` answer.
    model: Vec<i8>,
    stats: SolverStats,
    /// Learned clauses attached since the last database reduction.
    learnt_since_reduce: u64,
    /// Reduction trigger: reduce once `learnt_since_reduce` reaches this.
    reduce_interval: u64,
    /// Interval growth per reduction (glucose-style ramp).
    reduce_step: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Fresh, empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            order: VarHeap::default(),
            ok: true,
            seen: Vec::new(),
            model: Vec::new(),
            stats: SolverStats::default(),
            learnt_since_reduce: 0,
            reduce_interval: 2000,
            reduce_step: 500,
        }
    }

    /// Override the clause-DB reduction trigger: reduce after `first`
    /// learned clauses, then every `first + i·step`. The defaults (2000,
    /// +500) never fire on the small per-query instances of the cold
    /// check path; tests and long-lived warm solvers lower them to
    /// exercise (or accelerate) reduction.
    pub fn set_reduce_interval(&mut self, first: u64, step: u64) {
        self.reduce_interval = first;
        self.reduce_step = step;
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assign.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Current value of a literal under the partial assignment.
    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Add a clause. Returns `false` if the formula is now trivially
    /// unsatisfiable. Must be called with the solver at decision level 0
    /// (i.e. between `solve` calls), which is enforced.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(
            self.trail_lim.len(),
            0,
            "clauses may only be added at decision level 0"
        );
        if !self.ok {
            return false;
        }
        // Normalize: sort/dedup, drop root-false literals, detect
        // tautologies and root-satisfied clauses.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let mut filtered = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and ¬l
            }
            match self.lit_value(l) {
                1 => return true, // already satisfied at root
                -1 => {}          // root-false: drop
                _ => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(filtered[0], NO_REASON);
                // Propagate immediately so later adds see implied values.
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(filtered, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        let used = self.stats.conflicts;
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            used,
        });
        idx
    }

    /// Literal block distance of a (learnt) clause: the number of distinct
    /// decision levels among its literals, computed while those levels are
    /// still current (i.e. before backjumping).
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().index()])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), 0);
        let v = l.var();
        self.assign[v.index()] = if l.is_positive() { 1 } else { -1 };
        self.level[v.index()] = self.trail_lim.len() as u32;
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.is_positive();
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Unit propagation; returns the conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            // Take the watch list for the literal that just became false.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                let (w0, w1) = {
                    let c = &mut self.clauses[ci as usize];
                    // Ensure the false literal sits at position 1.
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                if self.lit_value(w0) == 1 {
                    i += 1; // clause satisfied; keep watching
                    continue;
                }
                // Look for a replacement watch.
                let replacement = {
                    let c = &self.clauses[ci as usize];
                    c.lits[2..]
                        .iter()
                        .position(|&l| self.lit_value(l) != -1)
                        .map(|off| off + 2)
                };
                if let Some(k) = replacement {
                    let new_watch = {
                        let c = &mut self.clauses[ci as usize];
                        c.lits.swap(1, k);
                        c.lits[1]
                    };
                    self.watches[new_watch.code()].push(ci);
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(w0) == -1 {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()].append(&mut ws);
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                self.enqueue(w0, ci);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
        self.stats.max_depth = self.stats.max_depth.max(self.trail_lim.len() as u64);
    }

    /// Undo assignments above `target` decision level.
    fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for &l in &self.trail[bound..] {
            let v = l.var();
            self.assign[v.index()] = 0;
            self.reason[v.index()] = NO_REASON;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = bound;
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level)
    /// with the asserting literal at index 0.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause = confl;
        let mut index = self.trail.len();
        let cur_level = self.decision_level();
        loop {
            {
                // Recency stamp: clauses driving conflicts are kept across
                // database reductions.
                let c = &mut self.clauses[clause as usize];
                if c.learnt {
                    c.used = self.stats.conflicts;
                }
            }
            let start = if p.is_none() { 0 } else { 1 };
            // Walk the literals of the reason clause (skipping the
            // propagated literal itself at slot 0 when applicable).
            let lits: Vec<Lit> = self.clauses[clause as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == cur_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select the next trail literal (at the current level) to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let uip = self.trail[index];
            self.seen[uip.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !uip;
                break;
            }
            p = Some(uip);
            clause = self.reason[uip.var().index()];
            debug_assert_ne!(clause, NO_REASON);
        }
        // Clear `seen` for the kept literals.
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump level = highest level among non-asserting literals.
        let mut bt = 0u32;
        let mut max_i = 1usize;
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let lv = self.level[l.var().index()];
            if lv > bt {
                bt = lv;
                max_i = i;
            }
        }
        if learnt.len() > 1 {
            learnt.swap(1, max_i); // watch a highest-level literal
        }
        (learnt, bt)
    }

    /// Pick the next branching variable (highest activity, saved phase).
    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v.index()] == 0 {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    /// Solve the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solve under assumptions. On `Sat`, the model is available via
    /// [`Solver::model_value`]; afterwards the solver backtracks to level 0
    /// and can accept more clauses or another `solve` call.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_budget = luby(self.stats.restarts) * 64;
        let result = 'search: loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break 'search SolveResult::Unsat;
                }
                // A conflict while assumption decisions are still on the
                // trail: analyze normally; if the backjump would strip an
                // assumption we simply re-assume on the way back down.
                let (learnt, bt) = self.analyze(confl);
                let lbd = self.compute_lbd(&learnt);
                self.backtrack_to(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.enqueue(asserting, NO_REASON);
                } else {
                    let ci = self.attach_clause(learnt, true, lbd);
                    self.enqueue(asserting, ci);
                    self.learnt_since_reduce += 1;
                }
                self.stats.learned += 1;
                self.stats.lbd += u64::from(lbd);
                self.var_inc /= 0.95;
                continue;
            }
            if conflicts_since_restart >= restart_budget
                && self.decision_level() as usize > assumptions.len()
            {
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                restart_budget = luby(self.stats.restarts) * 64;
                self.backtrack_to(assumptions.len() as u32);
                if self.learnt_since_reduce >= self.reduce_interval {
                    // Reduce at the restart point, from the root: any
                    // assumption levels are rebuilt by the loop below and
                    // the rescan after the watch rebuild.
                    self.backtrack_to(0);
                    self.reduce_db();
                }
                continue;
            }
            // Establish pending assumptions first.
            if (self.decision_level() as usize) < assumptions.len() {
                let a = assumptions[self.decision_level() as usize];
                match self.lit_value(a) {
                    1 => {
                        // Already implied: open an (empty) level for it so
                        // the indexing stays aligned.
                        self.new_decision_level();
                    }
                    -1 => break 'search SolveResult::Unsat,
                    _ => {
                        self.new_decision_level();
                        self.stats.decisions += 1;
                        self.enqueue(a, NO_REASON);
                    }
                }
                continue;
            }
            match self.pick_branch() {
                None => break 'search SolveResult::Sat,
                Some(l) => {
                    self.new_decision_level();
                    self.stats.decisions += 1;
                    self.enqueue(l, NO_REASON);
                }
            }
        };
        if result == SolveResult::Sat {
            self.snapshot_model();
        }
        self.backtrack_to(0);
        result
    }

    /// Glucose-style learned-clause database reduction. Must run at
    /// decision level 0. Keeps every original clause, every *locked*
    /// clause (the reason of a currently assigned variable — deleting one
    /// would orphan conflict analysis), and every glue clause (LBD ≤ 2);
    /// of the remaining learned clauses the worse half — highest LBD,
    /// then least recently used — is deleted. The clause arena is
    /// compacted with an index remap (watches and reasons hold raw
    /// indices) and every watch list is rebuilt from scratch, which is
    /// also the watched-literal compaction: deletion leaves no dangling
    /// watch entries behind.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0, "reduce only at the root");
        self.stats.db_reductions += 1;
        self.learnt_since_reduce = 0;
        self.reduce_interval += self.reduce_step;
        let mut locked = vec![false; self.clauses.len()];
        for &l in &self.trail {
            let r = self.reason[l.var().index()];
            if r != NO_REASON {
                locked[r as usize] = true;
            }
        }
        let mut cands: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt && !locked[i as usize] && c.lbd > 2
            })
            .collect();
        // Worst first: highest LBD, then oldest use, then index — a total,
        // deterministic order.
        cands.sort_by_key(|&i| {
            let c = &self.clauses[i as usize];
            (std::cmp::Reverse(c.lbd), c.used, i)
        });
        let drop_n = cands.len() / 2;
        let mut delete = vec![false; self.clauses.len()];
        for &i in &cands[..drop_n] {
            delete[i as usize] = true;
        }
        // Compact the arena, recording the old → new index remap.
        let mut remap = vec![NO_REASON; self.clauses.len()];
        let mut kept = Vec::with_capacity(self.clauses.len() - drop_n);
        for (old, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if delete[old] {
                continue;
            }
            remap[old] = kept.len() as u32;
            kept.push(c);
        }
        self.clauses = kept;
        // Only assigned variables carry live reasons (backtracking clears
        // them), and locked clauses were kept, so every remap hit exists.
        for &l in &self.trail {
            let r = &mut self.reason[l.var().index()];
            if *r != NO_REASON {
                *r = remap[*r as usize];
            }
        }
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            let (w0, w1) = (self.clauses[i].lits[0], self.clauses[i].lits[1]);
            self.watches[w0.code()].push(i as u32);
            self.watches[w1.code()].push(i as u32);
        }
        // Rescan the root trail: rebuilt watch pairs may sit on false
        // literals, so deferred propagations must be re-derived.
        self.qhead = 0;
        self.stats.deleted += drop_n as u64;
    }

    fn snapshot_model(&mut self) {
        self.model = self.assign.clone();
    }

    /// Value of a literal in the model of the last `Sat` answer.
    /// Unconstrained variables read as `false`.
    pub fn model_value(&self, l: Lit) -> bool {
        let v = self.model.get(l.var().index()).copied().unwrap_or(0);
        if l.is_positive() {
            v == 1
        } else {
            v != 1
        }
    }
}

/// Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver_vars: &[Var], spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&s| {
                let v = solver_vars[(s.unsigned_abs() - 1) as usize];
                Lit::new(v, s > 0)
            })
            .collect()
    }

    /// Brute-force SAT check over all 2^n assignments (n small).
    fn brute_force(n: usize, clauses: &[Vec<i32>]) -> bool {
        'outer: for bits in 0u64..(1 << n) {
            for c in clauses {
                let ok = c.iter().any(|&s| {
                    let val = (bits >> (s.unsigned_abs() - 1)) & 1 == 1;
                    if s > 0 {
                        val
                    } else {
                        !val
                    }
                });
                if !ok {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn solve_spec(n: usize, clauses: &[Vec<i32>]) -> SolveResult {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for c in clauses {
            s.add_clause(&lits(&vars, c));
        }
        let r = s.solve();
        if r == SolveResult::Sat {
            // Model must satisfy every clause.
            for c in clauses {
                assert!(
                    c.iter().any(|&spec| {
                        let l = lits(&vars, &[spec])[0];
                        s.model_value(l)
                    }),
                    "model violates clause {c:?}"
                );
            }
        }
        r
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert_eq!(solve_spec(1, &[vec![1]]), SolveResult::Sat);
        assert_eq!(solve_spec(1, &[vec![1], vec![-1]]), SolveResult::Unsat);
        assert_eq!(solve_spec(0, &[]), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        // x1, x1→x2, x2→x3, x3→¬x1 is unsat.
        let cls = vec![vec![1], vec![-1, 2], vec![-2, 3], vec![-3, -1]];
        assert_eq!(solve_spec(3, &cls), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. vars 1..6 = (i,j) for i in 0..3, j in 0..2.
        let v = |i: i32, j: i32| i * 2 + j + 1;
        let mut cls = Vec::new();
        for i in 0..3 {
            cls.push(vec![v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    cls.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        assert_eq!(solve_spec(6, &cls), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let n = 4 + (next() % 6) as usize; // 4..9 vars
            let m = n * 4; // near the hard ratio
            let mut clauses = Vec::with_capacity(m);
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = (next() % n as u64) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(var * sign);
                }
                clauses.push(c);
            }
            let expected = brute_force(n, &clauses);
            let got = solve_spec(n, &clauses) == SolveResult::Sat;
            assert_eq!(got, expected, "round {round}: n={n} clauses={clauses:?}");
        }
    }

    #[test]
    fn assumptions_restrict_and_release() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.lit(), b.lit()]); // a ∨ b
        assert_eq!(s.solve_with(&[!a.lit(), !b.lit()]), SolveResult::Unsat);
        // Assumptions do not persist.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with(&[!a.lit()]), SolveResult::Sat);
        assert!(s.model_value(b.lit()));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&lits(&vars, &[1, 2]));
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&lits(&vars, &[-1]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(vars[1].lit()));
        s.add_clause(&lits(&vars, &[-2]));
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once root-level unsat, it stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn blocking_clause_enumeration() {
        // Enumerate all 4 models of (a ∨ b) ∧ (¬a ∨ ¬b) ... actually 2.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.lit(), b.lit()]);
        s.add_clause(&[!a.lit(), !b.lit()]);
        let mut models = Vec::new();
        while s.solve() == SolveResult::Sat {
            let ma = s.model_value(a.lit());
            let mb = s.model_value(b.lit());
            models.push((ma, mb));
            s.add_clause(&[Lit::new(a, !ma), Lit::new(b, !mb)]);
        }
        models.sort();
        assert_eq!(models, vec![(false, true), (true, false)]);
    }

    #[test]
    fn tautology_and_duplicate_literals_are_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        assert!(s.add_clause(&[a.lit(), !a.lit()])); // tautology: ignored
        assert!(s.add_clause(&[b.lit(), b.lit(), b.lit()])); // dedup to unit
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(b.lit()));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        for i in 0..7 {
            s.add_clause(&[!vars[i].lit(), vars[i + 1].lit()]);
        }
        s.add_clause(&[vars[0].lit()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let st = s.stats();
        assert!(st.propagations >= 8, "chain should propagate, got {st:?}");
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    /// Pigeonhole clauses: `pigeons` into `holes` (unsat when p > h).
    fn pigeonhole(pigeons: usize, holes: usize) -> (usize, Vec<Vec<i32>>) {
        let v = |i: usize, j: usize| (i * holes + j + 1) as i32;
        let mut cls = Vec::new();
        for i in 0..pigeons {
            cls.push((0..holes).map(|j| v(i, j)).collect());
        }
        for j in 0..holes {
            for a in 0..pigeons {
                for b in (a + 1)..pigeons {
                    cls.push(vec![-v(a, j), -v(b, j)]);
                }
            }
        }
        (pigeons * holes, cls)
    }

    #[test]
    fn db_reduction_fires_and_preserves_unsat() {
        let (n, cls) = pigeonhole(7, 6);
        let mut s = Solver::new();
        s.set_reduce_interval(20, 10);
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        for c in &cls {
            s.add_clause(&lits(&vars, c));
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.db_reductions > 0, "reduction must fire: {st:?}");
        assert!(st.deleted > 0, "clauses must be deleted: {st:?}");
        assert!(st.learned > 0 && st.lbd >= st.learned, "lbd ≥ 1 per clause");
    }

    #[test]
    fn db_reduction_agrees_with_brute_force() {
        // Aggressive trigger (reduce at every restart) over random 3-SAT;
        // deletion must never flip an answer or corrupt a model.
        let mut state = 0xfeed_f00d_dead_beefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 5 + (next() % 5) as usize; // 5..9 vars
            let m = n * 5;
            let mut clauses = Vec::with_capacity(m);
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let var = (next() % n as u64) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(var * sign);
                }
                clauses.push(c);
            }
            let expected = brute_force(n, &clauses);
            let mut s = Solver::new();
            s.set_reduce_interval(1, 0);
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            for c in &clauses {
                s.add_clause(&lits(&vars, c));
            }
            let r = s.solve();
            assert_eq!(r == SolveResult::Sat, expected, "round {round}");
            if r == SolveResult::Sat {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&spec| s.model_value(lits(&vars, &[spec])[0])),
                        "round {round}: model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn db_reduction_keeps_incremental_solving_sound() {
        // Reduce hard during an unsat proof, then keep using the same
        // instance incrementally: assumptions and later clause additions
        // must still behave.
        let (n, cls) = pigeonhole(7, 6);
        let mut s = Solver::new();
        s.set_reduce_interval(10, 0);
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        // Leave out the last pigeon's hole clause so the instance is sat.
        for c in &cls[1..] {
            s.add_clause(&lits(&vars, c));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Assume the missing clause's literals all false: still sat
        // (pigeon 0 simply goes unplaced).
        let assume: Vec<Lit> = lits(&vars, &cls[0]).iter().map(|&l| !l).collect();
        assert_eq!(s.solve_with(&assume), SolveResult::Sat);
        // Re-adding the clause restores full PHP(7,6): unsat.
        s.add_clause(&lits(&vars, &cls[0]));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().db_reductions > 0, "{:?}", s.stats());
    }

    #[test]
    fn stats_new_fields_merge_and_delta() {
        let a = SolverStats {
            learned: 10,
            lbd: 25,
            deleted: 4,
            db_reductions: 1,
            ..SolverStats::default()
        };
        let b = SolverStats {
            learned: 2,
            lbd: 3,
            deleted: 1,
            db_reductions: 1,
            ..SolverStats::default()
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!((m.lbd, m.deleted, m.db_reductions), (28, 5, 2));
        let d = m.delta_since(&a);
        assert_eq!((d.lbd, d.deleted, d.db_reductions), (3, 1, 1));
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 ⊕ x3 = 1 is unsat (parity).
        let xor1 = |a: i32, b: i32| vec![vec![a, b], vec![-a, -b]];
        let mut cls = Vec::new();
        cls.extend(xor1(1, 2));
        cls.extend(xor1(2, 3));
        cls.extend(xor1(1, 3));
        assert_eq!(solve_spec(3, &cls), SolveResult::Unsat);
    }
}
