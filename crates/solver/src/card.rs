//! Cardinality circuits: sequential-counter "at least k" outputs.
//!
//! [`counter_outputs`] builds the Sinz sequential counter over a list of
//! literals and returns `out[j] ⇔ at least j+1 inputs are true`. The fix
//! primitive's "optimization for minimal changes" (§4.2) uses this: the
//! inputs are per-interface *change indicators*, and assuming `¬out[k]`
//! enforces "at most k interfaces change". Linear search on `k` under
//! assumptions then yields the minimum-change plan without rebuilding the
//! formula.

use crate::circuit::CircuitBuilder;
use crate::lit::Lit;

/// Build sequential-counter outputs for `inputs`.
///
/// Returns a vector `out` of length `inputs.len()` where `out[j]` is a
/// literal equivalent to "at least `j+1` of the inputs are true". For an
/// empty input list the result is empty.
pub fn counter_outputs(c: &mut CircuitBuilder, inputs: &[Lit]) -> Vec<Lit> {
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    // row[j] = at least j+1 of the inputs processed so far are true.
    let mut row: Vec<Lit> = vec![c.f(); n];
    row[0] = inputs[0];
    for (i, &x) in inputs.iter().enumerate().skip(1) {
        // Process counts high-to-low so each step reads the previous row.
        let prev = row.clone();
        for j in (0..=i).rev() {
            let carry = if j == 0 { c.t() } else { prev[j - 1] };
            let add = c.and(&[x, carry]);
            row[j] = c.or(&[prev[j], add]);
        }
    }
    row
}

/// Convenience: assert "at most `k` of `inputs` are true" permanently.
pub fn assert_at_most(c: &mut CircuitBuilder, inputs: &[Lit], k: usize) {
    let outs = counter_outputs(c, inputs);
    if k < outs.len() {
        let l = outs[k];
        c.assert(!l);
    }
}

/// The assumption literal enforcing "at most `k`" given counter outputs
/// (from [`counter_outputs`]); `None` when the bound is vacuous.
pub fn at_most_assumption(outputs: &[Lit], k: usize) -> Option<Lit> {
    outputs.get(k).map(|&l| !l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::SolveResult;

    /// Exhaustively validate counter outputs for n inputs.
    fn check_counter(n: usize) {
        for bits in 0u32..(1 << n) {
            let mut c = CircuitBuilder::new();
            let inputs: Vec<Lit> = (0..n).map(|_| c.input()).collect();
            let outs = counter_outputs(&mut c, &inputs);
            assert_eq!(outs.len(), n);
            for (i, &l) in inputs.iter().enumerate() {
                let v = (bits >> i) & 1 == 1;
                c.assert(if v { l } else { !l });
            }
            assert_eq!(c.solve(), SolveResult::Sat);
            let true_count = bits.count_ones() as usize;
            for (j, &o) in outs.iter().enumerate() {
                assert_eq!(
                    c.model_value(o),
                    true_count > j,
                    "n={n} bits={bits:b} out[{j}]"
                );
            }
        }
    }

    #[test]
    fn counter_exhaustive_small() {
        for n in 1..=5 {
            check_counter(n);
        }
    }

    #[test]
    fn empty_inputs() {
        let mut c = CircuitBuilder::new();
        let outs = counter_outputs(&mut c, &[]);
        assert!(outs.is_empty());
        assert_eq!(at_most_assumption(&outs, 0), None);
    }

    #[test]
    fn at_most_assumption_bounds_models() {
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..6).map(|_| c.input()).collect();
        let outs = counter_outputs(&mut c, &inputs);
        // Force at least 3 true via direct constraint.
        let l3 = outs[2];
        c.assert(l3);
        // at most 2 contradicts at least 3.
        let a = at_most_assumption(&outs, 2).unwrap();
        assert_eq!(c.solve_with(&[a]), SolveResult::Unsat);
        // at most 3 is fine, and the model has exactly 3.
        let a = at_most_assumption(&outs, 3).unwrap();
        assert_eq!(c.solve_with(&[a]), SolveResult::Sat);
        let count = inputs.iter().filter(|&&l| c.model_value(l)).count();
        assert_eq!(count, 3);
    }

    #[test]
    fn assert_at_most_zero_forces_all_false() {
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..4).map(|_| c.input()).collect();
        assert_at_most(&mut c, &inputs, 0);
        assert_eq!(c.solve(), SolveResult::Sat);
        for &l in &inputs {
            assert!(!c.model_value(l));
        }
        // Forcing one true is now unsat.
        c.assert(inputs[2]);
        assert_eq!(c.solve(), SolveResult::Unsat);
    }

    #[test]
    fn minimal_k_linear_search_pattern() {
        // The fix primitive's usage: find the smallest k admitting a model.
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..5).map(|_| c.input()).collect();
        let outs = counter_outputs(&mut c, &inputs);
        // Constraint: input0 ∨ input1, and input3 ∧ input4.
        c.assert_clause(&[inputs[0], inputs[1]]);
        c.assert(inputs[3]);
        c.assert(inputs[4]);
        let mut best = None;
        for k in 0..=inputs.len() {
            let assumption: Vec<Lit> = at_most_assumption(&outs, k).into_iter().collect();
            if c.solve_with(&assumption) == SolveResult::Sat {
                best = Some(k);
                break;
            }
        }
        assert_eq!(best, Some(3)); // 3,4 forced plus one of 0/1
    }
}
