//! Tseitin circuit construction on top of the CDCL solver.
//!
//! A [`CircuitBuilder`] owns a [`Solver`] and hands out gate outputs as
//! [`Lit`]s. Gates are encoded with the standard Tseitin clauses; constants
//! are represented by one dedicated always-true variable so that constant
//! folding stays purely syntactic (`and([])` is `TRUE`, `or` over a `TRUE`
//! input is `TRUE`, and so on).
//!
//! The Jinjing formulas (Eq. 3, Eq. 6, Eq. 7, Eq. 10) are all built through
//! this interface: ACL decision models become circuits over header bits,
//! path decision models conjoin them, and the consistency checks compare
//! before/after circuits with `iff`.

use crate::cdcl::{SolveResult, Solver, SolverStats};
use crate::lit::Lit;

/// Gate builder over an embedded solver.
#[derive(Debug)]
pub struct CircuitBuilder {
    solver: Solver,
    true_lit: Lit,
    /// Optional observability sink; when set, every `solve`/`solve_with`
    /// records its per-query stats delta into the `solver.*` histograms.
    obs: Option<jinjing_obs::Collector>,
    /// Stats high-water mark at the end of the previous query, used to
    /// turn the solver's cumulative counters into per-query deltas.
    last_stats: SolverStats,
}

impl Default for CircuitBuilder {
    fn default() -> CircuitBuilder {
        CircuitBuilder::new()
    }
}

impl CircuitBuilder {
    /// Fresh builder with the constant-`true` variable pre-asserted.
    pub fn new() -> CircuitBuilder {
        let mut solver = Solver::new();
        let t = solver.new_var().lit();
        solver.add_clause(&[t]);
        CircuitBuilder {
            solver,
            true_lit: t,
            obs: None,
            last_stats: SolverStats::default(),
        }
    }

    /// Attach an observability collector. Subsequent solver queries record
    /// per-query stats deltas (decisions, conflicts, propagations, …) into
    /// its `solver.*` histograms and bump the `solver.queries` counter.
    pub fn set_obs(&mut self, obs: jinjing_obs::Collector) {
        self.obs = Some(obs);
    }

    /// The constant `true`.
    pub fn t(&self) -> Lit {
        self.true_lit
    }

    /// The constant `false`.
    pub fn f(&self) -> Lit {
        !self.true_lit
    }

    /// A fresh unconstrained input variable.
    pub fn input(&mut self) -> Lit {
        self.solver.new_var().lit()
    }

    /// `true` if the literal is the constant true/false.
    fn is_const(&self, l: Lit, value: bool) -> bool {
        l == if value { self.true_lit } else { !self.true_lit }
    }

    /// Conjunction of any number of literals.
    pub fn and(&mut self, inputs: &[Lit]) -> Lit {
        let mut xs: Vec<Lit> = Vec::with_capacity(inputs.len());
        for &l in inputs {
            if self.is_const(l, true) {
                continue;
            }
            if self.is_const(l, false) {
                return self.f();
            }
            if xs.contains(&!l) {
                return self.f();
            }
            if !xs.contains(&l) {
                xs.push(l);
            }
        }
        match xs.len() {
            0 => self.t(),
            1 => xs[0],
            _ => {
                let g = self.input();
                // g → xi for each i; (∧xi) → g.
                let mut long = Vec::with_capacity(xs.len() + 1);
                for &x in &xs {
                    self.solver.add_clause(&[!g, x]);
                    long.push(!x);
                }
                long.push(g);
                self.solver.add_clause(&long);
                g
            }
        }
    }

    /// Disjunction of any number of literals.
    pub fn or(&mut self, inputs: &[Lit]) -> Lit {
        let negs: Vec<Lit> = inputs.iter().map(|&l| !l).collect();
        let a = self.and(&negs);
        !a
    }

    /// If-then-else: `c ? t : e`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if self.is_const(c, true) {
            return t;
        }
        if self.is_const(c, false) {
            return e;
        }
        if t == e {
            return t;
        }
        // Common constant cases fold into single gates.
        if self.is_const(t, true) {
            return self.or(&[c, e]); // c ∨ e
        }
        if self.is_const(t, false) {
            let nc = !c;
            return self.and(&[nc, e]); // ¬c ∧ e
        }
        if self.is_const(e, true) {
            let nc = !c;
            return self.or(&[nc, t]); // ¬c ∨ t
        }
        if self.is_const(e, false) {
            return self.and(&[c, t]); // c ∧ t
        }
        let g = self.input();
        self.solver.add_clause(&[!g, !c, t]);
        self.solver.add_clause(&[!g, c, e]);
        self.solver.add_clause(&[g, !c, !t]);
        self.solver.add_clause(&[g, c, !e]);
        // Redundant but propagation-strengthening clauses.
        self.solver.add_clause(&[!g, t, e]);
        self.solver.add_clause(&[g, !t, !e]);
        g
    }

    /// Biconditional `a ⇔ b`.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        self.ite(a, b, !b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.iff(a, b)
    }

    /// Assert that a literal holds (top-level constraint).
    pub fn assert(&mut self, l: Lit) {
        self.solver.add_clause(&[l]);
    }

    /// Assert a raw clause (disjunction of literals).
    pub fn assert_clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
    }

    /// Solve the asserted constraints.
    pub fn solve(&mut self) -> SolveResult {
        let r = self.solver.solve();
        self.record_query();
        r
    }

    /// Solve under assumptions.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        let r = self.solver.solve_with(assumptions);
        self.record_query();
        r
    }

    /// Report the work done by the query that just finished.
    fn record_query(&mut self) {
        let now = self.solver.stats();
        if let Some(obs) = &self.obs {
            now.delta_since(&self.last_stats).record_query(
                obs,
                self.solver.num_vars(),
                self.solver.num_clauses(),
            );
        }
        self.last_stats = now;
    }

    /// Model value of a literal after a `Sat` answer.
    pub fn model_value(&self, l: Lit) -> bool {
        self.solver.model_value(l)
    }

    /// Borrow the underlying solver (stats, clause counts).
    pub fn solver(&self) -> &Solver {
        &self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively verify a 2-input gate against a reference function.
    fn check_gate2(
        build: impl Fn(&mut CircuitBuilder, Lit, Lit) -> Lit,
        reference: fn(bool, bool) -> bool,
    ) {
        for va in [false, true] {
            for vb in [false, true] {
                let mut c = CircuitBuilder::new();
                let a = c.input();
                let b = c.input();
                let g = build(&mut c, a, b);
                c.assert(Lit::new(a.var(), va));
                c.assert(Lit::new(b.var(), vb));
                assert_eq!(c.solve(), SolveResult::Sat);
                assert_eq!(c.model_value(g), reference(va, vb), "inputs {va} {vb}");
            }
        }
    }

    #[test]
    fn and_gate_truth_table() {
        check_gate2(|c, a, b| c.and(&[a, b]), |x, y| x && y);
    }

    #[test]
    fn or_gate_truth_table() {
        check_gate2(|c, a, b| c.or(&[a, b]), |x, y| x || y);
    }

    #[test]
    fn xor_and_iff_truth_tables() {
        check_gate2(CircuitBuilder::xor, |x, y| x != y);
        check_gate2(CircuitBuilder::iff, |x, y| x == y);
    }

    #[test]
    fn ite_truth_table() {
        for vc in [false, true] {
            for vt in [false, true] {
                for ve in [false, true] {
                    let mut cb = CircuitBuilder::new();
                    let c = cb.input();
                    let t = cb.input();
                    let e = cb.input();
                    let g = cb.ite(c, t, e);
                    cb.assert(Lit::new(c.var(), vc));
                    cb.assert(Lit::new(t.var(), vt));
                    cb.assert(Lit::new(e.var(), ve));
                    assert_eq!(cb.solve(), SolveResult::Sat);
                    assert_eq!(cb.model_value(g), if vc { vt } else { ve });
                }
            }
        }
    }

    #[test]
    fn constant_folding() {
        let mut c = CircuitBuilder::new();
        let a = c.input();
        let t = c.t();
        let f = c.f();
        assert_eq!(c.and(&[]), t);
        assert_eq!(c.and(&[t, t]), t);
        assert_eq!(c.and(&[a, t]), a);
        assert_eq!(c.and(&[a, f]), f);
        assert_eq!(c.and(&[a, !a]), f);
        assert_eq!(c.and(&[a, a]), a);
        assert_eq!(c.or(&[]), f);
        assert_eq!(c.or(&[a, t]), t);
        assert_eq!(c.or(&[a, f]), a);
        let x = c.ite(t, a, f);
        assert_eq!(x, a);
        let y = c.ite(a, t, f);
        assert_eq!(y, a); // c?true:false == c after folding through or/and
    }

    #[test]
    fn wide_and_requires_all_inputs() {
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..16).map(|_| c.input()).collect();
        let g = c.and(&inputs);
        c.assert(g);
        assert_eq!(c.solve(), SolveResult::Sat);
        for &i in &inputs {
            assert!(c.model_value(i));
        }
        // Forcing one input low makes g unsat.
        c.assert(!inputs[7]);
        assert_eq!(c.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assert_clause_works() {
        let mut c = CircuitBuilder::new();
        let a = c.input();
        let b = c.input();
        c.assert_clause(&[a, b]);
        c.assert(!a);
        assert_eq!(c.solve(), SolveResult::Sat);
        assert!(c.model_value(b));
    }

    #[test]
    fn equivalence_checking_pattern() {
        // (a ∧ b) ⇔ ¬(¬a ∨ ¬b) is a tautology: its negation is unsat.
        let mut c = CircuitBuilder::new();
        let a = c.input();
        let b = c.input();
        let lhs = c.and(&[a, b]);
        let rhs_inner = c.or(&[!a, !b]);
        let rhs = !rhs_inner;
        let eq = c.iff(lhs, rhs);
        c.assert(!eq);
        assert_eq!(c.solve(), SolveResult::Unsat);
    }
}
