//! Boolean variables and literals with the usual packed encoding.

use std::fmt;

/// A boolean variable, identified by a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Dense index, usable for direct array addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn lit(self) -> Lit {
        Lit::positive(self)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal `v`.
    pub fn positive(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal `¬v`.
    pub fn negative(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Build from a variable and a sign (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Packed code, usable for direct array addressing (`2·var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a packed code.
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let l = Lit::positive(Var(7));
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
        assert!(l.is_positive());
        assert!(!(!l).is_positive());
    }

    #[test]
    fn code_roundtrip() {
        for v in [0u32, 1, 100, 1_000_000] {
            for pos in [true, false] {
                let l = Lit::new(Var(v), pos);
                assert_eq!(Lit::from_code(l.code()), l);
                assert_eq!(l.var(), Var(v));
                assert_eq!(l.is_positive(), pos);
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lit::positive(Var(3)).to_string(), "x3");
        assert_eq!(Lit::negative(Var(3)).to_string(), "¬x3");
    }
}
