//! Generalised totaliser cardinality encoding.
//!
//! [`totaliser_outputs`] builds the Bailleux–Boufkhad totaliser over a list
//! of literals: a balanced binary tree whose every node carries unary
//! counter outputs, with `out[j] ⇔ at least j+1 inputs are true` at the
//! root — the same contract as [`crate::card::counter_outputs`], so the
//! two encoders are drop-in interchangeable.
//!
//! The totaliser's advantage for *incremental* bounds is that the `at
//! most k` constraint is a single assumption literal (`¬out[k]`) over a
//! formula that never changes: fix's minimal-change search can tighten
//! `k` query after query on one warm solver, descending from the current
//! model's change count instead of probing every bound from zero with a
//! fresh encoding. Tightening only ever *adds* an assumption, so every
//! learned clause from the looser bound remains sound for the tighter
//! one.

use crate::circuit::CircuitBuilder;
use crate::lit::Lit;

/// Build totaliser outputs for `inputs`.
///
/// Returns `out` with `out.len() == inputs.len()` where `out[j]` is a
/// literal equivalent to "at least `j+1` of the inputs are true". Empty
/// input yields an empty output.
pub fn totaliser_outputs(c: &mut CircuitBuilder, inputs: &[Lit]) -> Vec<Lit> {
    match inputs.len() {
        0 => Vec::new(),
        1 => vec![inputs[0]],
        n => {
            let mid = n / 2;
            let left = totaliser_outputs(c, &inputs[..mid]);
            let right = totaliser_outputs(c, &inputs[mid..]);
            merge(c, &left, &right)
        }
    }
}

/// Merge two child unary counters into a parent counter of width
/// `left.len() + right.len()`, with both implication directions so the
/// parent outputs are model-exact (like the sequential counter's).
fn merge(c: &mut CircuitBuilder, left: &[Lit], right: &[Lit]) -> Vec<Lit> {
    let (la, lb) = (left.len(), right.len());
    let outs: Vec<Lit> = (0..la + lb).map(|_| c.input()).collect();
    for i in 0..=la {
        for j in 0..=lb {
            let s = i + j;
            // (≥i left) ∧ (≥j right) → (≥i+j total); i=0 / j=0 terms are ⊤.
            if s >= 1 {
                let mut clause = Vec::with_capacity(3);
                if i >= 1 {
                    clause.push(!left[i - 1]);
                }
                if j >= 1 {
                    clause.push(!right[j - 1]);
                }
                clause.push(outs[s - 1]);
                c.assert_clause(&clause);
            }
            // (≥s+1 total) → (≥i+1 left) ∨ (≥j+1 right) for every split
            // i+j = s; the i=la / j=lb edges drop the saturated side.
            if s < la + lb && i <= la && j <= lb {
                let mut clause = Vec::with_capacity(3);
                clause.push(!outs[s]);
                if i < la {
                    clause.push(left[i]);
                }
                if j < lb {
                    clause.push(right[j]);
                }
                c.assert_clause(&clause);
            }
        }
    }
    outs
}

/// Convenience: assert "at most `k` of `inputs` are true" permanently.
pub fn assert_at_most(c: &mut CircuitBuilder, inputs: &[Lit], k: usize) {
    let outs = totaliser_outputs(c, inputs);
    if k < outs.len() {
        let l = outs[k];
        c.assert(!l);
    }
}

/// The assumption literal enforcing "at most `k`" given totaliser outputs
/// (from [`totaliser_outputs`]); `None` when the bound is vacuous. Same
/// shape as [`crate::card::at_most_assumption`].
pub fn at_most_assumption(outputs: &[Lit], k: usize) -> Option<Lit> {
    outputs.get(k).map(|&l| !l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdcl::SolveResult;

    /// Exhaustively validate totaliser outputs for n inputs against the
    /// naive popcount oracle.
    fn check_totaliser(n: usize) {
        for bits in 0u32..(1 << n) {
            let mut c = CircuitBuilder::new();
            let inputs: Vec<Lit> = (0..n).map(|_| c.input()).collect();
            let outs = totaliser_outputs(&mut c, &inputs);
            assert_eq!(outs.len(), n);
            for (i, &l) in inputs.iter().enumerate() {
                let v = (bits >> i) & 1 == 1;
                c.assert(if v { l } else { !l });
            }
            assert_eq!(c.solve(), SolveResult::Sat);
            let true_count = bits.count_ones() as usize;
            for (j, &o) in outs.iter().enumerate() {
                assert_eq!(
                    c.model_value(o),
                    true_count > j,
                    "n={n} bits={bits:b} out[{j}]"
                );
            }
        }
    }

    #[test]
    fn totaliser_exhaustive_small() {
        for n in 1..=6 {
            check_totaliser(n);
        }
    }

    #[test]
    fn empty_inputs() {
        let mut c = CircuitBuilder::new();
        let outs = totaliser_outputs(&mut c, &[]);
        assert!(outs.is_empty());
        assert_eq!(at_most_assumption(&outs, 0), None);
    }

    #[test]
    fn agrees_with_sequential_counter() {
        // Same builder, both encoders over the same inputs: every output
        // pair must be equivalent (the negated iff is unsat).
        for n in 1..=5 {
            let mut c = CircuitBuilder::new();
            let inputs: Vec<Lit> = (0..n).map(|_| c.input()).collect();
            let tot = totaliser_outputs(&mut c, &inputs);
            let seq = crate::card::counter_outputs(&mut c, &inputs);
            for (j, (&a, &b)) in tot.iter().zip(seq.iter()).enumerate() {
                let eq = c.iff(a, b);
                assert_eq!(
                    c.solve_with(&[!eq]),
                    SolveResult::Unsat,
                    "n={n} out[{j}] differs between encoders"
                );
            }
        }
    }

    #[test]
    fn at_most_assumption_bounds_models() {
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..6).map(|_| c.input()).collect();
        let outs = totaliser_outputs(&mut c, &inputs);
        let l3 = outs[2];
        c.assert(l3); // at least 3 true
        let a = at_most_assumption(&outs, 2).unwrap();
        assert_eq!(c.solve_with(&[a]), SolveResult::Unsat);
        let a = at_most_assumption(&outs, 3).unwrap();
        assert_eq!(c.solve_with(&[a]), SolveResult::Sat);
        let count = inputs.iter().filter(|&&l| c.model_value(l)).count();
        assert_eq!(count, 3);
    }

    #[test]
    fn assert_at_most_zero_forces_all_false() {
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..4).map(|_| c.input()).collect();
        assert_at_most(&mut c, &inputs, 0);
        assert_eq!(c.solve(), SolveResult::Sat);
        for &l in &inputs {
            assert!(!c.model_value(l));
        }
        c.assert(inputs[2]);
        assert_eq!(c.solve(), SolveResult::Unsat);
    }

    #[test]
    fn descending_k_on_one_solver() {
        // The fix primitive's warm descent: start from a model's change
        // count and tighten `at_most` by assumption until Unsat.
        let mut c = CircuitBuilder::new();
        let inputs: Vec<Lit> = (0..5).map(|_| c.input()).collect();
        let outs = totaliser_outputs(&mut c, &inputs);
        // Constraint: input0 ∨ input1, and input3 ∧ input4 (minimum = 3).
        c.assert_clause(&[inputs[0], inputs[1]]);
        c.assert(inputs[3]);
        c.assert(inputs[4]);
        assert_eq!(c.solve(), SolveResult::Sat);
        let mut best = inputs.iter().filter(|&&l| c.model_value(l)).count();
        let mut solves = 1usize;
        while best > 0 {
            match at_most_assumption(&outs, best - 1) {
                None => break,
                Some(a) => {
                    solves += 1;
                    if c.solve_with(&[a]) == SolveResult::Sat {
                        best = inputs.iter().filter(|&&l| c.model_value(l)).count();
                    } else {
                        break;
                    }
                }
            }
        }
        assert_eq!(best, 3);
        assert!(solves <= 3, "descent should need few solves, got {solves}");
    }
}
