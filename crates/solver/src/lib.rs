#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-solver
//!
//! The decision-procedure substrate of the Jinjing reproduction — the role
//! Z3 plays in the paper. Everything is built from scratch:
//!
//! - [`lit`] — variables and literals.
//! - [`cdcl`] — a CDCL SAT solver: two-watched-literal propagation,
//!   1UIP conflict analysis with clause learning, VSIDS-style variable
//!   activity, phase saving, Luby restarts, and solving under assumptions.
//!   [`cdcl::Solver`] also reports the search statistics (decisions,
//!   propagations, conflicts, maximum decision depth) that §9 of the paper
//!   uses to explain *why* the optimizations work.
//! - [`circuit`] — a Tseitin gate builder layering AND/OR/NOT/XOR/ITE/IFF
//!   circuits (with constant folding) on top of the CNF database.
//! - [`header`] — the 104-bit packet-header bit-blasting: per-field bit
//!   vectors, prefix-match, range-comparator and match-spec circuits, and
//!   model-to-[`Packet`](jinjing_acl::Packet) decoding.
//! - [`aclenc`] — ACL decision-model encodings: the naive **sequential**
//!   first-match chain (O(n) solver search depth) and the paper's
//!   **balanced-tree** encoding inspired by tournament sort (O(log n)
//!   depth).
//! - [`card`] — sequential-counter cardinality outputs used for the fix
//!   primitive's "minimize the number of interfaces changed" objective.
//! - [`totaliser`] — the generalised totaliser cardinality encoding whose
//!   `at_most(k)` bound is a single assumption literal, letting fix's
//!   minimal-change search tighten k incrementally on one warm solver.
//!
//! The solver is deliberately simple in places — blocking-literal tricks
//! and preprocessing are omitted — but it keeps long-lived instances
//! healthy with glucose-style learned-clause database reduction
//! (LBD-tagged clauses, periodic deletion of high-LBD/stale clauses), and
//! on the problem sizes Jinjing produces (after the differential-rule
//! reduction) it solves every query in this repository in milliseconds.

pub mod aclenc;
pub mod card;
pub mod cdcl;
pub mod circuit;
pub mod header;
pub mod lit;
pub mod totaliser;

pub use crate::aclenc::acl_fingerprint;
pub use crate::cdcl::{SolveResult, Solver, SolverStats};
pub use crate::circuit::CircuitBuilder;
pub use crate::header::HeaderVars;
pub use crate::lit::{Lit, Var};
