//! Exact packet-set algebra: finite unions of cubes.
//!
//! A [`PacketSet`] denotes an arbitrary subset of the 2^104 header space as a
//! union of cubes. The representation is *not* canonical (two different cube
//! lists may denote the same set) but every operation — union, intersection,
//! difference, complement, subset, equality, emptiness, witness, cardinality —
//! is exact. Difference keeps the result in **pairwise-disjoint** form, and
//! [`PacketSet::count`] disjoins internally, so cardinality is always the
//! true cardinality.
//!
//! This algebra is the workhorse behind everything the paper would hand to
//! Z3 when an *exact set* answer is needed rather than a single witness:
//! FEC/AEC/DEC derivation, neighborhood validation (Eq. 6), simplification
//! proofs and all cross-checks of the SAT path.

use crate::cube::Cube;
use crate::packet::Packet;
use std::fmt;

/// A subset of header space, represented as a union of cubes.
///
/// ```
/// use jinjing_acl::{AclBuilder, PacketSet, Packet};
/// let acl = AclBuilder::default_permit().deny_dst("6.0.0.0/8").build();
/// let permitted = acl.permit_set();
/// assert!(!permitted.contains(&Packet::to_dst(6 << 24)));
/// assert!(permitted.contains(&Packet::to_dst(7 << 24)));
/// // Exact complement: the denied traffic is exactly the 6/8 block.
/// assert_eq!(permitted.complement().count(), 1u128 << (104 - 8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PacketSet {
    cubes: Vec<Cube>,
}

impl PacketSet {
    /// The empty set.
    pub fn empty() -> PacketSet {
        PacketSet { cubes: Vec::new() }
    }

    /// The full header space.
    pub fn full() -> PacketSet {
        PacketSet {
            cubes: vec![Cube::full()],
        }
    }

    /// A set holding exactly one packet.
    pub fn singleton(p: &Packet) -> PacketSet {
        PacketSet {
            cubes: vec![Cube::singleton(p)],
        }
    }

    /// A set from a single cube.
    pub fn from_cube(c: Cube) -> PacketSet {
        PacketSet { cubes: vec![c] }
    }

    /// A set from a list of cubes (deduplicating subsumed duplicates lazily).
    pub fn from_cubes(cubes: Vec<Cube>) -> PacketSet {
        let mut s = PacketSet { cubes };
        s.prune();
        s
    }

    /// A set from a list of cubes without the (quadratic) subsumption
    /// prune. Use when assembling very large unions whose parts are known
    /// to be (mostly) disjoint — e.g. unions of equivalence classes — and
    /// follow with [`PacketSet::coalesce`] if a compact form is needed.
    pub fn from_cubes_raw(cubes: Vec<Cube>) -> PacketSet {
        PacketSet { cubes }
    }

    /// Borrow the underlying cubes. The union of these cubes is the set; the
    /// cubes are not guaranteed disjoint.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes in the current representation (a size/perf metric,
    /// not a semantic property).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Membership test.
    pub fn contains(&self, p: &Packet) -> bool {
        self.cubes.iter().any(|c| c.contains(p))
    }

    /// `true` iff the set has no packets.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Union. Cheap: concatenates representations and prunes subsumed cubes.
    pub fn union(&self, other: &PacketSet) -> PacketSet {
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().copied());
        PacketSet::from_cubes(cubes)
    }

    /// Intersection: pairwise cube intersections.
    pub fn intersect(&self, other: &PacketSet) -> PacketSet {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(i) = a.intersect(b) {
                    cubes.push(i);
                }
            }
        }
        PacketSet::from_cubes(cubes)
    }

    /// `self \ other`. The result's cubes are pairwise disjoint.
    pub fn subtract(&self, other: &PacketSet) -> PacketSet {
        let mut current: Vec<Cube> = disjoin(&self.cubes);
        for b in &other.cubes {
            let mut next = Vec::with_capacity(current.len());
            for a in current {
                next.extend(a.subtract(b));
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        PacketSet { cubes: current }
    }

    /// Complement within the full header space.
    pub fn complement(&self) -> PacketSet {
        PacketSet::full().subtract(self)
    }

    /// `true` iff every packet of `self` is in `other`.
    pub fn is_subset(&self, other: &PacketSet) -> bool {
        // Quick syntactic check first: every cube subsumed by some cube.
        if self
            .cubes
            .iter()
            .all(|a| other.cubes.iter().any(|b| a.is_subset(b)))
        {
            return true;
        }
        self.subtract(other).is_empty()
    }

    /// Semantic equality (the `PartialEq` impl is representation equality).
    pub fn same_set(&self, other: &PacketSet) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// `true` iff the two sets share at least one packet.
    pub fn intersects(&self, other: &PacketSet) -> bool {
        self.cubes
            .iter()
            .any(|a| other.cubes.iter().any(|b| a.intersect(b).is_some()))
    }

    /// An arbitrary member, if any.
    pub fn sample(&self) -> Option<Packet> {
        self.cubes.first().map(Cube::sample)
    }

    /// Exact cardinality.
    pub fn count(&self) -> u128 {
        disjoin(&self.cubes).iter().map(Cube::count).sum()
    }

    /// Merge cubes that agree on four fields and have adjacent or
    /// overlapping intervals in the fifth. Runs sort-and-sweep passes per
    /// field to a fixpoint — O(n log n) per pass — so it stays cheap even on
    /// heavily fragmented sets (tens of thousands of cubes). The result
    /// denotes the same set with (often far) fewer cubes; useful before
    /// decomposing a set back into ACL rules.
    ///
    /// The output cube order is a *deterministic* function of the input set
    /// (groups are folded in key order): synthesized rule order, witness
    /// sampling and every other order-sensitive consumer downstream stay
    /// byte-identical across runs, processes and thread counts.
    pub fn coalesce(&self) -> PacketSet {
        use crate::interval::Interval;
        use crate::packet::Field;
        use std::collections::BTreeMap;
        let mut cubes = self.cubes.clone();
        loop {
            let before = cubes.len();
            for f in Field::ALL {
                // Group by the other four fields; merge intervals in `f`.
                let mut groups: BTreeMap<[Interval; 4], Vec<Interval>> = BTreeMap::new();
                for c in &cubes {
                    let mut key: [Interval; 4] = [c.get(Field::SrcIp); 4];
                    let mut ki = 0;
                    for g in Field::ALL {
                        if g != f {
                            key[ki] = c.get(g);
                            ki += 1;
                        }
                    }
                    groups.entry(key).or_default().push(c.get(f));
                }
                let mut next = Vec::with_capacity(cubes.len());
                for (key, mut ivs) in groups {
                    ivs.sort();
                    let mut merged: Vec<Interval> = Vec::with_capacity(ivs.len());
                    for iv in ivs {
                        match merged.last_mut() {
                            Some(last) if iv.lo() <= last.hi().saturating_add(1) => {
                                if iv.hi() > last.hi() {
                                    *last = Interval::new(last.lo(), iv.hi());
                                }
                            }
                            _ => merged.push(iv),
                        }
                    }
                    for iv in merged {
                        let mut c = Cube::full().with(f, iv);
                        let mut ki = 0;
                        for g in Field::ALL {
                            if g != f {
                                c = c.with(g, key[ki]);
                                ki += 1;
                            }
                        }
                        next.push(c);
                    }
                }
                cubes = next;
            }
            if cubes.len() >= before {
                break;
            }
        }
        PacketSet { cubes }
    }

    /// Drop cubes fully contained in another cube of the representation.
    fn prune(&mut self) {
        if self.cubes.len() < 2 {
            return;
        }
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        'outer: for c in cubes {
            let mut i = 0;
            while i < kept.len() {
                if c.is_subset(&kept[i]) {
                    continue 'outer;
                }
                if kept[i].is_subset(&c) {
                    kept.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            kept.push(c);
        }
        self.cubes = kept;
    }
}

/// Rewrite a cube union into an equivalent pairwise-disjoint union.
fn disjoin(cubes: &[Cube]) -> Vec<Cube> {
    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    for c in cubes {
        let mut pieces = vec![*c];
        for seen in &out {
            let mut next = Vec::with_capacity(pieces.len());
            for p in pieces {
                next.extend(p.subtract(seen));
            }
            pieces = next;
            if pieces.is_empty() {
                break;
            }
        }
        out.extend(pieces);
    }
    out
}

impl fmt::Display for PacketSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "{{}}");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::packet::Field;

    fn dst(lo: u64, hi: u64) -> PacketSet {
        PacketSet::from_cube(Cube::full().with(Field::DstIp, Interval::new(lo, hi)))
    }

    #[test]
    fn empty_and_full() {
        assert!(PacketSet::empty().is_empty());
        assert!(!PacketSet::full().is_empty());
        assert_eq!(PacketSet::full().count(), 1u128 << 104);
        assert_eq!(PacketSet::empty().count(), 0);
    }

    #[test]
    fn union_counts() {
        let a = dst(0, 9);
        let b = dst(5, 14);
        let u = a.union(&b);
        // Overlap [5,9] must not be double counted.
        assert_eq!(u.count(), dst(0, 14).count());
        assert!(u.same_set(&dst(0, 14)));
    }

    #[test]
    fn intersect_and_subtract_partition() {
        let a = dst(0, 99);
        let b = dst(50, 149);
        let i = a.intersect(&b);
        let d = a.subtract(&b);
        assert!(i.same_set(&dst(50, 99)));
        assert!(d.same_set(&dst(0, 49)));
        assert_eq!(i.count() + d.count(), a.count());
        assert!(!i.intersects(&d));
    }

    #[test]
    fn complement_laws() {
        let a = dst(1000, 2000);
        let c = a.complement();
        assert!(!a.intersects(&c));
        assert!(a.union(&c).same_set(&PacketSet::full()));
        assert!(c.complement().same_set(&a));
    }

    #[test]
    fn subset_and_equality() {
        let small = dst(10, 20);
        let big = dst(0, 100);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(small.same_set(&small.clone()));
        // Two different representations of the same set.
        let split = dst(10, 15).union(&dst(16, 20));
        assert!(split.same_set(&small));
    }

    #[test]
    fn sample_is_member() {
        let a = dst(42, 42);
        let p = a.sample().unwrap();
        assert!(a.contains(&p));
        assert_eq!(p.dip, 42);
        assert!(PacketSet::empty().sample().is_none());
    }

    #[test]
    fn multi_field_difference() {
        let web = PacketSet::from_cube(
            Cube::full()
                .with(Field::DstPort, Interval::new(80, 80))
                .with(Field::Proto, Interval::singleton(6)),
        );
        let some_dst = dst(0, 0xffff);
        let only_web_elsewhere = web.subtract(&some_dst);
        assert!(only_web_elsewhere.is_subset(&web));
        assert!(!only_web_elsewhere.intersects(&some_dst));
        assert_eq!(
            only_web_elsewhere.count() + web.intersect(&some_dst).count(),
            web.count()
        );
    }

    #[test]
    fn prune_removes_subsumed() {
        let s = PacketSet::from_cubes(vec![
            Cube::full(),
            Cube::full().with(Field::Proto, Interval::singleton(6)),
        ]);
        assert_eq!(s.cube_count(), 1);
    }

    #[test]
    fn singleton_membership() {
        let p = Packet::new(1, 2, 3, 4, 5);
        let s = PacketSet::singleton(&p);
        assert!(s.contains(&p));
        assert_eq!(s.count(), 1);
        assert!(!s.contains(&Packet::new(0, 2, 3, 4, 5)));
    }
}

#[cfg(test)]
mod coalesce_tests {
    use super::*;
    use crate::interval::Interval;
    use crate::packet::Field;

    fn dst(lo: u64, hi: u64) -> Cube {
        Cube::full().with(Field::DstIp, Interval::new(lo, hi))
    }

    #[test]
    fn adjacent_cubes_merge() {
        let s = PacketSet::from_cubes(vec![dst(0, 9), dst(10, 19), dst(20, 29)]);
        let c = s.coalesce();
        assert_eq!(c.cube_count(), 1);
        assert!(c.same_set(&s));
    }

    #[test]
    fn disjoint_nonadjacent_stay_separate() {
        let s = PacketSet::from_cubes(vec![dst(0, 9), dst(11, 19)]);
        let c = s.coalesce();
        assert_eq!(c.cube_count(), 2);
        assert!(c.same_set(&s));
    }

    #[test]
    fn multi_field_fragmentation_remerges() {
        // Carve a hole and fill it back: coalesce should recover one cube.
        let base = PacketSet::from_cube(dst(0, 999));
        let hole = PacketSet::from_cube(dst(100, 199).with(Field::Proto, Interval::new(6, 6)));
        let carved = base.subtract(&hole);
        let refilled = carved.union(&hole);
        let c = refilled.coalesce();
        assert!(c.same_set(&base));
        assert!(c.cube_count() <= 3, "got {}", c.cube_count());
    }

    #[test]
    fn coalesce_preserves_semantics_on_overlaps() {
        let s = PacketSet::from_cubes(vec![dst(0, 50), dst(25, 100)]);
        let c = s.coalesce();
        assert!(c.same_set(&s));
        assert_eq!(c.cube_count(), 1);
    }
}
