//! Decomposing exact packet sets back into well-formed ACL rule tuples.
//!
//! The synthesis pipeline (§5.4) reasons over exact [`PacketSet`]s but must
//! emit classic 5-tuple rules: IP fields as *prefixes*, ports as ranges,
//! protocol as a single value or wildcard. An arbitrary interval of IP
//! space decomposes into at most `2·32` aligned prefixes (the classic
//! range-to-CIDR cover); a cube therefore expands into the cartesian
//! product of its per-field decompositions.

use crate::cube::Cube;
use crate::packet::{Field, Proto};
use crate::rule::{IpPrefix, MatchSpec, PortRange};
use crate::set::PacketSet;

/// Minimal set of aligned prefixes `(base, len)` covering `[lo, hi]` within
/// a `width`-bit field.
pub fn interval_to_prefixes(lo: u64, hi: u64, width: u32) -> Vec<(u64, u32)> {
    assert!(lo <= hi, "empty interval");
    assert!(
        width <= 63 && hi < (1u64 << width),
        "interval out of domain"
    );
    let mut out = Vec::new();
    let mut cur = lo;
    loop {
        // Largest block aligned at `cur`…
        let align = if cur == 0 {
            width
        } else {
            cur.trailing_zeros().min(width)
        };
        // …that still fits below hi.
        let span = hi - cur + 1;
        let fit = 63 - span.leading_zeros(); // floor(log2(span))
        let k = align.min(fit);
        out.push((cur, width - k));
        let step = 1u64 << k;
        if hi - cur < step {
            break;
        }
        cur += step;
        if cur > hi {
            break;
        }
    }
    out
}

/// Decompose one cube into rule tuples covering exactly its packets.
pub fn cube_to_matchspecs(cube: &Cube) -> Vec<MatchSpec> {
    let src_iv = cube.get(Field::SrcIp);
    let dst_iv = cube.get(Field::DstIp);
    let sp = cube.get(Field::SrcPort);
    let dp = cube.get(Field::DstPort);
    let pr = cube.get(Field::Proto);

    let srcs: Vec<IpPrefix> = interval_to_prefixes(src_iv.lo(), src_iv.hi(), 32)
        .into_iter()
        .map(|(b, l)| IpPrefix::new(b as u32, l))
        .collect();
    let dsts: Vec<IpPrefix> = interval_to_prefixes(dst_iv.lo(), dst_iv.hi(), 32)
        .into_iter()
        .map(|(b, l)| IpPrefix::new(b as u32, l))
        .collect();
    let sport = PortRange::new(sp.lo() as u16, sp.hi() as u16);
    let dport = PortRange::new(dp.lo() as u16, dp.hi() as u16);
    let protos: Vec<Option<Proto>> = if pr.is_full(Field::Proto) {
        vec![None]
    } else {
        (pr.lo()..=pr.hi())
            .map(|v| Some(Proto::from_number(v as u8)))
            .collect()
    };

    let mut out = Vec::with_capacity(srcs.len() * dsts.len() * protos.len());
    for &src in &srcs {
        for &dst in &dsts {
            for &proto in &protos {
                out.push(MatchSpec {
                    src,
                    dst,
                    sport,
                    dport,
                    proto,
                });
            }
        }
    }
    out
}

/// Decompose a whole packet set into rule tuples (disjoint across the
/// set's disjoint form; overlapping representation cubes may yield
/// overlapping tuples, which is harmless for same-action rule batches).
pub fn set_to_matchspecs(set: &PacketSet) -> Vec<MatchSpec> {
    let mut out = Vec::new();
    // Coalesce first (re-merging fragmentation from set operations), which
    // also leaves the representation disjoint, so emitted tuples never
    // double-cover with conflicting priorities.
    let compact = set.coalesce();
    for cube in compact.cubes() {
        out.extend(cube_to_matchspecs(cube));
    }
    out
}

/// Reassemble: the exact set matched by a tuple list (for validation).
pub fn matchspecs_to_set(specs: &[MatchSpec]) -> PacketSet {
    PacketSet::from_cubes(specs.iter().map(MatchSpec::cube).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    #[test]
    fn aligned_interval_is_single_prefix() {
        assert_eq!(interval_to_prefixes(0, u32::MAX as u64, 32), vec![(0, 0)]);
        // 1.0.0.0/8
        assert_eq!(
            interval_to_prefixes(0x0100_0000, 0x01ff_ffff, 32),
            vec![(0x0100_0000, 8)]
        );
        assert_eq!(interval_to_prefixes(7, 7, 32), vec![(7, 32)]);
    }

    #[test]
    fn unaligned_interval_covers_exactly() {
        for (lo, hi) in [(1u64, 6u64), (3, 17), (0, 9), (250, 255), (5, 255)] {
            let prefixes = interval_to_prefixes(lo, hi, 8);
            // Exact cover: every value in [lo,hi] in exactly one prefix.
            for v in 0..=255u64 {
                let count = prefixes
                    .iter()
                    .filter(|&&(b, l)| {
                        let iv = Interval::from_prefix(b, l, 8);
                        iv.contains(v)
                    })
                    .count();
                assert_eq!(
                    count,
                    ((lo..=hi).contains(&v)) as usize,
                    "v={v} in [{lo},{hi}]: {prefixes:?}"
                );
            }
        }
    }

    #[test]
    fn cube_decomposition_roundtrips() {
        let cube = Cube::full()
            .with(Field::DstIp, Interval::new(0x0100_0000, 0x02ff_ffff))
            .with(Field::DstPort, Interval::new(80, 443))
            .with(Field::Proto, Interval::new(6, 6));
        let specs = cube_to_matchspecs(&cube);
        let back = matchspecs_to_set(&specs);
        assert!(back.same_set(&PacketSet::from_cube(cube)));
    }

    #[test]
    fn ragged_ip_interval_roundtrips() {
        // 1.2.3.7 .. 9.0.0.3 — maximally unaligned.
        let cube = Cube::full().with(Field::DstIp, Interval::new(0x0102_0307, 0x0900_0003));
        let specs = cube_to_matchspecs(&cube);
        let back = matchspecs_to_set(&specs);
        assert!(back.same_set(&PacketSet::from_cube(cube)));
        assert!(specs.len() <= 64, "cover should be small: {}", specs.len());
    }

    #[test]
    fn multi_cube_set_roundtrips() {
        let a = Cube::full().with(Field::DstIp, Interval::new(100, 5000));
        let b = Cube::full().with(Field::SrcPort, Interval::new(1000, 2000));
        let set = PacketSet::from_cubes(vec![a, b]);
        let specs = set_to_matchspecs(&set);
        assert!(matchspecs_to_set(&specs).same_set(&set));
    }

    #[test]
    fn proto_range_expands_to_singletons() {
        let cube = Cube::full().with(Field::Proto, Interval::new(6, 8));
        let specs = cube_to_matchspecs(&cube);
        assert_eq!(specs.len(), 3);
        assert!(matchspecs_to_set(&specs).same_set(&PacketSet::from_cube(cube)));
    }
}
