//! The concrete packet model: a 5-tuple header `(sip, dip, sport, dport,
//! proto)` totalling 104 bits, exactly as in §2.1 of the paper.

use std::fmt;

/// Well-known IP protocol numbers used by the textual rule syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// ICMP (protocol number 1).
    Icmp,
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// Any other protocol, by raw number.
    Other(u8),
}

impl Proto {
    /// The raw 8-bit protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Icmp => 1,
            Proto::Tcp => 6,
            Proto::Udp => 17,
            Proto::Other(n) => n,
        }
    }

    /// Canonicalize a raw number back into a [`Proto`].
    pub fn from_number(n: u8) -> Proto {
        match n {
            1 => Proto::Icmp,
            6 => Proto::Tcp,
            17 => Proto::Udp,
            other => Proto::Other(other),
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Icmp => write!(f, "icmp"),
            Proto::Tcp => write!(f, "tcp"),
            Proto::Udp => write!(f, "udp"),
            Proto::Other(n) => write!(f, "{n}"),
        }
    }
}

/// One of the five header fields. Field order is significant: cubes, rule
/// encodings and the fix primitive's neighborhood expansion all iterate
/// fields in this declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// Source IPv4 address (32 bits).
    SrcIp,
    /// Destination IPv4 address (32 bits).
    DstIp,
    /// Source transport port (16 bits).
    SrcPort,
    /// Destination transport port (16 bits).
    DstPort,
    /// IP protocol number (8 bits).
    Proto,
}

impl Field {
    /// All fields, in canonical order.
    pub const ALL: [Field; 5] = [
        Field::SrcIp,
        Field::DstIp,
        Field::SrcPort,
        Field::DstPort,
        Field::Proto,
    ];

    /// Bit width of the field.
    pub fn width(self) -> u32 {
        match self {
            Field::SrcIp | Field::DstIp => 32,
            Field::SrcPort | Field::DstPort => 16,
            Field::Proto => 8,
        }
    }

    /// Largest value representable in the field.
    pub fn max_value(self) -> u64 {
        (1u64 << self.width()) - 1
    }

    /// Index of the field in [`Field::ALL`].
    pub fn index(self) -> usize {
        match self {
            Field::SrcIp => 0,
            Field::DstIp => 1,
            Field::SrcPort => 2,
            Field::DstPort => 3,
            Field::Proto => 4,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Field::SrcIp => "src",
            Field::DstIp => "dst",
            Field::SrcPort => "sport",
            Field::DstPort => "dport",
            Field::Proto => "proto",
        };
        write!(f, "{s}")
    }
}

/// A concrete packet header. This is the `h` of the paper: a 104-bit vector
/// split into its five fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Source IPv4 address.
    pub sip: u32,
    /// Destination IPv4 address.
    pub dip: u32,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
}

impl Packet {
    /// Construct a packet from raw field values.
    pub fn new(sip: u32, dip: u32, sport: u16, dport: u16, proto: u8) -> Packet {
        Packet {
            sip,
            dip,
            sport,
            dport,
            proto,
        }
    }

    /// A packet that only cares about its destination address; all other
    /// fields are zero. Most of the paper's running examples are
    /// destination-prefix based, so this constructor appears throughout the
    /// tests.
    pub fn to_dst(dip: u32) -> Packet {
        Packet::new(0, dip, 0, 0, 0)
    }

    /// Read one field as a widened integer.
    pub fn field(&self, f: Field) -> u64 {
        match f {
            Field::SrcIp => self.sip as u64,
            Field::DstIp => self.dip as u64,
            Field::SrcPort => self.sport as u64,
            Field::DstPort => self.dport as u64,
            Field::Proto => self.proto as u64,
        }
    }

    /// Write one field from a widened integer. Values must fit the field.
    pub fn set_field(&mut self, f: Field, v: u64) {
        debug_assert!(v <= f.max_value(), "value {v} out of range for {f:?}");
        match f {
            Field::SrcIp => self.sip = v as u32,
            Field::DstIp => self.dip = v as u32,
            Field::SrcPort => self.sport = v as u16,
            Field::DstPort => self.dport = v as u16,
            Field::Proto => self.proto = v as u8,
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}:{} -> {}:{} proto {})",
            fmt_ip(self.sip),
            self.sport,
            fmt_ip(self.dip),
            self.dport,
            self.proto
        )
    }
}

/// Render a 32-bit value in dotted-quad notation.
pub fn fmt_ip(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xff,
        (ip >> 16) & 0xff,
        (ip >> 8) & 0xff,
        ip & 0xff
    )
}

/// Parse a dotted-quad IPv4 address.
pub fn parse_ip(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut ip: u32 = 0;
    for _ in 0..4 {
        let part = parts.next()?;
        let octet: u32 = part.parse().ok()?;
        if octet > 255 {
            return None;
        }
        ip = (ip << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(ip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_widths_sum_to_104_bits() {
        let total: u32 = Field::ALL.iter().map(|f| f.width()).sum();
        assert_eq!(total, 104);
    }

    #[test]
    fn field_roundtrip() {
        let mut p = Packet::new(1, 2, 3, 4, 5);
        for f in Field::ALL {
            let v = p.field(f);
            p.set_field(f, v);
            assert_eq!(p.field(f), v);
        }
    }

    #[test]
    fn set_field_changes_only_target() {
        let mut p = Packet::new(10, 20, 30, 40, 50);
        p.set_field(Field::DstPort, 443);
        assert_eq!(p, Packet::new(10, 20, 30, 443, 50));
    }

    #[test]
    fn ip_parse_and_format_roundtrip() {
        for s in ["0.0.0.0", "255.255.255.255", "10.1.2.3", "192.168.0.1"] {
            let ip = parse_ip(s).unwrap();
            assert_eq!(fmt_ip(ip), s);
        }
    }

    #[test]
    fn ip_parse_rejects_garbage() {
        for s in ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3"] {
            assert_eq!(parse_ip(s), None, "should reject {s:?}");
        }
    }

    #[test]
    fn proto_numbers() {
        assert_eq!(Proto::Tcp.number(), 6);
        assert_eq!(Proto::from_number(17), Proto::Udp);
        assert_eq!(Proto::from_number(89), Proto::Other(89));
        assert_eq!(Proto::from_number(1), Proto::Icmp);
    }

    #[test]
    fn max_values() {
        assert_eq!(Field::SrcIp.max_value(), u32::MAX as u64);
        assert_eq!(Field::SrcPort.max_value(), u16::MAX as u64);
        assert_eq!(Field::Proto.max_value(), u8::MAX as u64);
    }
}
