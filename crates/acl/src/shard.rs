//! Consistent-hash partitioning of the equivalence-class space.
//!
//! The shard coordinator splits the FEC space across N backend verifiers by
//! hashing each class's packet-set onto a consistent-hash ring. The ring
//! (not a plain `hash % N`) is deliberate: adding or removing a shard moves
//! only ~1/N of the classes, so a warm backend fleet keeps most of its
//! per-class solver state useful across re-sharding.
//!
//! Everything here is deterministic and process-independent: the class key
//! is an FNV-1a hash of the class's *canonical cube rendering* (field
//! values only, no addresses), and the ring points are FNV-1a hashes of
//! `(shard index, virtual node)` pairs. Coordinator and backends therefore
//! agree on ownership by construction — no ownership table crosses the
//! wire.
//!
//! Ownership is **total and disjoint**: every key has exactly one owner,
//! so for any shard count the per-shard candidate subsets partition the
//! global candidate list. That is the property the byte-identity merge
//! contract (and the `BENCH_shard.json` zero-duplicate table) rests on.

use crate::set::PacketSet;

/// Virtual nodes per shard on the ring. Enough to keep the largest/smallest
/// shard load within a few percent of each other at small shard counts,
/// cheap enough to rebuild on every [`ShardSpec::new`].
pub const VNODES_PER_SHARD: usize = 40;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string, seeded so distinct key spaces (ring points
/// vs. class keys) cannot collide structurally. The raw FNV state is run
/// through an avalanche finalizer: short zero-padded inputs (shard/vnode
/// indices) otherwise land within a narrow band of the u64 space and the
/// ring degenerates to a single owner.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix(h)
}

/// 64-bit avalanche finalizer (the murmur3/splitmix constants): every input
/// bit flips about half the output bits, spreading ring points and keys
/// uniformly over the full u64 circle.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// The stable hash key of an equivalence class: FNV-1a over the canonical
/// rendering of the class's cube list. `PacketSet`s are kept in canonical
/// cube order by the set algebra, so equal sets hash equally in every
/// process.
pub fn class_key(set: &PacketSet) -> u64 {
    let mut h = FNV_OFFSET ^ 0x636c_6173_735f_6b65; // "class_ke"
    for cube in set.cubes() {
        h = fnv1a(h, format!("{cube:?}").as_bytes());
    }
    h
}

/// The stable hash key of an arbitrary string (used to distribute per-slot
/// and per-tenant lint work the same way classes are distributed).
pub fn str_key(s: &str) -> u64 {
    fnv1a(0x6c69_6e74_5f6b_6579, s.as_bytes())
}

/// One shard's identity within an N-shard partition, plus the shared ring.
///
/// Cloning is cheap-ish (the ring is `VNODES_PER_SHARD · count` points);
/// configs that embed a spec clone it per run, not per class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
    /// `(point, shard)` sorted by point; ties broken by shard index so the
    /// ring is a total order.
    ring: Vec<(u64, usize)>,
}

impl ShardSpec {
    /// The spec for shard `index` of `count`. Panics if `index >= count`
    /// or `count == 0` — shard topology is operator input validated at the
    /// CLI/HTTP boundary, so an out-of-range spec here is a programming
    /// error.
    pub fn new(index: usize, count: usize) -> ShardSpec {
        assert!(count > 0, "shard count must be positive");
        assert!(index < count, "shard index {index} out of range for {count} shard(s)");
        let mut ring = Vec::with_capacity(count * VNODES_PER_SHARD);
        for shard in 0..count {
            for vnode in 0..VNODES_PER_SHARD {
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&(shard as u64).to_be_bytes());
                bytes[8..].copy_from_slice(&(vnode as u64).to_be_bytes());
                ring.push((fnv1a(0x7269_6e67_5f70_7431, &bytes), shard));
            }
        }
        ring.sort_unstable();
        ShardSpec { index, count, ring }
    }

    /// This shard's index (0-based).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` for shard 0 — the shard that owns partition-global work
    /// (program-level lint passes, network-wide findings) which must run
    /// exactly once.
    pub fn is_primary(&self) -> bool {
        self.index == 0
    }

    /// The shard that owns `key`: the first ring point clockwise from the
    /// key (wrapping).
    pub fn owner_of(&self, key: u64) -> usize {
        let i = self.ring.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.ring[if i == self.ring.len() { 0 } else { i }];
        shard
    }

    /// Does this shard own the class with the given packet-set?
    pub fn owns_class(&self, set: &PacketSet) -> bool {
        self.owner_of(class_key(set)) == self.index
    }

    /// Does this shard own the work keyed by the given string (slot
    /// location, tenant name, tenant pair)?
    pub fn owns_str(&self, s: &str) -> bool {
        self.owner_of(str_key(s)) == self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rule;
    use crate::set::PacketSet;

    fn set_of(rule: &str) -> PacketSet {
        PacketSet::from_cube(parse_rule(rule).unwrap().matches.cube())
    }

    #[test]
    fn single_shard_owns_everything() {
        let s = ShardSpec::new(0, 1);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(s.owner_of(key), 0);
        }
        assert!(s.owns_class(&set_of("deny dst 1.0.0.0/8")));
        assert!(s.owns_str("A:1-in"));
        assert!(s.is_primary());
    }

    #[test]
    fn ownership_is_total_and_disjoint() {
        let count = 4;
        let specs: Vec<ShardSpec> = (0..count).map(|i| ShardSpec::new(i, count)).collect();
        let sets: Vec<PacketSet> = (0..32)
            .map(|i| set_of(&format!("deny dst {}.0.0.0/8", i + 1)))
            .collect();
        for set in &sets {
            let owners: Vec<usize> = specs
                .iter()
                .filter(|s| s.owns_class(set))
                .map(ShardSpec::index)
                .collect();
            assert_eq!(owners.len(), 1, "exactly one owner per class: {owners:?}");
        }
    }

    #[test]
    fn all_shards_agree_on_the_ring() {
        let a = ShardSpec::new(0, 3);
        let b = ShardSpec::new(2, 3);
        for key in [0u64, 42, u64::MAX / 2, u64::MAX] {
            assert_eq!(a.owner_of(key), b.owner_of(key));
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let count = 4;
        let spec = ShardSpec::new(0, count);
        let mut loads = vec![0usize; count];
        for i in 0..200u64 {
            loads[spec.owner_of(fnv1a(7, &i.to_be_bytes()))] += 1;
        }
        for (shard, &n) in loads.iter().enumerate() {
            assert!(n > 0, "shard {shard} owns nothing: {loads:?}");
        }
    }

    #[test]
    fn class_key_is_content_based() {
        let a = set_of("deny dst 1.0.0.0/8");
        let b = set_of("deny dst 1.0.0.0/8");
        let c = set_of("deny dst 2.0.0.0/8");
        assert_eq!(class_key(&a), class_key(&b));
        assert_ne!(class_key(&a), class_key(&c));
    }

    #[test]
    fn growing_the_ring_moves_a_minority_of_keys() {
        let four = ShardSpec::new(0, 4);
        let five = ShardSpec::new(0, 5);
        let total = 500u64;
        let moved = (0..total)
            .filter(|i| {
                let k = fnv1a(99, &i.to_be_bytes());
                four.owner_of(k) != five.owner_of(k)
            })
            .count();
        // Consistent hashing: ~1/5 of keys move; a modulo partition would
        // move ~4/5. Allow generous slack.
        assert!(
            moved * 2 < total as usize,
            "{moved}/{total} keys moved — not consistent"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = ShardSpec::new(3, 3);
    }
}
