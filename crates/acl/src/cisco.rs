//! Cisco IOS-style ACL ingestion and rendering.
//!
//! §7 lists "tricky data formats" among Jinjing's deployment challenges:
//! production rules arrive in vendor syntax, not a clean IR. This module
//! accepts the common extended-ACL subset and renders plans back out, so
//! the library can sit directly on exported device configurations.
//!
//! Accepted forms (named and numbered):
//!
//! ```text
//! ip access-list extended EDGE-IN
//!  10 deny   ip any 10.1.1.0 0.0.0.255
//!     permit tcp 192.168.0.0 0.0.255.255 any eq 443
//!     deny   udp any any range 8000 8999
//!     permit ip any any
//!
//! access-list 101 deny ip host 10.0.0.1 any
//! access-list 101 permit ip any any
//! ```
//!
//! Supported: protocols `ip`/`tcp`/`udp`/`icmp`/numeric; address forms
//! `any`, `host A.B.C.D`, `A.B.C.D W.W.W.W` (contiguous wildcard masks
//! only) and `A.B.C.D/len`; port operators `eq`/`range` (and `gt`/`lt`,
//! normalized to ranges) on the source and/or destination. Unsupported
//! constructs (non-contiguous wildcards, `established`, ICMP subtypes,
//! `log`, time ranges) are rejected with a line-precise error rather than
//! silently misread — the failure mode the paper's operators feared.

use crate::acl::Acl;
use crate::packet::{parse_ip, Proto};
use crate::rule::{Action, IpPrefix, MatchSpec, PortRange, Rule};
use std::fmt;

/// A parse failure, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CiscoError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for CiscoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CiscoError {}

fn err(line: usize, message: impl Into<String>) -> CiscoError {
    CiscoError {
        message: message.into(),
        line,
    }
}

/// One parsed access list with its name (or number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CiscoAcl {
    /// The list's name (`EDGE-IN`) or number (`101`).
    pub name: String,
    /// The translated ACL. Cisco lists end with an implicit deny, so the
    /// default action is [`Action::Deny`].
    pub acl: Acl,
}

/// Wildcard mask → prefix length, if contiguous. `0.0.0.255` ⇒ 24.
fn wildcard_to_len(mask: u32) -> Option<u32> {
    // A contiguous wildcard is a low-aligned run of ones: adding one must
    // carry all the way out (mask & (mask+1) == 0).
    if mask & mask.wrapping_add(1) == 0 {
        Some(32 - mask.count_ones())
    } else {
        None
    }
}

/// Parse one address clause, consuming tokens. Returns the prefix.
fn parse_addr(
    toks: &mut std::iter::Peekable<std::slice::Iter<'_, &str>>,
    line: usize,
) -> Result<IpPrefix, CiscoError> {
    match toks.next() {
        Some(&"any") => Ok(IpPrefix::any()),
        Some(&"host") => {
            let a = toks
                .next()
                .ok_or_else(|| err(line, "host needs an address"))?;
            let ip = parse_ip(a).ok_or_else(|| err(line, format!("bad address {a:?}")))?;
            Ok(IpPrefix::host(ip))
        }
        Some(&addr) if addr.contains('/') => {
            crate::parse::parse_prefix(addr).map_err(|e| err(line, e.to_string()))
        }
        Some(&addr) => {
            let ip = parse_ip(addr).ok_or_else(|| err(line, format!("bad address {addr:?}")))?;
            // Peek: a following token that parses as dotted-quad is the
            // wildcard mask; otherwise treat as a host.
            if let Some(&&next) = toks.peek() {
                if let Some(mask) = parse_ip(next) {
                    toks.next();
                    let len = wildcard_to_len(mask)
                        .ok_or_else(|| err(line, format!("non-contiguous wildcard mask {next}")))?;
                    return Ok(IpPrefix::new(ip, len));
                }
            }
            Ok(IpPrefix::host(ip))
        }
        None => Err(err(line, "missing address")),
    }
}

/// Parse an optional port operator (`eq N` / `range A B` / `gt N` / `lt N`).
fn parse_ports(
    toks: &mut std::iter::Peekable<std::slice::Iter<'_, &str>>,
    line: usize,
) -> Result<PortRange, CiscoError> {
    let op = match toks.peek() {
        Some(&&op @ ("eq" | "range" | "gt" | "lt")) => {
            toks.next();
            op
        }
        _ => return Ok(PortRange::any()),
    };
    let num =
        |toks: &mut std::iter::Peekable<std::slice::Iter<'_, &str>>| -> Result<u16, CiscoError> {
            let t = toks
                .next()
                .ok_or_else(|| err(line, format!("{op} needs a port")))?;
            t.parse().map_err(|_| err(line, format!("bad port {t:?}")))
        };
    match op {
        "eq" => {
            let p = num(toks)?;
            Ok(PortRange::single(p))
        }
        "range" => {
            let lo = num(toks)?;
            let hi = num(toks)?;
            if lo > hi {
                return Err(err(line, format!("inverted range {lo} {hi}")));
            }
            Ok(PortRange::new(lo, hi))
        }
        "gt" => {
            let p = num(toks)?;
            if p == u16::MAX {
                return Err(err(line, "gt 65535 matches nothing"));
            }
            Ok(PortRange::new(p + 1, u16::MAX))
        }
        "lt" => {
            let p = num(toks)?;
            if p == 0 {
                return Err(err(line, "lt 0 matches nothing"));
            }
            Ok(PortRange::new(0, p - 1))
        }
        _ => unreachable!(),
    }
}

/// Parse one entry body (everything after `permit`/`deny`).
fn parse_entry(tokens: &[&str], action: Action, line: usize) -> Result<Rule, CiscoError> {
    let mut toks = tokens.iter().peekable();
    let proto_tok = toks.next().ok_or_else(|| err(line, "missing protocol"))?;
    let proto = match *proto_tok {
        "ip" => None,
        "tcp" => Some(Proto::Tcp),
        "udp" => Some(Proto::Udp),
        "icmp" => Some(Proto::Icmp),
        other => {
            let n: u8 = other
                .parse()
                .map_err(|_| err(line, format!("unsupported protocol {other:?}")))?;
            Some(Proto::from_number(n))
        }
    };
    let src = parse_addr(&mut toks, line)?;
    let sport = parse_ports(&mut toks, line)?;
    let dst = parse_addr(&mut toks, line)?;
    let dport = parse_ports(&mut toks, line)?;
    if !sport.is_any() || !dport.is_any() {
        // Port operators are only meaningful for TCP/UDP.
        if !matches!(proto, Some(Proto::Tcp) | Some(Proto::Udp)) {
            return Err(err(line, "port operators require tcp or udp"));
        }
    }
    if let Some(&&extra) = toks.peek() {
        return Err(err(line, format!("unsupported trailing token {extra:?}")));
    }
    Ok(Rule::new(
        action,
        MatchSpec {
            src,
            dst,
            sport,
            dport,
            proto,
        },
    ))
}

/// Parse a configuration fragment containing named and/or numbered ACLs.
/// Lines outside ACL definitions are ignored (like a real config dump);
/// malformed *entries* are hard errors.
///
/// ```
/// use jinjing_acl::cisco::parse_config;
/// let lists = parse_config(
///     "ip access-list extended EDGE\n deny ip any 10.1.1.0 0.0.0.255\n permit ip any any\n",
/// ).unwrap();
/// assert_eq!(lists[0].name, "EDGE");
/// assert_eq!(lists[0].acl.len(), 2);
/// ```
pub fn parse_config(text: &str) -> Result<Vec<CiscoAcl>, CiscoError> {
    let mut acls: Vec<(String, Vec<Rule>)> = Vec::new();
    let mut current: Option<usize> = None; // index into acls (named mode)
    let push_rule = |acls: &mut Vec<(String, Vec<Rule>)>, name: &str, rule: Rule| {
        if let Some(entry) = acls.iter_mut().find(|(n, _)| n == name) {
            entry.1.push(rule);
        } else {
            acls.push((name.to_string(), vec![rule]));
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('!').next().unwrap_or("").trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        match toks.as_slice() {
            ["ip", "access-list", "extended", name] => {
                if acls.iter().any(|(n, _)| n == name) {
                    current = acls.iter().position(|(n, _)| n == name);
                } else {
                    acls.push((name.to_string(), Vec::new()));
                    current = Some(acls.len() - 1);
                }
            }
            ["access-list", number, action @ ("permit" | "deny"), rest @ ..] => {
                let act = if *action == "permit" {
                    Action::Permit
                } else {
                    Action::Deny
                };
                let rule = parse_entry(rest, act, lineno)?;
                push_rule(&mut acls, number, rule);
                current = None;
            }
            // Entry inside a named list (optionally sequence-numbered).
            [first, rest @ ..]
                if current.is_some()
                    && (matches!(*first, "permit" | "deny") || first.parse::<u32>().is_ok()) =>
            {
                let (act_tok, body) = if let Ok(_seq) = first.parse::<u32>() {
                    match rest.split_first() {
                        Some((a @ (&"permit" | &"deny"), b)) => (*a, b),
                        _ => return Err(err(lineno, "expected permit/deny after sequence number")),
                    }
                } else {
                    (*first, rest)
                };
                let act = if act_tok == "permit" {
                    Action::Permit
                } else {
                    Action::Deny
                };
                let rule = parse_entry(body, act, lineno)?;
                let idx = current.expect("guarded by matches! above");
                acls[idx].1.push(rule);
            }
            // Any other configuration line ends the current ACL block.
            _ => {
                current = None;
            }
        }
    }
    Ok(acls
        .into_iter()
        .map(|(name, rules)| CiscoAcl {
            name,
            // Cisco semantics: implicit deny at the end of every list.
            acl: Acl::new(rules, Action::Deny),
        })
        .collect())
}

/// Render a prefix in Cisco address/wildcard notation.
fn render_addr(p: &IpPrefix) -> String {
    if p.is_any() {
        "any".to_string()
    } else if p.len() == 32 {
        format!("host {}", crate::packet::fmt_ip(p.addr()))
    } else {
        let mask = if p.len() == 0 {
            u32::MAX
        } else {
            !0u32 >> p.len()
        };
        format!(
            "{} {}",
            crate::packet::fmt_ip(p.addr()),
            crate::packet::fmt_ip(mask)
        )
    }
}

fn render_ports(r: &PortRange) -> String {
    if r.is_any() {
        String::new()
    } else if r.lo() == r.hi() {
        format!(" eq {}", r.lo())
    } else {
        format!(" range {} {}", r.lo(), r.hi())
    }
}

/// Render an ACL as a named extended access list. A trailing explicit
/// `permit ip any any` is appended when the ACL's default action is permit
/// (Cisco's implicit default is deny).
pub fn render_named(name: &str, acl: &Acl) -> String {
    let mut out = format!("ip access-list extended {name}\n");
    use std::fmt::Write;
    for rule in acl.rules() {
        let m = &rule.matches;
        let proto = match m.proto {
            None => "ip".to_string(),
            Some(p) => p.to_string(),
        };
        let _ = writeln!(
            out,
            " {} {} {}{} {}{}",
            rule.action,
            proto,
            render_addr(&m.src),
            render_ports(&m.sport),
            render_addr(&m.dst),
            render_ports(&m.dport),
        );
    }
    if acl.default_action() == Action::Permit {
        let _ = writeln!(out, " permit ip any any");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    const SAMPLE: &str = "\
!
ip access-list extended EDGE-IN
 10 deny   ip any 10.1.1.0 0.0.0.255
    permit tcp 192.168.0.0 0.0.255.255 any eq 443
    deny   udp any any range 8000 8999
    permit ip any any
!
access-list 101 deny ip host 10.0.0.1 any
access-list 101 permit ip any any
";

    #[test]
    fn parses_named_and_numbered() {
        let acls = parse_config(SAMPLE).unwrap();
        assert_eq!(acls.len(), 2);
        assert_eq!(acls[0].name, "EDGE-IN");
        assert_eq!(acls[0].acl.len(), 4);
        assert_eq!(acls[1].name, "101");
        assert_eq!(acls[1].acl.len(), 2);
        assert_eq!(acls[0].acl.default_action(), Action::Deny);
    }

    #[test]
    fn semantics_match_cisco_reading() {
        let acls = parse_config(SAMPLE).unwrap();
        let edge = &acls[0].acl;
        // deny ip any 10.1.1.0/24
        assert!(!edge.permits(&Packet::new(0x0101_0101, 0x0a01_0105, 1, 2, 6)));
        // permit tcp 192.168/16 any eq 443
        assert!(edge.permits(&Packet::new(0xc0a8_0101, 0x0808_0808, 5555, 443, 6)));
        // deny udp any any range 8000 8999
        assert!(!edge.permits(&Packet::new(1, 2, 3, 8500, 17)));
        // trailing permit ip any any
        assert!(edge.permits(&Packet::new(1, 2, 3, 8500, 6)));
        // numbered list: deny host 10.0.0.1
        let n101 = &acls[1].acl;
        assert!(!n101.permits(&Packet::new(0x0a00_0001, 9, 1, 2, 6)));
        assert!(n101.permits(&Packet::new(0x0a00_0002, 9, 1, 2, 6)));
    }

    #[test]
    fn implicit_deny_applies() {
        let acls = parse_config("ip access-list extended X\n permit tcp any any eq 80\n").unwrap();
        let x = &acls[0].acl;
        assert!(x.permits(&Packet::new(1, 2, 3, 80, 6)));
        assert!(!x.permits(&Packet::new(1, 2, 3, 81, 6)));
    }

    #[test]
    fn gt_lt_normalize_to_ranges() {
        let acls = parse_config(
            "ip access-list extended X\n deny tcp any any gt 1023\n permit udp any lt 1024 any\n",
        )
        .unwrap();
        let rules = acls[0].acl.rules();
        assert_eq!(rules[0].matches.dport, PortRange::new(1024, u16::MAX));
        assert_eq!(rules[1].matches.sport, PortRange::new(0, 1023));
    }

    #[test]
    fn wildcard_masks() {
        assert_eq!(wildcard_to_len(0x0000_00ff), Some(24));
        assert_eq!(wildcard_to_len(0x0000_ffff), Some(16));
        assert_eq!(wildcard_to_len(0), Some(32));
        assert_eq!(wildcard_to_len(u32::MAX), Some(0));
        assert_eq!(wildcard_to_len(0x0000_ff00), None); // non-contiguous
        assert_eq!(wildcard_to_len(0x0101_0101), None);
    }

    #[test]
    fn rejects_unsupported_constructs() {
        for bad in [
            "ip access-list extended X\n permit tcp any any eq 80 established\n",
            "ip access-list extended X\n deny ip any 10.0.0.0 0.0.255.0\n",
            "ip access-list extended X\n permit icmp any any eq 80\n",
            "ip access-list extended X\n permit tcp any any range 90 80\n",
            "access-list 1 permit quic any any\n",
        ] {
            let e = parse_config(bad).unwrap_err();
            assert!(e.line >= 1, "{bad:?} should fail with a line number");
        }
    }

    #[test]
    fn non_acl_lines_are_skipped_and_end_blocks() {
        let cfg = "hostname core1\n\
                   ip access-list extended X\n permit ip any any\n\
                   interface Gi0/0\n\
                   ip access-list extended Y\n deny ip any any\n";
        let acls = parse_config(cfg).unwrap();
        assert_eq!(acls.len(), 2);
        assert_eq!(acls[0].acl.len(), 1);
        assert_eq!(acls[1].acl.len(), 1);
    }

    #[test]
    fn render_roundtrips_semantically() {
        let acls = parse_config(SAMPLE).unwrap();
        for c in &acls {
            let rendered = render_named(&c.name, &c.acl);
            let back = parse_config(&rendered).unwrap();
            assert_eq!(back.len(), 1);
            assert!(back[0].acl.equivalent(&c.acl), "{}:\n{rendered}", c.name);
        }
    }

    #[test]
    fn render_permit_default_appends_catch_all() {
        let acl = crate::acl::AclBuilder::default_permit()
            .deny_dst("6.0.0.0/8")
            .build();
        let text = render_named("OUT", &acl);
        assert!(text.contains("deny ip any 6.0.0.0 0.255.255.255"));
        assert!(text.trim_end().ends_with("permit ip any any"));
        let back = parse_config(&text).unwrap();
        assert!(back[0].acl.equivalent(&acl));
    }

    #[test]
    fn slash_notation_accepted() {
        let acls = parse_config("ip access-list extended X\n deny ip any 10.1.0.0/16\n").unwrap();
        assert_eq!(
            acls[0].acl.rules()[0].matches.dst.to_string(),
            "10.1.0.0/16"
        );
    }
}
