//! Differential and related rules — Definitions 4.1 / 4.2 and Theorem 4.1.
//!
//! The check primitive's headline optimization: instead of encoding whole
//! ACLs into the solver, identify the rules an update actually touched
//! (the *differential rules*, computed against the longest common
//! subsequence of the two rule lists) plus every rule overlapping them (the
//! *related rules*), and reason only about those. Theorem 4.1 guarantees the
//! reduction is sound: if the related-rule sub-ACLs are equivalent, so are
//! the full ACLs.
//!
//! We additionally expose the packet cover `H` (all packets matched by some
//! differential rule): a packet outside `H` meets the *same* rule
//! subsequence in `L` and `L'`, so it cannot witness an inconsistency.
//! Conjoining `h ∈ H` to the check formula is therefore sound *and*
//! complete, and further shrinks the solver's search space.

use crate::acl::Acl;
use crate::rule::Rule;
use crate::set::PacketSet;

/// Longest common subsequence of two rule lists, as index pairs
/// `(i, j)` with `a[i] == b[j]`, strictly increasing in both components.
pub fn lcs_pairs(a: &[Rule], b: &[Rule]) -> Vec<(usize, usize)> {
    let (n, m) = (a.len(), b.len());
    // Classic O(n·m) DP. ACLs are at most a few thousand rules, so this is
    // fine; the table is u32 to keep it compact.
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[idx(i, j)] = if a[i] == b[j] {
                dp[idx(i + 1, j + 1)] + 1
            } else {
                dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
            };
        }
    }
    let mut out = Vec::with_capacity(dp[idx(0, 0)] as usize);
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// The differential rules `D_{L,L'}` of Definition 4.1: rules of either list
/// that are not part of the longest common subsequence (i.e. were added,
/// removed, or moved by the update).
pub fn differential_rules(l: &Acl, l2: &Acl) -> Vec<Rule> {
    let pairs = lcs_pairs(l.rules(), l2.rules());
    let in_a: Vec<bool> = {
        let mut v = vec![false; l.len()];
        for &(i, _) in &pairs {
            v[i] = true;
        }
        v
    };
    let in_b: Vec<bool> = {
        let mut v = vec![false; l2.len()];
        for &(_, j) in &pairs {
            v[j] = true;
        }
        v
    };
    let mut out: Vec<Rule> = Vec::new();
    for (i, r) in l.rules().iter().enumerate() {
        if !in_a[i] {
            out.push(*r);
        }
    }
    for (j, r) in l2.rules().iter().enumerate() {
        if !in_b[j] && !out.contains(r) {
            out.push(*r);
        }
    }
    out
}

/// The related rules `R(L, S)` of Definition 4.2: the sub-ACL of `L` keeping
/// only rules that overlap some rule in `S` (satisfiable `m_k ∧ m_k'`).
/// Order and the default action are preserved, so the result is itself a
/// well-formed ACL.
pub fn related_rules(l: &Acl, s: &[Rule]) -> Acl {
    // Index the probe set once (the §5.5 search tree) so relatedness is
    // O(|L| log |S|) instead of O(|L|·|S|).
    let tree = crate::rtree::RuleTree::build(s.iter().map(|r| r.matches).collect());
    let kept: Vec<Rule> = l
        .rules()
        .iter()
        .filter(|k| tree.overlaps_any(&k.matches))
        .copied()
        .collect();
    Acl::new(kept, l.default_action())
}

/// The packet cover `H` from the proof of Theorem 4.1: every packet matched
/// by at least one differential rule. Inconsistencies can only live in `H`.
pub fn differential_cover(diff: &[Rule]) -> PacketSet {
    let mut h = PacketSet::empty();
    for r in diff {
        h = h.union(&PacketSet::from_cube(r.matches.cube()));
    }
    h
}

/// Convenience bundle: everything check's preprocessing needs for one
/// `(L, L')` pair.
#[derive(Debug, Clone)]
pub struct AclDiff {
    /// The differential rules `D_{L,L'} ∪ D_{L',L}`.
    pub diff: Vec<Rule>,
    /// `R(L, diff)` — reduced "before" ACL.
    pub reduced_before: Acl,
    /// `R(L', diff)` — reduced "after" ACL.
    pub reduced_after: Acl,
    /// The packet cover of the differential rules.
    pub cover: PacketSet,
}

impl AclDiff {
    /// Diff one ACL pair. When `l == l'` the diff is empty and the reduced
    /// ACLs have no rules.
    ///
    /// A changed *default action* is a change to the implicit trailing
    /// match-all rule, so it contributes a match-all differential rule —
    /// every packet can then witness a difference and every rule is
    /// related (the reduction degenerates gracefully to the full ACLs).
    pub fn compute(l: &Acl, l2: &Acl) -> AclDiff {
        let mut diff = differential_rules(l, l2);
        if l.default_action() != l2.default_action() {
            diff.push(crate::rule::Rule::all(l2.default_action()));
        }
        let reduced_before = related_rules(l, &diff);
        let reduced_after = related_rules(l2, &diff);
        let cover = differential_cover(&diff);
        AclDiff {
            diff,
            reduced_before,
            reduced_after,
            cover,
        }
    }

    /// `true` when the update did not touch this ACL at all.
    pub fn is_unchanged(&self) -> bool {
        self.diff.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AclBuilder;
    use crate::packet::Packet;

    fn pkt(dst: u32) -> Packet {
        Packet::to_dst(dst)
    }

    #[test]
    fn lcs_of_identical_lists_is_everything() {
        let a = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("2.0.0.0/8")
            .build();
        let pairs = lcs_pairs(a.rules(), a.rules());
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
        assert!(differential_rules(&a, &a).is_empty());
    }

    #[test]
    fn diff_detects_insertion() {
        let before = AclBuilder::default_permit().deny_dst("6.0.0.0/8").build();
        let after = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("2.0.0.0/8")
            .deny_dst("6.0.0.0/8")
            .build();
        let d = differential_rules(&before, &after);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|r| r.to_string().starts_with("deny dst")));
    }

    #[test]
    fn diff_detects_removal_and_reorder() {
        let before = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .permit_dst("2.0.0.0/8")
            .build();
        let after = AclBuilder::default_permit()
            .permit_dst("2.0.0.0/8")
            .deny_dst("1.0.0.0/8")
            .build();
        // A swap keeps one rule in the LCS; the other shows up from both
        // sides but is deduplicated.
        let d = differential_rules(&before, &after);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn related_rules_keep_order_and_default() {
        let acl = AclBuilder::default_deny()
            .deny_dst("1.0.0.0/8")
            .permit_dst("9.0.0.0/8")
            .permit_dst("1.2.0.0/16")
            .build();
        let probe = vec![Rule::on_dst(
            crate::rule::Action::Deny,
            crate::parse::parse_prefix("1.0.0.0/8").unwrap(),
        )];
        let r = related_rules(&acl, &probe);
        assert_eq!(r.len(), 2); // 1/8 rule and the nested 1.2/16, not 9/8
        assert_eq!(r.default_action(), crate::rule::Action::Deny);
        assert_eq!(r.rules()[0].to_string(), "deny dst 1.0.0.0/8");
        assert_eq!(r.rules()[1].to_string(), "permit dst 1.2.0.0/16");
    }

    #[test]
    fn theorem_4_1_on_the_running_example() {
        // Moving "deny dst 1/8, deny dst 2/8" off D2: reduced ACLs must
        // still disagree exactly where the originals disagree.
        let before = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("2.0.0.0/8")
            .build();
        let after = Acl::permit_all();
        let d = AclDiff::compute(&before, &after);
        assert_eq!(d.diff.len(), 2);
        // Every packet where before/after disagree lies in the cover.
        for dst in [0x0100_0001u32, 0x0200_0001, 0x0300_0001] {
            let p = pkt(dst);
            if before.permits(&p) != after.permits(&p) {
                assert!(d.cover.contains(&p));
            }
        }
        // And the reduced pair disagrees exactly like the full pair inside
        // the cover.
        for dst in [0x0100_0001u32, 0x0200_0001] {
            let p = pkt(dst);
            assert_eq!(
                d.reduced_before.permits(&p) == d.reduced_after.permits(&p),
                before.permits(&p) == after.permits(&p)
            );
        }
    }

    #[test]
    fn packets_outside_cover_never_disagree() {
        // Randomized-ish structural case: swap a deep rule, check that the
        // full ACLs agree outside H (the completeness half of our H
        // conjunct).
        let before = AclBuilder::default_permit()
            .deny_dst("10.0.0.0/8")
            .permit_dst("10.1.0.0/16")
            .deny_dst("172.16.0.0/12")
            .build();
        let after = AclBuilder::default_permit()
            .deny_dst("10.0.0.0/8")
            .deny_dst("172.16.0.0/12")
            .build();
        let d = AclDiff::compute(&before, &after);
        for dst in (0u32..0xff00_0000).step_by(0x0100_0000 / 4) {
            let p = pkt(dst);
            if !d.cover.contains(&p) {
                assert_eq!(before.permits(&p), after.permits(&p), "dst {dst:#x}");
            }
        }
    }

    #[test]
    fn unchanged_acl_has_empty_diff() {
        let acl = AclBuilder::default_permit().deny_dst("6.0.0.0/8").build();
        let d = AclDiff::compute(&acl, &acl.clone());
        assert!(d.is_unchanged());
        assert!(d.cover.is_empty());
        assert!(d.reduced_before.is_empty());
    }
}

/// Property-style tests over a deterministic xorshift stream (so they run
/// in the dependency-free offline build too, unlike the proptest suites).
#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::acl::AclBuilder;
    use crate::packet::Packet;
    use crate::rule::Action;

    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            // Same generator the rtree tests use.
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    /// A random ACL over a deliberately small, heavily overlapping prefix
    /// universe (src and dst rules, both actions, both defaults).
    fn random_acl(rng: &mut Rng) -> Acl {
        let n = (rng.next() % 10) as usize;
        let mut b = if rng.next() % 2 == 0 {
            AclBuilder::default_permit()
        } else {
            AclBuilder::default_deny()
        };
        for _ in 0..n {
            let p = format!(
                "{}.{}.0.0/{}",
                rng.next() % 3,
                rng.next() % 3,
                8 + rng.next() % 17
            );
            b = match rng.next() % 4 {
                0 => b.permit_dst(&p),
                1 => b.deny_dst(&p),
                2 => b.permit_src(&p),
                _ => b.deny_src(&p),
            };
        }
        b.build()
    }

    /// A random small mutation of `acl`: drop a rule, duplicate-and-move a
    /// rule, or flip the default.
    fn mutate(rng: &mut Rng, acl: &Acl) -> Acl {
        let mut rules: Vec<Rule> = acl.rules().to_vec();
        let mut default = acl.default_action();
        match rng.next() % 3 {
            0 if !rules.is_empty() => {
                let i = (rng.next() as usize) % rules.len();
                rules.remove(i);
            }
            1 if !rules.is_empty() => {
                let i = (rng.next() as usize) % rules.len();
                let r = rules[i];
                let j = (rng.next() as usize) % (rules.len() + 1);
                rules.insert(j, r);
            }
            _ => {
                default = match default {
                    Action::Permit => Action::Deny,
                    Action::Deny => Action::Permit,
                };
            }
        }
        Acl::new(rules, default)
    }

    fn random_packet(rng: &mut Rng) -> Packet {
        // Addresses concentrated where the rule universe lives, so packets
        // actually exercise the rules.
        let ip = |r: &mut Rng| ((r.next() % 3) as u32) << 24 | (((r.next() % 3) as u32) << 16);
        Packet::new(
            ip(rng),
            ip(rng),
            (rng.next() % 1024) as u16,
            (rng.next() % 1024) as u16,
            6,
        )
    }

    #[test]
    fn diff_of_an_acl_with_itself_is_empty() {
        let mut rng = Rng(0x5eed_0001);
        for _ in 0..50 {
            let acl = random_acl(&mut rng);
            assert!(differential_rules(&acl, &acl).is_empty(), "{acl}");
            let d = AclDiff::compute(&acl, &acl.clone());
            assert!(d.is_unchanged());
            assert!(d.cover.is_empty());
            assert!(d.reduced_before.is_empty() && d.reduced_after.is_empty());
        }
    }

    #[test]
    fn cover_over_approximates_the_symmetric_difference() {
        // Theorem 4.1's `H`: any packet the two ACLs decide differently
        // must be matched by some differential rule.
        let mut rng = Rng(0x5eed_0002);
        for case in 0..50 {
            let before = random_acl(&mut rng);
            let after = mutate(&mut rng, &before);
            let d = AclDiff::compute(&before, &after);
            for _ in 0..200 {
                let p = random_packet(&mut rng);
                if before.permits(&p) != after.permits(&p) {
                    assert!(
                        d.cover.contains(&p),
                        "case {case}: disagreement on {p} escaped the cover\nbefore: {before}\nafter: {after}"
                    );
                }
            }
        }
    }

    #[test]
    fn unchanged_iff_rule_lists_and_defaults_equal() {
        let mut rng = Rng(0x5eed_0003);
        for _ in 0..50 {
            let before = random_acl(&mut rng);
            let after = if rng.next() % 2 == 0 {
                before.clone()
            } else {
                mutate(&mut rng, &before)
            };
            let d = AclDiff::compute(&before, &after);
            let same = before.rules() == after.rules()
                && before.default_action() == after.default_action();
            assert_eq!(d.is_unchanged(), same, "\nbefore: {before}\nafter: {after}");
        }
    }

    /// Historical proptest shrink (was pinned in
    /// `tests/prop_acl_semantics.proptest-regressions`): two *empty* ACLs
    /// whose only difference is the default action. There are no rule
    /// pairs to relate, so the default-action flip must be covered
    /// explicitly — the cover is all of header space and the reduced pair
    /// reproduces the disagreement on the shrunken witness (and, being
    /// rule-free, everywhere else).
    #[test]
    fn default_action_only_diff_covers_everything() {
        let a = Acl::new(vec![], Action::Permit);
        let b = Acl::new(vec![], Action::Deny);
        let d = AclDiff::compute(&a, &b);
        assert!(!d.is_unchanged());
        assert!(d.cover.same_set(&PacketSet::full()));
        let p = Packet::new(0, 0, 0, 0, 6); // the shrunken witness
        assert!(d.cover.contains(&p), "disagreement outside cover");
        assert_eq!(d.reduced_before.permits(&p), a.permits(&p));
        assert_eq!(d.reduced_after.permits(&p), b.permits(&p));
    }

    #[test]
    fn reduced_pair_disagrees_exactly_like_the_full_pair_inside_the_cover() {
        // The other half of Theorem 4.1 (sampled): within `H`, the
        // related-rule sub-ACLs witness the same (in)equivalence as the
        // full ACLs.
        let mut rng = Rng(0x5eed_0004);
        for case in 0..30 {
            let before = random_acl(&mut rng);
            let after = mutate(&mut rng, &before);
            let d = AclDiff::compute(&before, &after);
            for _ in 0..200 {
                let p = random_packet(&mut rng);
                if !d.cover.contains(&p) {
                    continue;
                }
                assert_eq!(
                    d.reduced_before.permits(&p) == d.reduced_after.permits(&p),
                    before.permits(&p) == after.permits(&p),
                    "case {case}: {p}\nbefore: {before}\nafter: {after}"
                );
            }
        }
    }
}
