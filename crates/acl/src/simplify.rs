//! Decision-model-preserving ACL simplification (§4.2 "Simplifying the
//! final ACL").
//!
//! After fixing or synthesis, ACLs often carry redundant rules (e.g. the
//! running example ends with `permit dst 1.0.0.0/8, permit dst 2.0.0.0/8,
//! deny dst 1.0.0.0/8, deny dst 2.0.0.0/8, deny dst 6.0.0.0/8, permit all`
//! where the first four rules are removable). A rule is *redundant* when
//! deleting it leaves the ACL's decision model unchanged; this module
//! removes a maximal set of such rules.
//!
//! Redundancy of rule `i` is decided exactly with the packet-set algebra:
//! let `E_i` be the packets that actually reach rule `i` (its match minus
//! everything matched earlier). Removing rule `i` makes those packets fall
//! through to the tail; the rule is redundant iff the tail (rules `i+1…` +
//! default) gives every packet of `E_i` the same action the rule did.

use crate::acl::Acl;
use crate::rtree::RuleTree;
use crate::rule::Rule;
use crate::set::PacketSet;

fn tree_of(acl: &Acl) -> RuleTree {
    RuleTree::build(acl.rules().iter().map(|r| r.matches).collect())
}

/// Statistics from a simplification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimplifyStats {
    /// Rules in the input ACL.
    pub before: usize,
    /// Rules in the simplified ACL.
    pub after: usize,
    /// Fixpoint passes executed.
    pub passes: usize,
}

/// Is rule `idx` of `acl` redundant (removable without changing any
/// decision)?
///
/// Convenience wrapper over [`rule_is_redundant_with`] that builds the
/// overlap index on the spot; callers asking about many rules of the same
/// ACL (like [`simplify`]) should build the [`RuleTree`] once and reuse it.
pub fn rule_is_redundant(acl: &Acl, idx: usize) -> bool {
    rule_is_redundant_with(acl, idx, &tree_of(acl))
}

/// Is rule `idx` of `acl` redundant, using a prebuilt §5.5 [`RuleTree`]
/// over the ACL's match specs for candidate search?
///
/// Only rules whose match cubes can intersect rule `idx` are consulted:
/// the packets reaching rule `idx` (`E_i`) are a subset of its own cube,
/// so earlier non-overlapping rules subtract nothing and later
/// non-overlapping rules can never be the first tail match for a packet of
/// `E_i`. The decision is therefore identical to the naive full scan — see
/// the `tree_matches_naive_reference` regression test.
///
/// `tree` must index exactly `acl.rules()[k].matches` at position `k`.
pub fn rule_is_redundant_with(acl: &Acl, idx: usize, tree: &RuleTree) -> bool {
    let rules = acl.rules();
    assert!(idx < rules.len(), "rule index out of bounds");
    let mut overlapping = tree.overlapping(&rules[idx].matches);
    overlapping.sort_unstable();
    // Packets that reach rule idx: its cube minus every earlier
    // overlapping cube (non-overlapping ones subtract nothing).
    let mut effective = PacketSet::from_cube(rules[idx].matches.cube());
    for &k in overlapping.iter().take_while(|&&k| k < idx) {
        if effective.is_empty() {
            return true; // fully shadowed
        }
        effective = effective.subtract(&PacketSet::from_cube(rules[k].matches.cube()));
    }
    if effective.is_empty() {
        return true;
    }
    // Decision of the tail ACL on those packets; rules that cannot
    // intersect rule idx's cube can never match a packet of `effective`,
    // so the overlapping subsequence preserves first-match order.
    let tail_rules: Vec<Rule> = overlapping
        .iter()
        .skip_while(|&&k| k <= idx)
        .map(|&k| rules[k])
        .collect();
    let tail = Acl::new(tail_rules, acl.default_action());
    match tail.uniform_decision(&effective) {
        Some(a) => a == rules[idx].action,
        None => false,
    }
}

/// Remove a maximal set of redundant rules, preserving the decision model.
///
/// Greedy bottom-up scan repeated to a fixpoint: removing one rule can make
/// another removable (e.g. a permit that was only needed to shield a deny),
/// so a single pass is not enough for maximality.
pub fn simplify(acl: &Acl) -> (Acl, SimplifyStats) {
    let mut current = acl.clone();
    let mut stats = SimplifyStats {
        before: acl.len(),
        after: acl.len(),
        passes: 0,
    };
    let mut tree = tree_of(&current);
    loop {
        stats.passes += 1;
        let mut removed_any = false;
        // Bottom-up so earlier removals don't shift unprocessed indices.
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            if rule_is_redundant_with(&current, i, &tree) {
                let mut rules: Vec<Rule> = current.rules().to_vec();
                rules.remove(i);
                current = Acl::new(rules, current.default_action());
                // The index maps positions to rules; rebuild after removal.
                tree = tree_of(&current);
                removed_any = true;
            }
        }
        if !removed_any {
            break;
        }
    }
    stats.after = current.len();
    debug_assert!(
        current.equivalent(acl),
        "simplify changed the decision model"
    );
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AclBuilder;
    use crate::packet::Packet;

    #[test]
    fn removes_rule_shadowed_by_earlier_rule() {
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16") // shadowed
            .build();
        let (s, stats) = simplify(&acl);
        assert_eq!(s.len(), 1);
        assert_eq!(stats.before, 2);
        assert_eq!(stats.after, 1);
        assert!(s.equivalent(&acl));
    }

    #[test]
    fn removes_rule_agreeing_with_default() {
        let acl = AclBuilder::default_permit()
            .permit_dst("9.0.0.0/8") // same as falling through
            .deny_dst("6.0.0.0/8")
            .build();
        let (s, _) = simplify(&acl);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rules()[0].to_string(), "deny dst 6.0.0.0/8");
    }

    #[test]
    fn keeps_load_bearing_rules() {
        let acl = AclBuilder::default_permit()
            .permit_dst("6.1.0.0/16") // shields part of the deny — needed
            .deny_dst("6.0.0.0/8")
            .build();
        let (s, _) = simplify(&acl);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn paper_fixing_example_simplifies_to_two_rules() {
        // §4.2: after fixing, A1 is "permit dst 1/8, permit dst 2/8,
        // deny dst 1/8, deny dst 2/8, deny dst 6/8, permit all" and the
        // paper says the first four rules are redundant.
        let acl = AclBuilder::default_permit()
            .permit_dst("1.0.0.0/8")
            .permit_dst("2.0.0.0/8")
            .deny_dst("1.0.0.0/8")
            .deny_dst("2.0.0.0/8")
            .deny_dst("6.0.0.0/8")
            .build();
        let (s, _) = simplify(&acl);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rules()[0].to_string(), "deny dst 6.0.0.0/8");
        assert!(s.equivalent(&acl));
        // Spot check the semantics survived.
        assert!(s.permits(&Packet::to_dst(0x0100_0001)));
        assert!(!s.permits(&Packet::to_dst(0x0600_0001)));
    }

    #[test]
    fn fixpoint_cascade() {
        // The deny 1.2/16 is only non-redundant because of the permit
        // 1.2.3/24 above it; but that permit agrees with... construct a
        // chain where one removal enables the next.
        let acl = AclBuilder::default_deny()
            .deny_dst("1.2.3.0/24") // agrees with the deny below → redundant
            .deny_dst("1.2.0.0/16") // then agrees with default deny → redundant
            .build();
        let (s, stats) = simplify(&acl);
        assert_eq!(s.len(), 0);
        assert!(stats.passes >= 1);
        assert!(s.equivalent(&acl));
    }

    #[test]
    fn empty_acl_is_fixpoint() {
        let acl = Acl::permit_all();
        let (s, stats) = simplify(&acl);
        assert_eq!(s.len(), 0);
        assert_eq!(stats.passes, 1);
    }

    /// The pre-RuleTree implementation, kept verbatim as the oracle.
    fn naive_rule_is_redundant(acl: &Acl, idx: usize) -> bool {
        let rules = acl.rules();
        let mut effective = PacketSet::from_cube(rules[idx].matches.cube());
        for r in &rules[..idx] {
            if effective.is_empty() {
                return true;
            }
            effective = effective.subtract(&PacketSet::from_cube(r.matches.cube()));
        }
        if effective.is_empty() {
            return true;
        }
        let tail = Acl::new(rules[idx + 1..].to_vec(), acl.default_action());
        match tail.uniform_decision(&effective) {
            Some(a) => a == rules[idx].action,
            None => false,
        }
    }

    fn naive_simplify(acl: &Acl) -> (Acl, SimplifyStats) {
        let mut current = acl.clone();
        let mut stats = SimplifyStats {
            before: acl.len(),
            after: acl.len(),
            passes: 0,
        };
        loop {
            stats.passes += 1;
            let mut removed_any = false;
            let mut i = current.len();
            while i > 0 {
                i -= 1;
                if naive_rule_is_redundant(&current, i) {
                    let mut rules: Vec<Rule> = current.rules().to_vec();
                    rules.remove(i);
                    current = Acl::new(rules, current.default_action());
                    removed_any = true;
                }
            }
            if !removed_any {
                break;
            }
        }
        stats.after = current.len();
        (current, stats)
    }

    #[test]
    fn tree_matches_naive_reference() {
        // Deterministic xorshift stream (same generator as the rtree
        // tests); random prefix-pair ACLs with heavy overlap.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60 {
            let n = 1 + (next() % 12) as usize;
            let mut b = if case % 2 == 0 {
                AclBuilder::default_permit()
            } else {
                AclBuilder::default_deny()
            };
            for _ in 0..n {
                let dst = format!("{}.{}.0.0/{}", next() % 4, next() % 4, 8 + (next() % 17));
                b = match next() % 4 {
                    0 => b.permit_dst(&dst),
                    1 => b.deny_dst(&dst),
                    2 => b.permit_src(&dst),
                    _ => b.deny_src(&dst),
                };
            }
            let acl = b.build();
            let tree = tree_of(&acl);
            for i in 0..acl.len() {
                assert_eq!(
                    rule_is_redundant_with(&acl, i, &tree),
                    naive_rule_is_redundant(&acl, i),
                    "case {case}, rule {i}: {acl}"
                );
            }
            let (fast, fast_stats) = simplify(&acl);
            let (slow, slow_stats) = naive_simplify(&acl);
            assert_eq!(fast.rules(), slow.rules(), "case {case}: {acl}");
            assert_eq!(fast.default_action(), slow.default_action());
            assert_eq!(fast_stats, slow_stats, "case {case}");
        }
    }

    #[test]
    fn trailing_explicit_default_rule_is_removed() {
        let acl = AclBuilder::default_permit()
            .deny_dst("6.0.0.0/8")
            .rule(crate::rule::Rule::all(crate::rule::Action::Permit))
            .build();
        let (s, _) = simplify(&acl);
        assert_eq!(s.len(), 1);
    }
}
