//! Predicate-refinement partitioning: the engine behind FEC, AEC and DEC
//! derivation.
//!
//! Given a universe of traffic and a family of predicates (each an exact
//! [`PacketSet`]), [`refine`] computes the partition of the universe into
//! *atoms*: maximal sets on which every predicate is constant. Two packets
//! land in the same atom iff every predicate agrees on them — exactly the
//! equivalence classes of §4.1 (predicates = forwarding models `g`), §5.1
//! (predicates = ACL permit-sets) and §5.3 (both together).
//!
//! The worst case is `2^n` atoms, but — as §9 of the paper observes — real
//! (and realistic synthetic) rule sets are convergent and the growth stays
//! polynomial; we additionally expose [`RefineLimits`] so callers can bound
//! the work and fail loudly rather than melt.

use crate::set::PacketSet;

/// Caps on the refinement computation.
#[derive(Debug, Clone, Copy)]
pub struct RefineLimits {
    /// Maximum number of atoms before giving up.
    pub max_classes: usize,
}

impl Default for RefineLimits {
    fn default() -> RefineLimits {
        RefineLimits {
            max_classes: 1_000_000,
        }
    }
}

/// Error: the class count exceeded [`RefineLimits::max_classes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassExplosion {
    /// The limit that was exceeded.
    pub limit: usize,
    /// How many predicates had been applied when the limit tripped.
    pub predicates_done: usize,
}

impl std::fmt::Display for ClassExplosion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "equivalence class explosion: more than {} classes after {} predicates",
            self.limit, self.predicates_done
        )
    }
}

impl std::error::Error for ClassExplosion {}

/// One equivalence class: the packets plus the bit-signature of which
/// predicates hold on it (in the order the predicates were supplied).
#[derive(Debug, Clone)]
pub struct AtomClass {
    /// The packets in the class.
    pub set: PacketSet,
    /// `signature[i]` = does predicate `i` hold on this class?
    pub signature: Vec<bool>,
}

/// Drop duplicate predicates (syntactically identical cube lists). Two
/// equal predicates refine identically, so deduplication preserves the atom
/// partition while skipping whole refinement passes — FIB-derived
/// forwarding predicates in symmetric topologies are frequently identical
/// across devices.
pub fn dedupe_predicates(predicates: Vec<PacketSet>) -> Vec<PacketSet> {
    use std::collections::HashSet;
    let mut seen: HashSet<Vec<crate::cube::Cube>> = HashSet::new();
    let mut out = Vec::with_capacity(predicates.len());
    for p in predicates {
        let mut key = p.cubes().to_vec();
        key.sort_by_key(|c| format!("{c:?}"));
        if seen.insert(key) {
            out.push(p);
        }
    }
    out
}

/// Partition `universe` into atoms of the given predicates.
///
/// Every returned class is non-empty; classes are pairwise disjoint and
/// cover `universe`; each predicate is constant on each class.
pub fn refine(
    universe: &PacketSet,
    predicates: &[PacketSet],
    limits: RefineLimits,
) -> Result<Vec<AtomClass>, ClassExplosion> {
    let mut classes: Vec<AtomClass> = Vec::new();
    if universe.is_empty() {
        return Ok(classes);
    }
    classes.push(AtomClass {
        set: universe.clone(),
        signature: Vec::new(),
    });
    for (pi, pred) in predicates.iter().enumerate() {
        let mut next: Vec<AtomClass> = Vec::with_capacity(classes.len());
        for class in classes {
            let inside = class.set.intersect(pred);
            if inside.is_empty() {
                let mut sig = class.signature;
                sig.push(false);
                next.push(AtomClass {
                    set: class.set,
                    signature: sig,
                });
                continue;
            }
            let outside = class.set.subtract(pred);
            if outside.is_empty() {
                let mut sig = class.signature;
                sig.push(true);
                next.push(AtomClass {
                    set: class.set,
                    signature: sig,
                });
            } else {
                // Splitting fragments representations; keep them compact
                // (coalesce is exact) so later passes and consumers stay
                // fast.
                let mut sig_in = class.signature.clone();
                sig_in.push(true);
                next.push(AtomClass {
                    set: compact(inside),
                    signature: sig_in,
                });
                let mut sig_out = class.signature;
                sig_out.push(false);
                next.push(AtomClass {
                    set: compact(outside),
                    signature: sig_out,
                });
            }
            if next.len() > limits.max_classes {
                return Err(ClassExplosion {
                    limit: limits.max_classes,
                    predicates_done: pi + 1,
                });
            }
        }
        classes = next;
    }
    Ok(classes)
}

/// Re-compress a class representation when it has fragmented.
fn compact(set: PacketSet) -> PacketSet {
    if set.cube_count() > 24 {
        set.coalesce()
    } else {
        set
    }
}

/// Further split each class of an existing partition by another family of
/// predicates — how DECs are carved out of unsolved AECs (§5.3: "DEC is
/// working as a conjunction of FEC and AEC").
pub fn refine_class(
    class: &PacketSet,
    predicates: &[PacketSet],
    limits: RefineLimits,
) -> Result<Vec<AtomClass>, ClassExplosion> {
    refine(class, predicates, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;
    use crate::interval::Interval;
    use crate::packet::Field;

    fn dst(lo: u64, hi: u64) -> PacketSet {
        PacketSet::from_cube(Cube::full().with(Field::DstIp, Interval::new(lo, hi)))
    }

    #[test]
    fn no_predicates_yields_universe() {
        let u = dst(0, 100);
        let classes = refine(&u, &[], RefineLimits::default()).unwrap();
        assert_eq!(classes.len(), 1);
        assert!(classes[0].set.same_set(&u));
        assert!(classes[0].signature.is_empty());
    }

    #[test]
    fn single_predicate_splits_in_two() {
        let u = dst(0, 100);
        let p = dst(30, 60);
        let classes = refine(&u, std::slice::from_ref(&p), RefineLimits::default()).unwrap();
        assert_eq!(classes.len(), 2);
        let inside = classes.iter().find(|c| c.signature == [true]).unwrap();
        let outside = classes.iter().find(|c| c.signature == [false]).unwrap();
        assert!(inside.set.same_set(&dst(30, 60)));
        assert!(outside.set.same_set(&dst(0, 29).union(&dst(61, 100))));
    }

    #[test]
    fn partition_properties_hold() {
        let u = dst(0, 1000);
        let preds = vec![dst(0, 499), dst(250, 750), dst(900, 2000)];
        let classes = refine(&u, &preds, RefineLimits::default()).unwrap();
        // Non-empty, pairwise disjoint, covering, predicate-constant.
        let mut cover = PacketSet::empty();
        for (i, c) in classes.iter().enumerate() {
            assert!(!c.set.is_empty());
            for d in &classes[i + 1..] {
                assert!(!c.set.intersects(&d.set));
            }
            cover = cover.union(&c.set);
            for (pi, p) in preds.iter().enumerate() {
                if c.signature[pi] {
                    assert!(c.set.is_subset(p));
                } else {
                    assert!(!c.set.intersects(p));
                }
            }
        }
        assert!(cover.same_set(&u));
    }

    #[test]
    fn figure1_fec_class_structure() {
        // Figure 1: traffic 1..7 (dst prefixes 1/8..7/8); the forwarding
        // predicates collapse {2,3} and {5,6}. We model the g predicates
        // loosely: the refinement must produce the five FECs of §4.1.
        let block = |n: u64| dst(n << 24, ((n + 1) << 24) - 1);
        let universe = dst(1 << 24, (8 << 24) - 1);
        // Predicates distinguishing the classes as in the example:
        let preds = vec![
            block(1),                  // traffic 1 routes alone
            block(2).union(&block(3)), // 2,3 share all forwarding
            block(4),
            block(5).union(&block(6)),
            block(7),
        ];
        let classes = refine(&universe, &preds, RefineLimits::default()).unwrap();
        assert_eq!(classes.len(), 5);
    }

    #[test]
    fn explosion_guard_trips() {
        // Predicate k = "bit (31-k) of dst is set": 6 independent bits give
        // 2^6 atoms, tripping a limit of 10.
        let u = PacketSet::full();
        let preds: Vec<PacketSet> = (0..6u32)
            .map(|k| {
                // Union of all prefixes of length k+1 whose (k+1)-th bit is 1.
                let cubes: Vec<Cube> = (0..(1u64 << k))
                    .map(|upper| {
                        let addr = (upper << (32 - k)) | (1u64 << (31 - k));
                        Cube::full().with(Field::DstIp, Interval::from_prefix(addr, k + 1, 32))
                    })
                    .collect();
                PacketSet::from_cubes(cubes)
            })
            .collect();
        let err = refine(&u, &preds, RefineLimits { max_classes: 10 }).unwrap_err();
        assert_eq!(err.limit, 10);
    }

    #[test]
    fn empty_universe_yields_no_classes() {
        let classes = refine(&PacketSet::empty(), &[dst(0, 5)], RefineLimits::default()).unwrap();
        assert!(classes.is_empty());
    }

    #[test]
    fn refine_class_subdivides() {
        let class = dst(0, 99);
        let sub = refine_class(&class, &[dst(0, 49)], RefineLimits::default()).unwrap();
        assert_eq!(sub.len(), 2);
    }
}
