//! Textual syntax for rules and ACLs.
//!
//! Grammar (one rule per line, `#` comments, blank lines ignored):
//!
//! ```text
//! rule    := action ( "all" | clause+ )
//! action  := "permit" | "deny"
//! clause  := "src" prefix | "dst" prefix
//!          | "sport" ports | "dport" ports
//!          | "proto" proto
//! prefix  := A.B.C.D [ "/" len ]          (bare address = /32)
//! ports   := N | N "-" M
//! proto   := "tcp" | "udp" | "icmp" | N
//! acl     := rule* [ "default" action ]   (default defaults to permit)
//! ```
//!
//! This mirrors the notation used throughout the paper's figures
//! (`deny dst 1.0.0.0/8`, `permit all`, …).

use crate::acl::Acl;
use crate::packet::{parse_ip, Proto};
use crate::rule::{Action, IpPrefix, MatchSpec, PortRange, Rule};
use std::fmt;

/// Error from rule/ACL parsing, with a human-readable message and, for
/// multi-line input, the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number in multi-line input; 0 for single-rule parses.
    pub line: usize,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: 0,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse `"a.b.c.d/len"` (or a bare host address as `/32`).
pub fn parse_prefix(s: &str) -> Result<IpPrefix, ParseError> {
    match s.split_once('/') {
        Some((addr, len)) => {
            let a = parse_ip(addr)
                .ok_or_else(|| ParseError::new(format!("bad IPv4 address {addr:?}")))?;
            let l: u32 = len
                .parse()
                .map_err(|_| ParseError::new(format!("bad prefix length {len:?}")))?;
            if l > 32 {
                return Err(ParseError::new(format!("prefix length {l} > 32")));
            }
            Ok(IpPrefix::new(a, l))
        }
        None => {
            let a =
                parse_ip(s).ok_or_else(|| ParseError::new(format!("bad IPv4 address {s:?}")))?;
            Ok(IpPrefix::host(a))
        }
    }
}

/// Parse a port selector: `"80"` or `"80-443"`.
pub fn parse_ports(s: &str) -> Result<PortRange, ParseError> {
    match s.split_once('-') {
        Some((lo, hi)) => {
            let l: u16 = lo
                .parse()
                .map_err(|_| ParseError::new(format!("bad port {lo:?}")))?;
            let h: u16 = hi
                .parse()
                .map_err(|_| ParseError::new(format!("bad port {hi:?}")))?;
            if l > h {
                return Err(ParseError::new(format!("inverted port range {l}-{h}")));
            }
            Ok(PortRange::new(l, h))
        }
        None => {
            let p: u16 = s
                .parse()
                .map_err(|_| ParseError::new(format!("bad port {s:?}")))?;
            Ok(PortRange::single(p))
        }
    }
}

/// Parse a protocol selector: a well-known name or a raw number.
pub fn parse_proto(s: &str) -> Result<Proto, ParseError> {
    match s {
        "tcp" => Ok(Proto::Tcp),
        "udp" => Ok(Proto::Udp),
        "icmp" => Ok(Proto::Icmp),
        other => {
            let n: u8 = other
                .parse()
                .map_err(|_| ParseError::new(format!("unknown protocol {other:?}")))?;
            Ok(Proto::from_number(n))
        }
    }
}

/// Parse a single rule line like `"deny dst 1.0.0.0/8"`.
///
/// ```
/// use jinjing_acl::parse::parse_rule;
/// let r = parse_rule("permit src 10.0.0.0/8 dport 80-443 proto tcp").unwrap();
/// assert_eq!(r.to_string(), "permit src 10.0.0.0/8 dport 80-443 proto tcp");
/// assert!(parse_rule("block everything").is_err());
/// ```
pub fn parse_rule(line: &str) -> Result<Rule, ParseError> {
    let mut toks = line.split_whitespace();
    let action = match toks.next() {
        Some("permit") => Action::Permit,
        Some("deny") => Action::Deny,
        Some(other) => {
            return Err(ParseError::new(format!(
                "expected permit/deny, got {other:?}"
            )))
        }
        None => return Err(ParseError::new("empty rule")),
    };
    let mut m = MatchSpec::any();
    let mut any_clause = false;
    let mut saw_all = false;
    while let Some(tok) = toks.next() {
        match tok {
            "all" => {
                if any_clause {
                    return Err(ParseError::new("'all' cannot follow other clauses"));
                }
                saw_all = true;
            }
            "src" => {
                let v = toks
                    .next()
                    .ok_or_else(|| ParseError::new("src needs a prefix"))?;
                m.src = parse_prefix(v)?;
            }
            "dst" => {
                let v = toks
                    .next()
                    .ok_or_else(|| ParseError::new("dst needs a prefix"))?;
                m.dst = parse_prefix(v)?;
            }
            "sport" => {
                let v = toks
                    .next()
                    .ok_or_else(|| ParseError::new("sport needs a port or range"))?;
                m.sport = parse_ports(v)?;
            }
            "dport" => {
                let v = toks
                    .next()
                    .ok_or_else(|| ParseError::new("dport needs a port or range"))?;
                m.dport = parse_ports(v)?;
            }
            "proto" => {
                let v = toks
                    .next()
                    .ok_or_else(|| ParseError::new("proto needs a name or number"))?;
                m.proto = Some(parse_proto(v)?);
            }
            other => return Err(ParseError::new(format!("unknown clause {other:?}"))),
        }
        if tok != "all" {
            any_clause = true;
            if saw_all {
                return Err(ParseError::new("clauses cannot follow 'all'"));
            }
        }
    }
    if !any_clause && !saw_all {
        return Err(ParseError::new("rule needs 'all' or at least one clause"));
    }
    Ok(Rule::new(action, m))
}

/// Parse a whole ACL: one rule per line, optional trailing
/// `default permit|deny` (defaults to permit, matching the paper's
/// examples).
pub fn parse_acl(text: &str) -> Result<Acl, ParseError> {
    let mut rules = Vec::new();
    let mut default_action = Action::Permit;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("default") {
            default_action = match rest.trim() {
                "permit" => Action::Permit,
                "deny" => Action::Deny,
                other => {
                    return Err(ParseError {
                        message: format!("bad default action {other:?}"),
                        line: i + 1,
                    })
                }
            };
            continue;
        }
        let rule = parse_rule(line).map_err(|mut e| {
            e.line = i + 1;
            e
        })?;
        rules.push(rule);
    }
    Ok(Acl::new(rules, default_action))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn parse_simple_deny() {
        let r = parse_rule("deny dst 1.0.0.0/8").unwrap();
        assert_eq!(r.to_string(), "deny dst 1.0.0.0/8");
        assert!(r.matches.matches(&Packet::to_dst(0x0101_0101)));
        assert!(!r.matches.matches(&Packet::to_dst(0x0201_0101)));
    }

    #[test]
    fn parse_permit_all() {
        let r = parse_rule("permit all").unwrap();
        assert!(r.matches.is_any());
        assert_eq!(r.action, Action::Permit);
    }

    #[test]
    fn parse_full_tuple() {
        let r =
            parse_rule("permit src 10.0.0.0/8 dst 1.2.3.4 sport 1024-65535 dport 443 proto tcp")
                .unwrap();
        assert_eq!(r.matches.src.to_string(), "10.0.0.0/8");
        assert_eq!(r.matches.dst.to_string(), "1.2.3.4/32");
        assert_eq!(r.matches.sport, PortRange::new(1024, 65535));
        assert_eq!(r.matches.dport, PortRange::single(443));
        assert_eq!(r.matches.proto, Some(Proto::Tcp));
    }

    #[test]
    fn roundtrip_through_display() {
        for s in [
            "deny dst 6.0.0.0/8",
            "permit all",
            "permit src 10.0.0.0/24 dport 80-443 proto udp",
            "deny sport 53 proto 89",
        ] {
            let r = parse_rule(s).unwrap();
            let r2 = parse_rule(&r.to_string()).unwrap();
            assert_eq!(r, r2, "roundtrip failed for {s:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "block dst 1.0.0.0/8",
            "permit",
            "deny dst",
            "deny dst 1.0.0.0/40",
            "deny dst 300.0.0.1/8",
            "permit dport 99999",
            "permit dport 100-50",
            "permit proto quic",
            "permit all dst 1.0.0.0/8",
            "permit dst 1.0.0.0/8 all",
            "permit frobnicate 3",
        ] {
            assert!(parse_rule(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_acl_with_comments_and_default() {
        let acl = parse_acl(
            "# Figure 1, D2\n\
             deny dst 1.0.0.0/8\n\
             deny dst 2.0.0.0/8   # tangled\n\
             \n\
             default permit\n",
        )
        .unwrap();
        assert_eq!(acl.len(), 2);
        assert_eq!(acl.default_action(), Action::Permit);
        assert!(!acl.permits(&Packet::to_dst(0x0100_0001)));
        assert!(acl.permits(&Packet::to_dst(0x0300_0001)));
    }

    #[test]
    fn parse_acl_reports_line_numbers() {
        let err = parse_acl("permit all\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_acl("default maybe\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bare_host_prefix() {
        assert_eq!(parse_prefix("1.2.3.4").unwrap().to_string(), "1.2.3.4/32");
    }
}
