//! The "ACL search tree" of §5.5: an interval tree over rule regions that
//! answers overlap queries without scanning every rule.
//!
//! Rules in our workloads (and in the paper's) discriminate mostly on the
//! destination prefix, so the tree is a classic static *centered interval
//! tree* keyed on the rule's destination interval; candidates from the
//! tree are then verified against the full 5-tuple. Queries run in
//! O(log n + hits) instead of O(n), which is what makes the
//! differential-rule preprocessing and the grouping overlap computations
//! cheap on rule sets with thousands of entries.

use crate::rule::MatchSpec;

/// A static overlap index over a fixed list of match specs.
///
/// ```
/// use jinjing_acl::rtree::RuleTree;
/// use jinjing_acl::parse::parse_rule;
/// let m = |s: &str| parse_rule(&format!("deny {s}")).unwrap().matches;
/// let tree = RuleTree::build(vec![m("dst 10.0.0.0/8"), m("dst 11.0.0.0/8")]);
/// assert!(tree.overlaps_any(&m("dst 10.1.0.0/16")));
/// assert!(!tree.overlaps_any(&m("dst 12.0.0.0/8")));
/// ```
#[derive(Debug, Clone)]
pub struct RuleTree {
    specs: Vec<MatchSpec>,
    root: Option<Box<Node>>,
}

#[derive(Debug, Clone)]
struct Node {
    center: u64,
    /// Indices of specs whose dst interval contains `center`, sorted by
    /// ascending interval start.
    by_lo: Vec<usize>,
    /// The same indices sorted by descending interval end.
    by_hi: Vec<usize>,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

fn dst_bounds(m: &MatchSpec) -> (u64, u64) {
    let iv = m.dst.interval();
    (iv.lo(), iv.hi())
}

fn build_node(specs: &[MatchSpec], mut idxs: Vec<usize>) -> Option<Box<Node>> {
    if idxs.is_empty() {
        return None;
    }
    // Median of interval midpoints as the center.
    idxs.sort_by_key(|&i| {
        let (lo, hi) = dst_bounds(&specs[i]);
        lo / 2 + hi / 2
    });
    let mid = idxs[idxs.len() / 2];
    let (mlo, mhi) = dst_bounds(&specs[mid]);
    let center = mlo / 2 + mhi / 2;
    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in idxs {
        let (lo, hi) = dst_bounds(&specs[i]);
        if hi < center {
            left.push(i);
        } else if lo > center {
            right.push(i);
        } else {
            here.push(i);
        }
    }
    let mut by_lo = here.clone();
    by_lo.sort_by_key(|&i| dst_bounds(&specs[i]).0);
    let mut by_hi = here;
    by_hi.sort_by_key(|&i| std::cmp::Reverse(dst_bounds(&specs[i]).1));
    Some(Box::new(Node {
        center,
        by_lo,
        by_hi,
        left: build_node(specs, left),
        right: build_node(specs, right),
    }))
}

impl RuleTree {
    /// Build the index. O(n log n).
    pub fn build(specs: Vec<MatchSpec>) -> RuleTree {
        let idxs: Vec<usize> = (0..specs.len()).collect();
        let root = build_node(&specs, idxs);
        RuleTree { specs, root }
    }

    /// Number of indexed specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Indices of all indexed specs whose *full 5-tuple region* overlaps
    /// `query`, in unspecified order.
    pub fn overlapping(&self, query: &MatchSpec) -> Vec<usize> {
        let mut out = Vec::new();
        let (qlo, qhi) = dst_bounds(query);
        let mut stack: Vec<&Node> = self.root.as_deref().into_iter().collect();
        while let Some(node) = stack.pop() {
            if qhi < node.center {
                // Only intervals starting at or below qhi can overlap.
                for &i in &node.by_lo {
                    if dst_bounds(&self.specs[i]).0 > qhi {
                        break;
                    }
                    if self.specs[i].overlaps(query) {
                        out.push(i);
                    }
                }
                if let Some(l) = node.left.as_deref() {
                    stack.push(l);
                }
            } else if qlo > node.center {
                for &i in &node.by_hi {
                    if dst_bounds(&self.specs[i]).1 < qlo {
                        break;
                    }
                    if self.specs[i].overlaps(query) {
                        out.push(i);
                    }
                }
                if let Some(r) = node.right.as_deref() {
                    stack.push(r);
                }
            } else {
                // The query spans the center: every centered interval's dst
                // overlaps; verify the remaining fields.
                for &i in &node.by_lo {
                    if self.specs[i].overlaps(query) {
                        out.push(i);
                    }
                }
                if let Some(l) = node.left.as_deref() {
                    stack.push(l);
                }
                if let Some(r) = node.right.as_deref() {
                    stack.push(r);
                }
            }
        }
        out
    }

    /// Does any indexed spec overlap `query`?
    pub fn overlaps_any(&self, query: &MatchSpec) -> bool {
        // Same traversal with early exit.
        let (qlo, qhi) = dst_bounds(query);
        let mut stack: Vec<&Node> = self.root.as_deref().into_iter().collect();
        while let Some(node) = stack.pop() {
            if qhi < node.center {
                for &i in &node.by_lo {
                    if dst_bounds(&self.specs[i]).0 > qhi {
                        break;
                    }
                    if self.specs[i].overlaps(query) {
                        return true;
                    }
                }
                if let Some(l) = node.left.as_deref() {
                    stack.push(l);
                }
            } else if qlo > node.center {
                for &i in &node.by_hi {
                    if dst_bounds(&self.specs[i]).1 < qlo {
                        break;
                    }
                    if self.specs[i].overlaps(query) {
                        return true;
                    }
                }
                if let Some(r) = node.right.as_deref() {
                    stack.push(r);
                }
            } else {
                for &i in &node.by_lo {
                    if self.specs[i].overlaps(query) {
                        return true;
                    }
                }
                if let Some(l) = node.left.as_deref() {
                    stack.push(l);
                }
                if let Some(r) = node.right.as_deref() {
                    stack.push(r);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rule;

    fn spec(s: &str) -> MatchSpec {
        parse_rule(&format!("deny {s}")).unwrap().matches
    }

    #[test]
    fn finds_nested_and_disjoint() {
        let tree = RuleTree::build(vec![
            spec("dst 10.0.0.0/8"),
            spec("dst 10.1.0.0/16"),
            spec("dst 11.0.0.0/8"),
            spec("dst 192.168.0.0/16"),
        ]);
        let mut hits = tree.overlapping(&spec("dst 10.1.2.0/24"));
        hits.sort();
        assert_eq!(hits, vec![0, 1]);
        assert!(tree.overlaps_any(&spec("dst 11.5.0.0/16")));
        assert!(!tree.overlaps_any(&spec("dst 12.0.0.0/8")));
    }

    #[test]
    fn verifies_non_dst_fields() {
        let tree = RuleTree::build(vec![
            spec("dst 10.0.0.0/8 proto tcp"),
            spec("dst 10.0.0.0/8 proto udp"),
        ]);
        let q = spec("dst 10.1.0.0/16 proto tcp");
        assert_eq!(tree.overlapping(&q), vec![0]);
        let q_any = spec("dst 10.1.0.0/16");
        let mut hits = tree.overlapping(&q_any);
        hits.sort();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn empty_tree() {
        let tree = RuleTree::build(Vec::new());
        assert!(tree.is_empty());
        assert!(!tree.overlaps_any(&MatchSpec::any()));
        assert!(tree.overlapping(&MatchSpec::any()).is_empty());
    }

    #[test]
    fn match_all_query_hits_everything() {
        let specs: Vec<MatchSpec> = (0..50)
            .map(|i| spec(&format!("dst 10.{i}.0.0/16")))
            .collect();
        let tree = RuleTree::build(specs);
        assert_eq!(tree.overlapping(&MatchSpec::any()).len(), 50);
    }

    #[test]
    fn agrees_with_brute_force_on_structured_sets() {
        // Deterministic pseudo-random prefixes and queries.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..20 {
            let n = 1 + (next() % 60) as usize;
            let specs: Vec<MatchSpec> = (0..n)
                .map(|_| {
                    let a = (next() % 224) as u32;
                    let b = (next() % 256) as u32;
                    let len = 8 + (next() % 17) as u32;
                    spec(&format!("dst {a}.{b}.0.0/{len}"))
                })
                .collect();
            let tree = RuleTree::build(specs.clone());
            for _ in 0..20 {
                let a = (next() % 224) as u32;
                let len = 8 + (next() % 25) as u32;
                let q = spec(&format!("dst {a}.1.2.0/{}", len.min(24)));
                let mut got = tree.overlapping(&q);
                got.sort();
                let want: Vec<usize> = specs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.overlaps(&q))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(got, want, "round {round}, query {q}");
                assert_eq!(tree.overlaps_any(&q), !want.is_empty());
            }
        }
    }
}
