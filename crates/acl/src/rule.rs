//! ACL rules: 5-tuple match specifications plus a permit/deny action.
//!
//! A [`MatchSpec`] is the "ACL rule tuple ⟨sip, dip, sport, dport, proto⟩" of
//! the paper: per-field constraints, each of which denotes an interval, so a
//! match is exactly one [`Cube`] of header space. The fix primitive's
//! neighborhoods are also `MatchSpec`s — this is what makes fixing rules
//! "well-formed ACL rules" by construction.

use crate::cube::Cube;
use crate::interval::Interval;
use crate::packet::{fmt_ip, Field, Packet, Proto};
use std::fmt;

/// An IPv4 prefix `a.b.c.d/len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpPrefix {
    addr: u32,
    len: u32,
}

impl IpPrefix {
    /// Construct, canonicalizing the address by masking host bits.
    pub fn new(addr: u32, len: u32) -> IpPrefix {
        assert!(len <= 32, "prefix length {len} > 32");
        let masked = if len == 0 {
            0
        } else {
            addr & (u32::MAX << (32 - len))
        };
        IpPrefix { addr: masked, len }
    }

    /// The whole IPv4 space (`0.0.0.0/0`).
    pub fn any() -> IpPrefix {
        IpPrefix { addr: 0, len: 0 }
    }

    /// A single host (`/32`).
    pub fn host(addr: u32) -> IpPrefix {
        IpPrefix { addr, len: 32 }
    }

    /// Network address (host bits zero).
    pub fn addr(&self) -> u32 {
        self.addr
    }

    /// Prefix length (the `/len` part; not a container length).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` for the /0 prefix.
    pub fn is_any(&self) -> bool {
        self.len == 0
    }

    /// The address interval this prefix covers.
    pub fn interval(&self) -> Interval {
        Interval::from_prefix(self.addr as u64, self.len, 32)
    }

    /// `true` if `ip` is inside the prefix.
    pub fn contains(&self, ip: u32) -> bool {
        self.interval().contains(ip as u64)
    }

    /// `true` if `other` is an equal-or-more-specific prefix inside `self`.
    pub fn covers(&self, other: &IpPrefix) -> bool {
        self.len <= other.len && self.contains(other.addr)
    }

    /// Intersection of two prefixes: the longer one if nested, else `None`
    /// (prefixes are laminar — they nest or are disjoint).
    pub fn intersect(&self, other: &IpPrefix) -> Option<IpPrefix> {
        if self.covers(other) {
            Some(*other)
        } else if other.covers(self) {
            Some(*self)
        } else {
            None
        }
    }

    /// The parent prefix (one bit shorter); `None` at /0.
    pub fn parent(&self) -> Option<IpPrefix> {
        if self.len == 0 {
            None
        } else {
            Some(IpPrefix::new(self.addr, self.len - 1))
        }
    }
}

impl fmt::Display for IpPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", fmt_ip(self.addr), self.len)
    }
}

/// An inclusive transport-port range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRange {
    lo: u16,
    hi: u16,
}

impl PortRange {
    /// `[lo, hi]`; panics if inverted.
    pub fn new(lo: u16, hi: u16) -> PortRange {
        assert!(lo <= hi, "empty port range {lo}-{hi}");
        PortRange { lo, hi }
    }

    /// All ports.
    pub fn any() -> PortRange {
        PortRange {
            lo: 0,
            hi: u16::MAX,
        }
    }

    /// One port.
    pub fn single(p: u16) -> PortRange {
        PortRange { lo: p, hi: p }
    }

    /// Lower bound.
    pub fn lo(&self) -> u16 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> u16 {
        self.hi
    }

    /// `true` for the full 0-65535 range.
    pub fn is_any(&self) -> bool {
        self.lo == 0 && self.hi == u16::MAX
    }

    /// As an interval.
    pub fn interval(&self) -> Interval {
        Interval::new(self.lo as u64, self.hi as u64)
    }

    /// Intersection, `None` if disjoint.
    pub fn intersect(&self, other: &PortRange) -> Option<PortRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(PortRange { lo, hi })
        } else {
            None
        }
    }

    /// `true` if `p` is inside.
    pub fn contains(&self, p: u16) -> bool {
        self.lo <= p && p <= self.hi
    }
}

impl fmt::Display for PortRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{}-{}", self.lo, self.hi)
        }
    }
}

/// Permit or deny — the two ACL actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Let the packet through (decision model returns TRUE).
    Permit,
    /// Drop the packet (decision model returns FALSE).
    Deny,
}

impl Action {
    /// The other action.
    pub fn flip(self) -> Action {
        match self {
            Action::Permit => Action::Deny,
            Action::Deny => Action::Permit,
        }
    }

    /// Boolean view: permit = `true`.
    pub fn permits(self) -> bool {
        matches!(self, Action::Permit)
    }

    /// From the boolean view.
    pub fn from_bool(permit: bool) -> Action {
        if permit {
            Action::Permit
        } else {
            Action::Deny
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Permit => write!(f, "permit"),
            Action::Deny => write!(f, "deny"),
        }
    }
}

/// A 5-tuple match: the `m_j` predicate of the paper. Every constrained
/// field narrows the match; an unconstrained field matches anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchSpec {
    /// Source prefix constraint.
    pub src: IpPrefix,
    /// Destination prefix constraint.
    pub dst: IpPrefix,
    /// Source port constraint.
    pub sport: PortRange,
    /// Destination port constraint.
    pub dport: PortRange,
    /// Protocol constraint (`None` = any protocol).
    pub proto: Option<Proto>,
}

impl MatchSpec {
    /// Match-all (the `all` of `permit all`).
    pub fn any() -> MatchSpec {
        MatchSpec {
            src: IpPrefix::any(),
            dst: IpPrefix::any(),
            sport: PortRange::any(),
            dport: PortRange::any(),
            proto: None,
        }
    }

    /// Match on destination prefix only.
    pub fn dst(prefix: IpPrefix) -> MatchSpec {
        MatchSpec {
            dst: prefix,
            ..MatchSpec::any()
        }
    }

    /// Match on source prefix only.
    pub fn src(prefix: IpPrefix) -> MatchSpec {
        MatchSpec {
            src: prefix,
            ..MatchSpec::any()
        }
    }

    /// `true` when no field is constrained.
    pub fn is_any(&self) -> bool {
        self.src.is_any()
            && self.dst.is_any()
            && self.sport.is_any()
            && self.dport.is_any()
            && self.proto.is_none()
    }

    /// The concrete m(h) predicate.
    pub fn matches(&self, p: &Packet) -> bool {
        self.src.contains(p.sip)
            && self.dst.contains(p.dip)
            && self.sport.contains(p.sport)
            && self.dport.contains(p.dport)
            && self.proto.map_or(true, |pr| pr.number() == p.proto)
    }

    /// The region of header space matched, as a cube.
    pub fn cube(&self) -> Cube {
        let mut c = Cube::full()
            .with(Field::SrcIp, self.src.interval())
            .with(Field::DstIp, self.dst.interval())
            .with(Field::SrcPort, self.sport.interval())
            .with(Field::DstPort, self.dport.interval());
        if let Some(pr) = self.proto {
            c = c.with(Field::Proto, Interval::singleton(pr.number() as u64));
        }
        c
    }

    /// `true` if some packet matches both specs — the satisfiability of
    /// `m_k ∧ m_k'` from Definition 4.2.
    pub fn overlaps(&self, other: &MatchSpec) -> bool {
        self.cube().intersect(&other.cube()).is_some()
    }

    /// Field-wise intersection, if non-empty (used by the synthesis "overlap
    /// field" computation in §5.4 Step 2).
    pub fn intersect(&self, other: &MatchSpec) -> Option<MatchSpec> {
        let proto = match (self.proto, other.proto) {
            (None, p) | (p, None) => p,
            (Some(a), Some(b)) if a.number() == b.number() => Some(a),
            _ => return None,
        };
        Some(MatchSpec {
            src: self.src.intersect(&other.src)?,
            dst: self.dst.intersect(&other.dst)?,
            sport: self.sport.intersect(&other.sport)?,
            dport: self.dport.intersect(&other.dport)?,
            proto,
        })
    }
}

impl fmt::Display for MatchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            return write!(f, "all");
        }
        let mut first = true;
        let mut part = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{s}")
        };
        if !self.src.is_any() {
            part(f, format!("src {}", self.src))?;
        }
        if !self.dst.is_any() {
            part(f, format!("dst {}", self.dst))?;
        }
        if !self.sport.is_any() {
            part(f, format!("sport {}", self.sport))?;
        }
        if !self.dport.is_any() {
            part(f, format!("dport {}", self.dport))?;
        }
        if let Some(p) = self.proto {
            part(f, format!("proto {p}"))?;
        }
        Ok(())
    }
}

/// One ACL rule: a match plus an action. Priority is positional (rules live
/// in an ordered [`crate::acl::Acl`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rule {
    /// What the rule matches.
    pub matches: MatchSpec,
    /// What happens on a match.
    pub action: Action,
}

impl Rule {
    /// Construct a rule.
    pub fn new(action: Action, matches: MatchSpec) -> Rule {
        Rule { matches, action }
    }

    /// `permit all` / `deny all`.
    pub fn all(action: Action) -> Rule {
        Rule::new(action, MatchSpec::any())
    }

    /// Shorthand: act on a destination prefix.
    pub fn on_dst(action: Action, prefix: IpPrefix) -> Rule {
        Rule::new(action, MatchSpec::dst(prefix))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.action, self.matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::parse_ip;

    fn pfx(s: &str) -> IpPrefix {
        let (ip, len) = s.split_once('/').unwrap();
        IpPrefix::new(parse_ip(ip).unwrap(), len.parse().unwrap())
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = IpPrefix::new(parse_ip("1.2.3.4").unwrap(), 16);
        assert_eq!(p.to_string(), "1.2.0.0/16");
    }

    #[test]
    fn prefix_cover_and_intersect() {
        let a = pfx("10.0.0.0/8");
        let b = pfx("10.1.0.0/16");
        let c = pfx("11.0.0.0/8");
        assert!(a.covers(&b));
        assert!(!b.covers(&a));
        assert_eq!(a.intersect(&b), Some(b));
        assert_eq!(b.intersect(&a), Some(b));
        assert_eq!(a.intersect(&c), None);
        assert!(IpPrefix::any().covers(&a));
    }

    #[test]
    fn prefix_parent_chain_reaches_root() {
        let mut p = pfx("10.1.2.0/24");
        let mut steps = 0;
        while let Some(q) = p.parent() {
            assert!(q.covers(&p));
            p = q;
            steps += 1;
        }
        assert_eq!(steps, 24);
        assert!(p.is_any());
    }

    #[test]
    fn port_range_ops() {
        let a = PortRange::new(0, 1023);
        let b = PortRange::new(80, 8080);
        assert_eq!(a.intersect(&b), Some(PortRange::new(80, 1023)));
        assert_eq!(
            PortRange::single(22).intersect(&PortRange::new(23, 25)),
            None
        );
        assert!(PortRange::any().is_any());
    }

    #[test]
    fn matchspec_semantics_agree_with_cube() {
        let m = MatchSpec {
            src: pfx("10.0.0.0/8"),
            dst: pfx("1.0.0.0/8"),
            sport: PortRange::any(),
            dport: PortRange::new(80, 443),
            proto: Some(Proto::Tcp),
        };
        let inside = Packet::new(
            parse_ip("10.9.9.9").unwrap(),
            parse_ip("1.2.3.4").unwrap(),
            5555,
            100,
            6,
        );
        let outside_port = Packet {
            dport: 444,
            ..inside
        };
        let outside_proto = Packet {
            proto: 17,
            ..inside
        };
        for p in [inside, outside_port, outside_proto] {
            assert_eq!(m.matches(&p), m.cube().contains(&p), "{p}");
        }
        assert!(m.matches(&inside));
        assert!(!m.matches(&outside_port));
        assert!(!m.matches(&outside_proto));
    }

    #[test]
    fn overlap_detection() {
        let a = MatchSpec::dst(pfx("1.0.0.0/8"));
        let b = MatchSpec::dst(pfx("1.2.0.0/16"));
        let c = MatchSpec::dst(pfx("2.0.0.0/8"));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(MatchSpec::any().overlaps(&c));
    }

    #[test]
    fn matchspec_intersect_narrows() {
        let a = MatchSpec {
            dport: PortRange::new(0, 100),
            ..MatchSpec::dst(pfx("1.0.0.0/8"))
        };
        let b = MatchSpec {
            dport: PortRange::new(50, 150),
            proto: Some(Proto::Udp),
            ..MatchSpec::any()
        };
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.dst, pfx("1.0.0.0/8"));
        assert_eq!(i.dport, PortRange::new(50, 100));
        assert_eq!(i.proto, Some(Proto::Udp));
        // Conflicting protocols do not intersect.
        let c = MatchSpec {
            proto: Some(Proto::Tcp),
            ..MatchSpec::any()
        };
        assert!(b.intersect(&c).is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rule::all(Action::Permit).to_string(), "permit all");
        let r = Rule::on_dst(Action::Deny, pfx("6.0.0.0/8"));
        assert_eq!(r.to_string(), "deny dst 6.0.0.0/8");
    }

    #[test]
    fn action_flip() {
        assert_eq!(Action::Permit.flip(), Action::Deny);
        assert!(Action::from_bool(true).permits());
        assert!(!Action::Deny.permits());
    }
}
