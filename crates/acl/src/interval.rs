//! Closed integer intervals `[lo, hi]` over a field domain.
//!
//! Intervals are the one-dimensional building block of [`crate::cube::Cube`].
//! IP prefixes, port ranges and protocol selections all denote intervals, so
//! a product of five intervals represents exactly one rule-shaped region of
//! header space.

use crate::packet::Field;
use std::fmt;

/// A non-empty closed interval `[lo, hi]` with `lo <= hi`.
///
/// Emptiness is represented at the call-site by `Option<Interval>` — an
/// `Interval` value is always non-empty, which keeps cube code free of
/// degenerate cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: u64,
    hi: u64,
}

impl Interval {
    /// `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Interval {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The full domain of a field.
    pub fn full(field: Field) -> Interval {
        Interval {
            lo: 0,
            hi: field.max_value(),
        }
    }

    /// A single value.
    pub fn singleton(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The interval denoted by a bit prefix: `value` with the top `len` bits
    /// significant out of a `width`-bit field. A `/0` prefix is the full
    /// field domain.
    pub fn from_prefix(value: u64, len: u32, width: u32) -> Interval {
        assert!(len <= width, "prefix length {len} exceeds width {width}");
        let span = width - len;
        let base = if len == 0 {
            0
        } else {
            value & (!0u64 << span) & ((1u64 << width) - 1)
        };
        let hi = base | ((1u64 << span) - 1).min((1u64 << width) - 1);
        Interval { lo: base, hi }
    }

    /// Inclusive lower bound.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Inclusive upper bound.
    pub fn hi(&self) -> u64 {
        self.hi
    }

    /// Number of values contained (as u128 to survive full 64-bit domains;
    /// our widest field is 32 bits so u64 would suffice, but this is free).
    /// Intervals are non-empty by construction, so there is no `is_empty`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u128 {
        (self.hi - self.lo) as u128 + 1
    }

    /// `true` if `v` lies inside.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` if `self` is entirely inside `other`.
    pub fn is_subset(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Intersection, or `None` if disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// The (up to two) maximal intervals of `domain \ self`, where `domain`
    /// is the full range of `field`.
    pub fn complement(&self, field: Field) -> Vec<Interval> {
        let mut out = Vec::with_capacity(2);
        if self.lo > 0 {
            out.push(Interval::new(0, self.lo - 1));
        }
        if self.hi < field.max_value() {
            out.push(Interval::new(self.hi + 1, field.max_value()));
        }
        out
    }

    /// `true` when this interval covers the whole domain of `field`.
    pub fn is_full(&self, field: Field) -> bool {
        self.lo == 0 && self.hi == field.max_value()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_interval_full() {
        let i = Interval::from_prefix(0, 0, 32);
        assert_eq!(i, Interval::new(0, u32::MAX as u64));
    }

    #[test]
    fn prefix_interval_slash8() {
        // 1.0.0.0/8 = [0x01000000, 0x01ffffff]
        let i = Interval::from_prefix(0x0100_0000, 8, 32);
        assert_eq!(i.lo(), 0x0100_0000);
        assert_eq!(i.hi(), 0x01ff_ffff);
    }

    #[test]
    fn prefix_interval_host_route() {
        let i = Interval::from_prefix(0x0a00_0001, 32, 32);
        assert_eq!(i, Interval::singleton(0x0a00_0001));
    }

    #[test]
    fn prefix_masks_low_bits() {
        // Low bits below the prefix length are ignored.
        let a = Interval::from_prefix(0x0102_0304, 16, 32);
        let b = Interval::from_prefix(0x0102_0000, 16, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn intersect_overlap_and_disjoint() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersect(&b), Some(Interval::new(5, 10)));
        let c = Interval::new(11, 12);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn complement_middle() {
        let a = Interval::new(10, 20);
        let c = a.complement(Field::Proto);
        assert_eq!(c, vec![Interval::new(0, 9), Interval::new(21, 255)]);
    }

    #[test]
    fn complement_edges() {
        assert_eq!(
            Interval::new(0, 5).complement(Field::Proto),
            vec![Interval::new(6, 255)]
        );
        assert_eq!(
            Interval::new(200, 255).complement(Field::Proto),
            vec![Interval::new(0, 199)]
        );
        assert!(Interval::full(Field::Proto)
            .complement(Field::Proto)
            .is_empty());
    }

    #[test]
    fn subset_and_contains() {
        let a = Interval::new(5, 10);
        assert!(a.is_subset(&Interval::new(0, 10)));
        assert!(!a.is_subset(&Interval::new(6, 10)));
        assert!(a.contains(5) && a.contains(10) && !a.contains(11));
    }

    #[test]
    fn len_counts_inclusive() {
        assert_eq!(Interval::new(3, 5).len(), 3);
        assert_eq!(Interval::singleton(7).len(), 1);
        assert_eq!(Interval::full(Field::SrcIp).len(), 1u128 << 32);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn empty_interval_panics() {
        let _ = Interval::new(5, 4);
    }
}
