#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # jinjing-acl
//!
//! ACL substrate for the Jinjing reproduction: the packet model, ACL rules
//! with first-match semantics, an **exact packet-set algebra** (unions of
//! per-field interval cubes over the 104-bit 5-tuple header space), textual
//! parsing/printing of rules, the paper's *differential rule* machinery
//! (Definitions 4.1 and 4.2, Theorem 4.1), decision-model-preserving ACL
//! simplification, and the equivalence-class refinement engine used to derive
//! FECs/AECs/DECs.
//!
//! Everything in this crate is deterministic and purely combinational: an ACL
//! is a total function from packets to `permit`/`deny`, and the set algebra
//! lets us reason about that function exactly (no sampling, no solver).
//!
//! ## Layout
//!
//! - [`packet`] — the concrete 5-tuple header and per-field domains.
//! - [`interval`] — closed integer intervals, the building block of cubes.
//! - [`cube`] — products of five intervals; one cube ≙ one "tuple" region.
//! - [`set`] — [`set::PacketSet`]: finite unions of cubes with full boolean
//!   algebra (union, intersection, difference, complement, subset, equality,
//!   witness extraction, exact cardinality).
//! - [`rule`] — matches ([`rule::MatchSpec`]), actions, prioritized rules.
//! - [`acl`] — ordered rule lists with first-match evaluation and compilation
//!   to permit-sets.
//! - [`parse`] — the textual rule/ACL syntax used throughout the repo
//!   (`"deny dst 1.0.0.0/8"`, `"permit src 10.0.0.0/24 dport 80-443"` …).
//! - [`cisco`] — ingestion/rendering of Cisco IOS extended access lists
//!   (the vendor-format reality of §7's deployment notes).
//! - [`diff`] — longest-common-subsequence differential rules (Def. 4.1),
//!   related rules (Def. 4.2) and the `H` packet-cover used by Theorem 4.1.
//! - [`simplify`] — maximal redundant-rule elimination preserving the
//!   decision model (§4.2 "Simplifying the final ACL").
//! - [`atoms`] — predicate-refinement partitioning used for FEC/AEC/DEC
//!   derivation (§4.1, §5.1, §5.3).
//! - [`rtree`] — the §5.5 \"ACL search tree\": an interval tree answering
//!   rule-overlap queries in O(log n + hits).
//! - [`shard`] — consistent-hash partitioning of the class space across
//!   shard backends (deterministic, content-keyed, process-independent).

pub mod acl;
pub mod atoms;
pub mod cisco;
pub mod cube;
pub mod decompose;
pub mod diff;
pub mod interval;
pub mod packet;
pub mod parse;
pub mod rtree;
pub mod rule;
pub mod set;
pub mod shard;
pub mod simplify;

pub use crate::acl::{Acl, AclBuilder};
pub use crate::cube::Cube;
pub use crate::interval::Interval;
pub use crate::packet::{Field, Packet, Proto};
pub use crate::rule::{Action, IpPrefix, MatchSpec, PortRange, Rule};
pub use crate::set::PacketSet;
