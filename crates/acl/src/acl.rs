//! Ordered ACLs with first-match semantics and set-algebra compilation.
//!
//! An [`Acl`] is the `L_ξ` of the paper: a prioritized rule list evaluated
//! top to bottom, with a configurable default action when nothing matches
//! (the examples in the paper carry an explicit trailing `permit all`; real
//! devices usually default-deny — both styles are expressible).
//!
//! [`Acl::permit_set`] compiles the whole list into the exact set of
//! permitted packets, which *is* the decision model `f_ξ` in set form:
//! `f_ξ(h) ⇔ h ∈ permit_set(L_ξ)`.

use crate::packet::Packet;
use crate::rule::{Action, MatchSpec, Rule};
use crate::set::PacketSet;
use std::fmt;

/// A sequential access control list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acl {
    rules: Vec<Rule>,
    default_action: Action,
}

impl Acl {
    /// An ACL with the given rules and a default action for packets that
    /// fall off the end of the list.
    pub fn new(rules: Vec<Rule>, default_action: Action) -> Acl {
        Acl {
            rules,
            default_action,
        }
    }

    /// The "no ACL configured" ACL: permits everything. Interfaces without
    /// ACLs behave exactly like this.
    pub fn permit_all() -> Acl {
        Acl::new(Vec::new(), Action::Permit)
    }

    /// An ACL that denies everything.
    pub fn deny_all() -> Acl {
        Acl::new(Vec::new(), Action::Deny)
    }

    /// The rules, in priority order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The fall-through action.
    pub fn default_action(&self) -> Action {
        self.default_action
    }

    /// Number of explicit rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when there are no explicit rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// First-match evaluation: the decision model `f_ξ(h)` as an [`Action`].
    pub fn eval(&self, p: &Packet) -> Action {
        for r in &self.rules {
            if r.matches.matches(p) {
                return r.action;
            }
        }
        self.default_action
    }

    /// `true` iff the packet is permitted (the boolean `f_ξ(h)`).
    pub fn permits(&self, p: &Packet) -> bool {
        self.eval(p).permits()
    }

    /// Index of the first rule matching `p`, or `None` for default.
    pub fn first_match(&self, p: &Packet) -> Option<usize> {
        self.rules.iter().position(|r| r.matches.matches(p))
    }

    /// All rule indices whose *effective region* intersects `set` — i.e.
    /// the rules some packet of `set` actually hits first. Used by the
    /// synthesis sequence encoding (§5.4 Step 1) where one class may hit
    /// several rules of the same ACL.
    pub fn hit_rules(&self, set: &PacketSet) -> Vec<usize> {
        let mut out = Vec::new();
        let mut remaining = set.clone();
        for (i, r) in self.rules.iter().enumerate() {
            if remaining.is_empty() {
                break;
            }
            let m = PacketSet::from_cube(r.matches.cube());
            if remaining.intersects(&m) {
                out.push(i);
                remaining = remaining.subtract(&m);
            }
        }
        out
    }

    /// The exact set of packets this ACL permits.
    pub fn permit_set(&self) -> PacketSet {
        let mut permitted = PacketSet::empty();
        let mut remaining = PacketSet::full();
        for r in &self.rules {
            if remaining.is_empty() {
                break;
            }
            let m = PacketSet::from_cube(r.matches.cube());
            if r.action.permits() {
                permitted = permitted.union(&remaining.intersect(&m));
            }
            remaining = remaining.subtract(&m);
        }
        if self.default_action.permits() {
            permitted = permitted.union(&remaining);
        }
        permitted
    }

    /// Decide whether `set` gets a uniform decision from this ACL, and if so
    /// which. Returns `None` when the ACL splits the set.
    pub fn uniform_decision(&self, set: &PacketSet) -> Option<Action> {
        if set.is_empty() {
            return Some(self.default_action);
        }
        let permits = self.permit_set();
        let inside = set.intersect(&permits);
        if inside.is_empty() {
            Some(Action::Deny)
        } else if set.is_subset(&permits) {
            Some(Action::Permit)
        } else {
            None
        }
    }

    /// Semantic equivalence: same decision on every packet.
    pub fn equivalent(&self, other: &Acl) -> bool {
        self.permit_set().same_set(&other.permit_set())
    }

    /// A new ACL with `rules` stacked on top (higher priority), as the fix
    /// primitive does ("fix the given ACLs by adding rules on top").
    pub fn with_prepended(&self, rules: &[Rule]) -> Acl {
        let mut all = rules.to_vec();
        all.extend(self.rules.iter().copied());
        Acl::new(all, self.default_action)
    }

    /// `true` when this ACL permits every packet (e.g. after "clean up").
    pub fn is_permit_all(&self) -> bool {
        self.permit_set().same_set(&PacketSet::full())
    }
}

impl fmt::Display for Acl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        write!(f, "(default {})", self.default_action)
    }
}

/// Fluent construction helper used pervasively by tests and examples.
///
/// ```
/// use jinjing_acl::{AclBuilder, Action};
/// let acl = AclBuilder::default_permit()
///     .deny_dst("6.0.0.0/8")
///     .build();
/// assert_eq!(acl.len(), 1);
/// assert_eq!(acl.default_action(), Action::Permit);
/// ```
#[derive(Debug, Clone)]
pub struct AclBuilder {
    rules: Vec<Rule>,
    default_action: Action,
}

impl AclBuilder {
    /// Builder with a trailing implicit `permit all`.
    pub fn default_permit() -> AclBuilder {
        AclBuilder {
            rules: Vec::new(),
            default_action: Action::Permit,
        }
    }

    /// Builder with a trailing implicit `deny all`.
    pub fn default_deny() -> AclBuilder {
        AclBuilder {
            rules: Vec::new(),
            default_action: Action::Deny,
        }
    }

    /// Append an arbitrary rule.
    pub fn rule(mut self, r: Rule) -> AclBuilder {
        self.rules.push(r);
        self
    }

    /// Append `deny dst <prefix>`; the prefix is parsed from `"a.b.c.d/len"`.
    pub fn deny_dst(self, prefix: &str) -> AclBuilder {
        let p = crate::parse::parse_prefix(prefix).expect("invalid prefix literal");
        self.rule(Rule::on_dst(Action::Deny, p))
    }

    /// Append `permit dst <prefix>`.
    pub fn permit_dst(self, prefix: &str) -> AclBuilder {
        let p = crate::parse::parse_prefix(prefix).expect("invalid prefix literal");
        self.rule(Rule::on_dst(Action::Permit, p))
    }

    /// Append `deny src <prefix>`.
    pub fn deny_src(self, prefix: &str) -> AclBuilder {
        let p = crate::parse::parse_prefix(prefix).expect("invalid prefix literal");
        self.rule(Rule::new(Action::Deny, MatchSpec::src(p)))
    }

    /// Append `permit src <prefix>`.
    pub fn permit_src(self, prefix: &str) -> AclBuilder {
        let p = crate::parse::parse_prefix(prefix).expect("invalid prefix literal");
        self.rule(Rule::new(Action::Permit, MatchSpec::src(p)))
    }

    /// Finish.
    pub fn build(self) -> Acl {
        Acl::new(self.rules, self.default_action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::parse_ip;
    use crate::rule::IpPrefix;

    fn dstpkt(s: &str) -> Packet {
        Packet::to_dst(parse_ip(s).unwrap())
    }

    /// The `A1` ACL from Figure 1: deny dst 6/8, permit all.
    fn a1() -> Acl {
        AclBuilder::default_permit().deny_dst("6.0.0.0/8").build()
    }

    #[test]
    fn first_match_wins() {
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .permit_dst("1.2.0.0/16") // shadowed by the deny above
            .build();
        assert_eq!(acl.eval(&dstpkt("1.2.3.4")), Action::Deny);
    }

    #[test]
    fn default_applies_when_nothing_matches() {
        let acl = a1();
        assert_eq!(acl.eval(&dstpkt("6.1.2.3")), Action::Deny);
        assert_eq!(acl.eval(&dstpkt("7.1.2.3")), Action::Permit);
        assert!(Acl::permit_all().permits(&dstpkt("6.1.2.3")));
        assert!(!Acl::deny_all().permits(&dstpkt("6.1.2.3")));
    }

    #[test]
    fn permit_set_matches_eval_exhaustively_on_a_slice() {
        let acl = AclBuilder::default_deny()
            .permit_dst("10.0.0.0/30")
            .deny_dst("10.0.0.0/31")
            .build();
        let ps = acl.permit_set();
        for dip in 0x0a00_0000u32..0x0a00_0010 {
            let p = Packet::to_dst(dip);
            assert_eq!(acl.permits(&p), ps.contains(&p), "dip={dip:#x}");
        }
    }

    #[test]
    fn uniform_decision_detects_splits() {
        let acl = a1();
        let six = PacketSet::from_cube(MatchSpec::dst(pfx("6.0.0.0/8")).cube());
        let seven = PacketSet::from_cube(MatchSpec::dst(pfx("7.0.0.0/8")).cube());
        assert_eq!(acl.uniform_decision(&six), Some(Action::Deny));
        assert_eq!(acl.uniform_decision(&seven), Some(Action::Permit));
        let both = six.union(&seven);
        assert_eq!(acl.uniform_decision(&both), None);
        assert_eq!(
            acl.uniform_decision(&PacketSet::empty()),
            Some(Action::Permit)
        );
    }

    #[test]
    fn equivalence_is_semantic() {
        // deny 6/8 ; permit all   ==   permit 7/8 upfront then same
        let a = a1();
        let b = AclBuilder::default_permit()
            .permit_dst("7.0.0.0/8")
            .deny_dst("6.0.0.0/8")
            .build();
        assert!(a.equivalent(&b));
        let c = AclBuilder::default_permit().deny_dst("5.0.0.0/8").build();
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn prepend_overrides() {
        let fixed = a1().with_prepended(&[Rule::on_dst(Action::Permit, pfx("6.1.0.0/16"))]);
        assert!(fixed.permits(&dstpkt("6.1.2.3")));
        assert!(!fixed.permits(&dstpkt("6.2.0.0")));
    }

    #[test]
    fn hit_rules_reports_every_first_match_rule() {
        // Class covering 1/8 and 2/8 against an ACL with separate rules.
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("2.0.0.0/8")
            .build();
        let class = PacketSet::from_cube(MatchSpec::dst(pfx("1.0.0.0/8")).cube()).union(
            &PacketSet::from_cube(MatchSpec::dst(pfx("2.0.0.0/8")).cube()),
        );
        assert_eq!(acl.hit_rules(&class), vec![0, 1]);
        let one_only = PacketSet::from_cube(MatchSpec::dst(pfx("1.0.0.0/8")).cube());
        assert_eq!(acl.hit_rules(&one_only), vec![0]);
    }

    #[test]
    fn is_permit_all_sees_through_rules() {
        let acl = AclBuilder::default_permit().permit_dst("1.0.0.0/8").build();
        assert!(acl.is_permit_all());
        assert!(!a1().is_permit_all());
    }

    fn pfx(s: &str) -> IpPrefix {
        crate::parse::parse_prefix(s).unwrap()
    }
}
