//! Header-space cubes: the product of one interval per field.
//!
//! A cube is exactly the region matched by one ACL-rule-shaped tuple
//! `(sip-prefix, dip-prefix, sport-range, dport-range, proto)`. Cubes are
//! closed under intersection; complements and differences produce small sets
//! of disjoint cubes (at most two new cubes per field), which is what
//! [`crate::set::PacketSet`] builds on.

use crate::interval::Interval;
use crate::packet::{Field, Packet};
use std::fmt;

/// A non-empty product of five intervals, one per header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    fields: [Interval; 5],
}

impl Cube {
    /// The full header space.
    pub fn full() -> Cube {
        Cube {
            fields: [
                Interval::full(Field::SrcIp),
                Interval::full(Field::DstIp),
                Interval::full(Field::SrcPort),
                Interval::full(Field::DstPort),
                Interval::full(Field::Proto),
            ],
        }
    }

    /// Build from explicit per-field intervals (in [`Field::ALL`] order).
    pub fn from_fields(fields: [Interval; 5]) -> Cube {
        Cube { fields }
    }

    /// The cube containing exactly one packet.
    pub fn singleton(p: &Packet) -> Cube {
        let mut c = Cube::full();
        for f in Field::ALL {
            c.fields[f.index()] = Interval::singleton(p.field(f));
        }
        c
    }

    /// Read the interval of one field.
    pub fn get(&self, f: Field) -> Interval {
        self.fields[f.index()]
    }

    /// Replace the interval of one field.
    pub fn with(&self, f: Field, iv: Interval) -> Cube {
        let mut c = *self;
        c.fields[f.index()] = iv;
        c
    }

    /// `true` if the packet lies inside the cube.
    pub fn contains(&self, p: &Packet) -> bool {
        Field::ALL.iter().all(|&f| self.get(f).contains(p.field(f)))
    }

    /// `true` if every packet of `self` is in `other`.
    pub fn is_subset(&self, other: &Cube) -> bool {
        Field::ALL
            .iter()
            .all(|&f| self.get(f).is_subset(&other.get(f)))
    }

    /// Intersection, `None` if disjoint in any dimension.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let mut fields = self.fields;
        for f in Field::ALL {
            fields[f.index()] = self.get(f).intersect(&other.get(f))?;
        }
        Some(Cube { fields })
    }

    /// `self \ other` as a set of **pairwise disjoint** cubes.
    ///
    /// Uses the standard carve: for each field in order, emit the parts of
    /// `self` that fall outside `other` in that field while being inside
    /// `other` in all previous fields. Produces at most 2 cubes per field
    /// (10 total); returns `vec![self]` untouched when the cubes are
    /// disjoint.
    pub fn subtract(&self, other: &Cube) -> Vec<Cube> {
        let overlap = match self.intersect(other) {
            Some(o) => o,
            None => return vec![*self],
        };
        let mut out = Vec::new();
        // `carry` is the portion of `self` that matches `other` on all
        // fields processed so far.
        let mut carry = *self;
        for f in Field::ALL {
            let self_iv = carry.get(f);
            let other_iv = other.get(f);
            for outside in other_iv.complement(f) {
                if let Some(piece) = self_iv.intersect(&outside) {
                    out.push(carry.with(f, piece));
                }
            }
            // Narrow the carry to the overlapping part of this field.
            let inner = self_iv
                .intersect(&other_iv)
                .expect("non-disjoint by overlap check");
            carry = carry.with(f, inner);
        }
        debug_assert_eq!(carry, overlap);
        out
    }

    /// Exact number of packets in the cube.
    pub fn count(&self) -> u128 {
        Field::ALL.iter().map(|&f| self.get(f).len()).product()
    }

    /// An arbitrary packet inside the cube (the per-field lower bounds).
    pub fn sample(&self) -> Packet {
        let mut p = Packet::new(0, 0, 0, 0, 0);
        for f in Field::ALL {
            p.set_field(f, self.get(f).lo());
        }
        p
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for fld in Field::ALL {
            let iv = self.get(fld);
            if iv.is_full(fld) {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{fld}={iv}")?;
            first = false;
        }
        if first {
            write!(f, "all")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dst_cube(lo: u64, hi: u64) -> Cube {
        Cube::full().with(Field::DstIp, Interval::new(lo, hi))
    }

    #[test]
    fn full_cube_contains_everything() {
        let c = Cube::full();
        assert!(c.contains(&Packet::new(0, 0, 0, 0, 0)));
        assert!(c.contains(&Packet::new(
            u32::MAX,
            u32::MAX,
            u16::MAX,
            u16::MAX,
            u8::MAX
        )));
        assert_eq!(c.count(), 1u128 << 104);
    }

    #[test]
    fn singleton_contains_only_its_packet() {
        let p = Packet::new(1, 2, 3, 4, 5);
        let c = Cube::singleton(&p);
        assert!(c.contains(&p));
        assert!(!c.contains(&Packet::new(1, 2, 3, 4, 6)));
        assert_eq!(c.count(), 1);
        assert_eq!(c.sample(), p);
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = dst_cube(0, 9);
        let b = dst_cube(10, 20);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtract_contained_removes_everything() {
        let a = dst_cube(5, 9);
        assert!(a.subtract(&Cube::full()).is_empty());
    }

    #[test]
    fn subtract_partial_counts_add_up() {
        let a = dst_cube(0, 99);
        let b = dst_cube(50, 149);
        let pieces = a.subtract(&b);
        let total: u128 = pieces.iter().map(Cube::count).sum();
        let expected = a.count() - a.intersect(&b).unwrap().count();
        assert_eq!(total, expected);
        // Pieces must be disjoint from `b` and from each other.
        for p in &pieces {
            assert!(p.intersect(&b).is_none());
        }
        for (i, p) in pieces.iter().enumerate() {
            for q in &pieces[i + 1..] {
                assert!(p.intersect(q).is_none());
            }
        }
    }

    #[test]
    fn subtract_multi_dimensional_is_disjoint_partition() {
        let a = Cube::full()
            .with(Field::DstIp, Interval::new(0, 255))
            .with(Field::DstPort, Interval::new(0, 1023));
        let b = Cube::full()
            .with(Field::DstIp, Interval::new(100, 300))
            .with(Field::DstPort, Interval::new(80, 80))
            .with(Field::Proto, Interval::singleton(6));
        let pieces = a.subtract(&b);
        let inter = a.intersect(&b).unwrap();
        let total: u128 = pieces.iter().map(Cube::count).sum();
        assert_eq!(total + inter.count(), a.count());
        for (i, p) in pieces.iter().enumerate() {
            assert!(p.intersect(&b).is_none());
            for q in &pieces[i + 1..] {
                assert!(p.intersect(q).is_none(), "{p} overlaps {q}");
            }
        }
    }

    #[test]
    fn intersect_narrows_all_fields() {
        let a = Cube::full().with(Field::SrcPort, Interval::new(0, 100));
        let b = Cube::full().with(Field::SrcPort, Interval::new(50, 200));
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.get(Field::SrcPort), Interval::new(50, 100));
    }

    #[test]
    fn display_elides_full_fields() {
        assert_eq!(Cube::full().to_string(), "{all}");
        let c = Cube::full().with(Field::Proto, Interval::singleton(6));
        assert_eq!(c.to_string(), "{proto=6}");
    }
}
