#![forbid(unsafe_code)]

//! Umbrella package whose `examples/` (at the repository root) demonstrate
//! the Jinjing public API end to end:
//!
//! - `quickstart` — the paper's §3.2 running example: express an ACL
//!   clean-up in LAI, `check` it, watch it fail, `fix` it.
//! - `migration` — the §5 ACL migration worked example (Tables 3/4) plus a
//!   synthetic-WAN migration at any of the §8 sizes.
//! - `isolate_service` — §7 Scenario 1: isolating a service prefix with
//!   `control … isolate` + `generate`.
//! - `ingress_egress` — §7 Scenario 2: moving a cell's ACLs from ingress to
//!   egress interfaces, catching the breakage with `check`, repairing with
//!   `fix`.
//!
//! Run with `cargo run --release -p jinjing-examples --example quickstart`.
