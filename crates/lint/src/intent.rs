//! Intent-level analysis (JL1xx): static checks over a validated LAI
//! program, before any update plan is computed.
//!
//! The paper's `control` statements are priority-ordered ("earlier
//! statements win", §6), which makes three whole-program defects statically
//! decidable: contradictory clauses (JL101), vacuous clauses whose traffic
//! is entirely masked by higher-priority clauses (JL102), and
//! duplicate/subsumed clauses (JL103). ACL definitions that no `modify`
//! references are flagged too (JL104), and every defined ACL is run through
//! the rule-level linter.

use crate::diag::{record, Diagnostic, LintReport, Severity};
use crate::rules::lint_acl;
use crate::LintConfig;
use jinjing_acl::{MatchSpec, PacketSet};
use jinjing_lai::{ControlStmt, ControlVerb, HeaderSel, IfaceSel, Program, SlotPattern};

/// Do two slot patterns select at least one common slot (on any network)?
pub(crate) fn pat_overlaps(a: &SlotPattern, b: &SlotPattern) -> bool {
    a.device == b.device
        && match (&a.iface, &b.iface) {
            (IfaceSel::Star, _) | (_, IfaceSel::Star) => true,
            (IfaceSel::Named(x), IfaceSel::Named(y)) => x == y,
        }
        && match (a.dir, b.dir) {
            (None, _) | (_, None) => true,
            (Some(x), Some(y)) => x == y,
        }
}

/// Does `outer` select every slot `inner` selects (on every network)?
pub(crate) fn pat_covers(outer: &SlotPattern, inner: &SlotPattern) -> bool {
    outer.device == inner.device
        && match (&outer.iface, &inner.iface) {
            (IfaceSel::Star, _) => true,
            (IfaceSel::Named(x), IfaceSel::Named(y)) => x == y,
            (IfaceSel::Named(_), IfaceSel::Star) => false,
        }
        && match (outer.dir, inner.dir) {
            (None, _) => true,
            (Some(x), Some(y)) => x == y,
            (Some(_), None) => false,
        }
}

pub(crate) fn pats_overlap(a: &[SlotPattern], b: &[SlotPattern]) -> bool {
    a.iter().any(|x| b.iter().any(|y| pat_overlaps(x, y)))
}

pub(crate) fn pats_cover(outer: &[SlotPattern], inner: &[SlotPattern]) -> bool {
    inner.iter().all(|y| outer.iter().any(|x| pat_covers(x, y)))
}

/// The exact packet region a header selector names.
pub(crate) fn header_set(h: &HeaderSel) -> PacketSet {
    match h {
        HeaderSel::Src(p) => PacketSet::from_cube(MatchSpec::src(*p).cube()),
        HeaderSel::Dst(p) => PacketSet::from_cube(MatchSpec::dst(*p).cube()),
        HeaderSel::All => PacketSet::full(),
    }
}

pub(crate) fn verbs_conflict(a: ControlVerb, b: ControlVerb) -> bool {
    matches!(
        (a, b),
        (ControlVerb::Isolate, ControlVerb::Open) | (ControlVerb::Open, ControlVerb::Isolate)
    )
}

fn join_pats(ps: &[SlotPattern]) -> String {
    let parts: Vec<String> = ps.iter().map(ToString::to_string).collect();
    parts.join(", ")
}

pub(crate) fn control_summary(c: &ControlStmt) -> String {
    format!(
        "{} -> {} {} {}",
        join_pats(&c.from),
        join_pats(&c.to),
        c.verb,
        c.header
    )
}

/// Lint a validated LAI [`Program`].
///
/// Emits:
/// - **JL101** (warning) — two control statements with overlapping
///   endpoints and intersecting traffic regions request *opposite*
///   reachability (`isolate` vs `open`); the earlier one silently wins.
/// - **JL102** (warning) — a control statement whose whole traffic region
///   is masked by earlier, higher-priority statements covering the same
///   endpoints: it can never influence the outcome.
/// - **JL103** (note) — a control statement subsumed by a single earlier
///   statement with the same verb, covering endpoints, and a superset
///   traffic region.
/// - **JL104** (note) — an ACL definition no `modify` statement references.
/// - All **JL0xx** rule-level findings for each defined ACL (located at
///   `lai:acl:{name}:rule:{i}`).
pub fn lint_program(prog: &Program, cfg: &LintConfig) -> LintReport {
    // Program-level lint is partition-global work: under a shard spec it
    // runs only on the primary so the merged report is not duplicated.
    if cfg.shard.as_ref().is_some_and(|s| !s.is_primary()) {
        return LintReport::new();
    }
    let span = cfg.obs.span("lint.intent");
    let mut report = LintReport::new();

    // JL104 + rule-level lint of every definition.
    for def in &prog.acl_defs {
        if !prog.modifies.iter().any(|m| m.acl == def.name) {
            let d = Diagnostic::new(
                "JL104",
                Severity::Note,
                format!("lai:acl:{}", def.name),
                format!(
                    "ACL `{}` is defined but never referenced by a modify statement",
                    def.name
                ),
            )
            .with_suggestion("remove the definition or reference it in a `modify`");
            record(&cfg.obs, &d);
            report.push(d);
        }
        report.merge(lint_acl(&format!("lai:acl:{}", def.name), &def.acl, cfg));
    }

    // Control-statement checks, in priority order. A clause found inert
    // (subsumed or vacuous) is excluded from later comparisons so one root
    // cause yields one diagnostic.
    let cs = &prog.controls;
    let mut inert = vec![false; cs.len()];
    for j in 0..cs.len() {
        // JL103: one earlier clause with the same verb fully subsumes j.
        let subsumer = (0..j).find(|&i| {
            !inert[i]
                && cs[i].verb == cs[j].verb
                && pats_cover(&cs[i].from, &cs[j].from)
                && pats_cover(&cs[i].to, &cs[j].to)
                && header_set(&cs[j].header).is_subset(&header_set(&cs[i].header))
        });
        if let Some(i) = subsumer {
            inert[j] = true;
            let d = Diagnostic::new(
                "JL103",
                Severity::Note,
                format!("lai:control:{j}"),
                format!(
                    "control statement {j} `{}` is subsumed by earlier statement {i} `{}`",
                    control_summary(&cs[j]),
                    control_summary(&cs[i])
                ),
            )
            .with_suggestion("delete the duplicate statement");
            record(&cfg.obs, &d);
            report.push(d);
            continue;
        }

        // Masking: the union of earlier covering clauses (any verb —
        // earlier statements win, including `maintain` shields) may decide
        // all of j's traffic. Track which clauses actually mask something.
        let mut remaining = header_set(&cs[j].header);
        let mut maskers: Vec<usize> = Vec::new();
        for i in 0..j {
            if inert[i] || remaining.is_empty() {
                continue;
            }
            if pats_cover(&cs[i].from, &cs[j].from)
                && pats_cover(&cs[i].to, &cs[j].to)
                && remaining.intersects(&header_set(&cs[i].header))
            {
                maskers.push(i);
                remaining = remaining.subtract(&header_set(&cs[i].header));
            }
        }
        if remaining.is_empty() {
            inert[j] = true;
            // A fully masked clause is a *contradiction* when a masker
            // requests the opposite reachability, and merely *vacuous*
            // otherwise.
            if let Some(&i) = maskers
                .iter()
                .find(|&&i| verbs_conflict(cs[i].verb, cs[j].verb))
            {
                let d = Diagnostic::new(
                    "JL101",
                    Severity::Warning,
                    format!("lai:control:{j}"),
                    format!(
                        "control statements {i} `{}` and {j} `{}` request opposite reachability for overlapping endpoints and traffic; statement {i} wins on the overlap",
                        control_summary(&cs[i]),
                        control_summary(&cs[j])
                    ),
                )
                .with_suggestion(
                    "split the overlapping traffic between the statements or make one an explicit exception",
                );
                record(&cfg.obs, &d);
                report.push(d);
            } else {
                let d = Diagnostic::new(
                    "JL102",
                    Severity::Warning,
                    format!("lai:control:{j}"),
                    format!(
                        "control statement {j} `{}` is vacuous: earlier, higher-priority statements already decide all of its traffic",
                        control_summary(&cs[j])
                    ),
                )
                .with_suggestion(
                    "delete the statement, or move it earlier if its intent should win",
                );
                record(&cfg.obs, &d);
                report.push(d);
            }
            continue;
        }

        // JL101: a higher-priority clause contradicts j on overlapping
        // endpoints and intersecting traffic (the partial-overlap case —
        // full masking was handled above).
        for i in 0..j {
            if inert[i] || !verbs_conflict(cs[i].verb, cs[j].verb) {
                continue;
            }
            if pats_overlap(&cs[i].from, &cs[j].from)
                && pats_overlap(&cs[i].to, &cs[j].to)
                && header_set(&cs[i].header).intersects(&header_set(&cs[j].header))
            {
                let d = Diagnostic::new(
                    "JL101",
                    Severity::Warning,
                    format!("lai:control:{j}"),
                    format!(
                        "control statements {i} `{}` and {j} `{}` request opposite reachability for overlapping endpoints and traffic; statement {i} wins on the overlap",
                        control_summary(&cs[i]),
                        control_summary(&cs[j])
                    ),
                )
                .with_suggestion(
                    "split the overlapping traffic between the statements or make one an explicit exception",
                );
                record(&cfg.obs, &d);
                report.push(d);
            }
        }
    }

    span.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_lai::{parse_program, validate};

    fn program(src: &str) -> Program {
        validate(parse_program(src).unwrap()).unwrap()
    }

    fn lint(src: &str) -> LintReport {
        let mut r = lint_program(&program(src), &LintConfig::default());
        r.sort();
        r
    }

    const PREAMBLE: &str =
        "acl X { deny dst 9.0.0.0/8 }\nscope A:*, B:*\nallow A:*\nmodify A:1 to X\n";

    #[test]
    fn clean_program_is_clean() {
        let r = lint(&format!(
            "{PREAMBLE}control A:* -> B:* isolate dst 1.0.0.0/8\ncheck\n"
        ));
        assert!(r.is_empty(), "{:?}", r.diagnostics());
    }

    #[test]
    fn contradictory_controls_are_jl101() {
        let r = lint(&format!(
            "{PREAMBLE}control A:* -> B:* isolate dst 1.0.0.0/8\n\
             control A:1 -> B:* open dst 1.2.0.0/16\ncheck\n"
        ));
        let d = r.diagnostics().iter().find(|d| d.code == "JL101").unwrap();
        assert_eq!(d.location, "lai:control:1");
        assert!(d.message.contains("statement 0 wins"), "{}", d.message);
    }

    #[test]
    fn masked_clause_is_jl102() {
        // Two earlier halves jointly mask the later whole. Same verb
        // everywhere, and no *single* earlier clause subsumes the whole, so
        // this is vacuity (JL102), not subsumption (JL103) or contradiction
        // (JL101).
        let r = lint(&format!(
            "{PREAMBLE}control A:* -> B:* isolate dst 1.0.0.0/9\n\
             control A:* -> B:* isolate dst 1.128.0.0/9\n\
             control A:1 -> B:* isolate dst 1.0.0.0/8\ncheck\n"
        ));
        let d = r.diagnostics().iter().find(|d| d.code == "JL102").unwrap();
        assert_eq!(d.location, "lai:control:2");
        // Masked clauses are inert: no extra JL101/JL103 for the same root
        // cause.
        assert!(!r.has_code("JL101"));
        assert!(!r.has_code("JL103"));
    }

    #[test]
    fn fully_masked_conflicting_clause_is_jl101_not_jl102() {
        // When the masking clauses *contradict* the masked one, the right
        // diagnostic is the contradiction, not mere vacuity.
        let r = lint(&format!(
            "{PREAMBLE}control A:* -> B:* isolate dst 1.0.0.0/8\n\
             control A:1 -> B:* open dst 1.2.0.0/16\ncheck\n"
        ));
        assert!(r.has_code("JL101"));
        assert!(!r.has_code("JL102"), "{:?}", r.diagnostics());
    }

    #[test]
    fn subsumed_clause_is_jl103() {
        let r = lint(&format!(
            "{PREAMBLE}control A:* -> B:* isolate dst 1.0.0.0/8\n\
             control A:1 -> B:2 isolate dst 1.2.0.0/16\ncheck\n"
        ));
        let d = r.diagnostics().iter().find(|d| d.code == "JL103").unwrap();
        assert_eq!(d.location, "lai:control:1");
        assert!(!r.has_code("JL102"), "{:?}", r.diagnostics());
    }

    #[test]
    fn unused_acl_definition_is_jl104() {
        let r = lint(
            "acl X { deny dst 9.0.0.0/8 }\nacl Unused { permit all }\n\
             scope A:*\nallow A:*\nmodify A:1 to X\ncheck\n",
        );
        let d = r.diagnostics().iter().find(|d| d.code == "JL104").unwrap();
        assert_eq!(d.location, "lai:acl:Unused");
    }

    #[test]
    fn defined_acls_get_rule_level_lint() {
        let r = lint(
            "acl Bad {\n deny dst 1.0.0.0/8\n deny dst 1.2.0.0/16\n}\n\
             scope A:*\nallow A:*\nmodify A:1 to Bad\ncheck\n",
        );
        let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
        assert_eq!(d.location, "lai:acl:Bad:rule:1");
    }

    #[test]
    fn disjoint_endpoints_do_not_conflict() {
        let r = lint(&format!(
            "{PREAMBLE}control A:1 -> B:* isolate dst 1.0.0.0/8\n\
             control A:2 -> B:* open dst 1.0.0.0/8\ncheck\n"
        ));
        assert!(!r.has_code("JL101"), "{:?}", r.diagnostics());
    }

    #[test]
    fn maintain_does_not_contradict_but_can_mask() {
        let r = lint(&format!(
            "{PREAMBLE}control A:* -> B:* maintain all\n\
             control A:1 -> B:1 open dst 1.0.0.0/8\ncheck\n"
        ));
        // The `open` is masked by the shield — JL102, not JL101.
        assert!(r.has_code("JL102"));
        assert!(!r.has_code("JL101"));
    }

    #[test]
    fn pattern_cover_and_overlap_semantics() {
        use jinjing_lai::DirSpec;
        let star = SlotPattern::star("A");
        let named = SlotPattern::named("A", "1");
        let named_in = SlotPattern::named("A", "1").with_dir(DirSpec::In);
        let other = SlotPattern::star("B");
        assert!(pat_covers(&star, &named));
        assert!(!pat_covers(&named, &star));
        assert!(pat_covers(&named, &named_in));
        assert!(!pat_covers(&named_in, &named));
        assert!(pat_overlaps(&named_in, &named));
        assert!(!pat_overlaps(&star, &other));
    }
}
