//! Rule-level analysis (JL0xx): shadowing, redundancy, and conflicts within
//! a single ACL.
//!
//! The candidate search is routed through the §5.5 [`RuleTree`] so a rule is
//! only compared against rules whose 5-tuple regions actually overlap it,
//! the exact decisions come from the packet-set algebra, and — for
//! full-shadow findings — the CDCL solver re-proves the result on the
//! balanced-tree ACL encoding, upgrading the diagnostic's certainty from
//! [`Certainty::Heuristic`] to [`Certainty::SolverConfirmed`].

use crate::diag::{record, Certainty, Diagnostic, LintReport, Severity};
use crate::LintConfig;
use jinjing_acl::rtree::RuleTree;
use jinjing_acl::{Acl, Action, PacketSet, Rule};
use jinjing_solver::aclenc::{encode, Encoding};
use jinjing_solver::{CircuitBuilder, HeaderVars, SolveResult};

fn fmt_indices(idxs: &[usize]) -> String {
    let parts: Vec<String> = idxs.iter().map(ToString::to_string).collect();
    parts.join(", ")
}

/// Ask the CDCL solver to confirm that rule `idx` is fully shadowed: build
/// header variables, encode "some earlier rule matches" as a balanced-tree
/// ACL circuit (every earlier rule mapped to `permit`, default `deny`),
/// assert the packet matches rule `idx` but no earlier rule, and check for
/// Unsat.
fn solver_confirms_full_shadow(acl: &Acl, idx: usize, cfg: &LintConfig) -> bool {
    let _span = cfg.obs.span("lint.solver_confirm");
    let rules = acl.rules();
    let mut c = CircuitBuilder::new();
    c.set_obs(cfg.obs.clone());
    let h = HeaderVars::new(&mut c);
    let earlier = Acl::new(
        rules[..idx]
            .iter()
            .map(|r| Rule::new(Action::Permit, r.matches))
            .collect(),
        Action::Deny,
    );
    let hit_earlier = encode(&mut c, &h, &earlier, Encoding::Tree);
    let hits_rule = h.matches(&mut c, &rules[idx].matches);
    c.assert(hits_rule);
    c.assert(!hit_earlier);
    matches!(c.solve(), SolveResult::Unsat)
}

/// Lint one ACL. `name` is the location prefix (e.g. `"A:1-in"` for a
/// configured slot or `"lai:acl:A1'"` for an intent-file definition); rule
/// findings are located at `"{name}:rule:{index}"`.
///
/// Emits:
/// - **JL001** (warning) — a rule no packet can reach because earlier rules
///   jointly cover its whole match region; solver-confirmed when
///   [`LintConfig::solver_confirm`] is on.
/// - **JL002** (note) — a rule partially shadowed by earlier rules *with the
///   same action* (wasted overlap, often a refactoring leftover).
/// - **JL003** (note) — a reachable rule whose removal provably leaves the
///   decision model unchanged (the [`jinjing_acl::simplify`] criterion,
///   surfaced as a diagnostic instead of a silent rewrite).
/// - **JL004** (note) — overlapping rule pairs with *opposite* actions,
///   ranked by overlap volume and capped at
///   [`LintConfig::max_conflicts_per_acl`]; first-match makes the earlier
///   rule win, which is either an intentional exception or a conflict.
pub fn lint_acl(name: &str, acl: &Acl, cfg: &LintConfig) -> LintReport {
    let span = cfg.obs.span("lint.acl");
    let mut report = LintReport::new();
    let rules = acl.rules();
    let tree = RuleTree::build(rules.iter().map(|r| r.matches).collect());
    let mut fully_shadowed = vec![false; rules.len()];

    for i in 0..rules.len() {
        let mut overlapping = tree.overlapping(&rules[i].matches);
        overlapping.sort_unstable();
        let earlier: Vec<usize> = overlapping.iter().copied().filter(|&j| j < i).collect();
        let later: Vec<usize> = overlapping.iter().copied().filter(|&j| j > i).collect();

        // Packets that actually reach rule i (its cube minus everything an
        // earlier overlapping rule takes first).
        let mut effective = PacketSet::from_cube(rules[i].matches.cube());
        let mut shadowers: Vec<usize> = Vec::new();
        for &j in &earlier {
            shadowers.push(j);
            effective = effective.subtract(&PacketSet::from_cube(rules[j].matches.cube()));
            if effective.is_empty() {
                break;
            }
        }

        if effective.is_empty() {
            fully_shadowed[i] = true;
            let certainty = if cfg.solver_confirm && solver_confirms_full_shadow(acl, i, cfg) {
                cfg.obs.counter_add("lint.solver_confirmed", 1);
                Certainty::SolverConfirmed
            } else {
                Certainty::Heuristic
            };
            let d = Diagnostic::new(
                "JL001",
                Severity::Warning,
                format!("{name}:rule:{i}"),
                format!(
                    "rule {i} `{}` is fully shadowed by earlier rule(s) [{}]",
                    rules[i],
                    fmt_indices(&shadowers)
                ),
            )
            .with_certainty(certainty)
            .with_suggestion("delete this rule; no packet can reach it");
            record(&cfg.obs, &d);
            report.push(d);
            continue;
        }

        // Redundancy: the tail (restricted to overlapping rules — sound,
        // since non-overlapping rules cannot match packets of `effective`)
        // plus the default give every reaching packet the same action.
        let tail = Acl::new(
            later.iter().map(|&j| rules[j]).collect(),
            acl.default_action(),
        );
        if tail.uniform_decision(&effective) == Some(rules[i].action) {
            let d = Diagnostic::new(
                "JL003",
                Severity::Note,
                format!("{name}:rule:{i}"),
                format!(
                    "rule {i} `{}` is redundant: the rules after it and the default already {} every packet it matches",
                    rules[i], rules[i].action
                ),
            )
            .with_suggestion("delete this rule; the decision model is unchanged");
            record(&cfg.obs, &d);
            report.push(d);
            continue;
        }

        // Partial shadow by earlier same-action rules: part of the match
        // region is dead weight.
        let coverers: Vec<usize> = earlier
            .iter()
            .copied()
            .filter(|&j| rules[j].action == rules[i].action)
            .collect();
        if !coverers.is_empty() {
            let d = Diagnostic::new(
                "JL002",
                Severity::Note,
                format!("{name}:rule:{i}"),
                format!(
                    "rule {i} `{}` is partially shadowed by earlier same-action rule(s) [{}]",
                    rules[i],
                    fmt_indices(&coverers)
                ),
            )
            .with_suggestion("narrow this rule to the packets it actually decides");
            record(&cfg.obs, &d);
            report.push(d);
        }
    }

    // Conflicts: overlapping pairs with opposite actions, ranked by the
    // exact overlap volume (descending), ties broken by position.
    let mut pairs: Vec<(u128, usize, usize)> = Vec::new();
    for i in 0..rules.len() {
        if fully_shadowed[i] {
            continue; // already reported as JL001; the overlap is moot
        }
        let mut overlapping = tree.overlapping(&rules[i].matches);
        overlapping.sort_unstable();
        for j in overlapping.into_iter().filter(|&j| j < i) {
            if fully_shadowed[j] || rules[j].action == rules[i].action {
                continue;
            }
            if let Some(inter) = rules[j].matches.intersect(&rules[i].matches) {
                pairs.push((inter.cube().count(), j, i));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    for &(volume, j, i) in pairs.iter().take(cfg.max_conflicts_per_acl) {
        let d = Diagnostic::new(
            "JL004",
            Severity::Note,
            format!("{name}:rule:{i}"),
            format!(
                "rule {j} `{}` and rule {i} `{}` overlap with opposite actions ({volume} packets); first-match gives rule {j} the overlap",
                rules[j], rules[i]
            ),
        )
        .with_suggestion("split the overlap or reorder the rules to make the precedence explicit");
        record(&cfg.obs, &d);
        report.push(d);
    }

    span.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::AclBuilder;

    fn lint(acl: &Acl) -> LintReport {
        let mut r = lint_acl("t", acl, &LintConfig::default());
        r.sort();
        r
    }

    #[test]
    fn clean_acl_has_no_findings() {
        let acl = AclBuilder::default_permit().deny_dst("6.0.0.0/8").build();
        assert!(lint(&acl).is_empty());
    }

    #[test]
    fn full_shadow_is_solver_confirmed() {
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16") // fully inside 1/8
            .build();
        let r = lint(&acl);
        let d = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "JL001")
            .expect("JL001 reported");
        assert_eq!(d.certainty, Some(Certainty::SolverConfirmed));
        assert_eq!(d.location, "t:rule:1");
        assert!(d.message.contains("[0]"), "{}", d.message);
    }

    #[test]
    fn full_shadow_without_solver_is_heuristic() {
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16")
            .build();
        let cfg = LintConfig {
            solver_confirm: false,
            ..LintConfig::default()
        };
        let r = lint_acl("t", &acl, &cfg);
        let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
        assert_eq!(d.certainty, Some(Certainty::Heuristic));
    }

    #[test]
    fn joint_shadow_by_several_rules_is_detected() {
        // 1.2/16 is covered by the union 1.2.0/17 ∪ 1.2.128/17, neither of
        // which covers it alone.
        let acl = AclBuilder::default_permit()
            .deny_dst("1.2.0.0/17")
            .deny_dst("1.2.128.0/17")
            .deny_dst("1.2.0.0/16")
            .build();
        let r = lint(&acl);
        let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
        assert_eq!(d.location, "t:rule:2");
        assert_eq!(d.certainty, Some(Certainty::SolverConfirmed));
        assert!(d.message.contains("[0, 1]"), "{}", d.message);
    }

    #[test]
    fn redundant_rule_is_reported_not_rewritten() {
        // permit 9/8 then default permit: reachable but pointless.
        let acl = AclBuilder::default_permit()
            .permit_dst("9.0.0.0/8")
            .deny_dst("6.0.0.0/8")
            .build();
        let r = lint(&acl);
        let d = r.diagnostics().iter().find(|d| d.code == "JL003").unwrap();
        assert_eq!(d.location, "t:rule:0");
        assert_eq!(d.severity, Severity::Note);
    }

    #[test]
    fn partial_shadow_same_action_is_a_note() {
        let acl = AclBuilder::default_deny()
            .permit_dst("1.2.0.0/16")
            .permit_dst("1.0.0.0/8") // partially shadowed by rule 0
            .build();
        let r = lint(&acl);
        let d = r.diagnostics().iter().find(|d| d.code == "JL002").unwrap();
        assert_eq!(d.location, "t:rule:1");
    }

    #[test]
    fn conflicts_are_ranked_by_overlap_volume() {
        // Partial opposite-action overlaps (neither rule contains the
        // other, so nothing is fully shadowed): /7 vs /8 on the dst, and a
        // /16 vs /24.
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("7.7.7.0/24")
            .permit_dst("0.0.0.0/7") // big overlap (all of 1/8) with rule 0
            .permit_dst("7.7.0.0/16") // small overlap (7.7.7/24) with rule 1
            .build();
        let r = lint_acl("t", &acl, &LintConfig::default());
        let conflicts: Vec<&Diagnostic> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "JL004")
            .collect();
        assert_eq!(conflicts.len(), 2);
        // Biggest overlap first (pre-sort order is emission order).
        assert_eq!(conflicts[0].location, "t:rule:2");
        assert_eq!(conflicts[1].location, "t:rule:3");
    }

    #[test]
    fn conflict_cap_limits_output() {
        // A src-based deny overlaps every dst-based permit partially.
        let mut b = AclBuilder::default_permit().deny_src("10.0.0.0/8");
        for i in 0..8 {
            b = b.permit_dst(&format!("{}.0.0.0/8", 20 + i));
        }
        let acl = b.build();
        let cfg = LintConfig {
            max_conflicts_per_acl: 3,
            ..LintConfig::default()
        };
        let r = lint_acl("t", &acl, &cfg);
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "JL004").count(),
            3
        );
    }

    #[test]
    fn counters_land_in_obs() {
        let cfg = LintConfig::default();
        let acl = AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16")
            .build();
        let _ = lint_acl("t", &acl, &cfg);
        assert_eq!(cfg.obs.counter_get("lint.diagnostics"), 1);
        assert_eq!(cfg.obs.counter_get("lint.code.JL001"), 1);
        assert_eq!(cfg.obs.counter_get("lint.solver_confirmed"), 1);
    }
}
