//! SARIF 2.1.0 rendering of a [`LintReport`], for GitHub-code-scanning
//! style CI integration (`jinjing lint --format sarif`).
//!
//! The output is a minimal, strictly valid SARIF log: one run, one tool
//! driver (`jinjing-lint`) whose rule table lists exactly the codes that
//! appear in the report, and one `result` per diagnostic. Locations are
//! logical (`fullyQualifiedName` carries the same location string as the
//! canonical JSON) because lint findings point into parsed configurations
//! and intent programs, not physical files. Certainty, suggestion, and
//! tenant attribution ride along in each result's property bag.
//!
//! Rendering shares the canonical [`JsonWriter`] with
//! [`LintReport::to_json`]: keys are written in alphabetical order (`$`
//! sorts before letters, so `$schema` is first), strings are escaped the
//! same way, and the bytes are stable across runs and thread counts.

use crate::diag::{LintReport, Severity, SCHEMA_VERSION};
use jinjing_obs::json::JsonWriter;

/// One-line description of a diagnostic code, used for the SARIF rule
/// table. Unknown codes get a generic fallback so the renderer is total.
pub fn describe(code: &str) -> &'static str {
    match code {
        "JL001" => "rule is fully shadowed by earlier rules",
        "JL002" => "rule partially shadows a later rule with the opposite action",
        "JL003" => "rule is redundant: removing it leaves the ACL semantics unchanged",
        "JL004" => "permit/deny conflict: overlapping rules disagree on an action",
        "JL101" => "contradictory controls: two statements request opposite reachability",
        "JL102" => "vacuous control: the statement matches no traffic or no endpoints",
        "JL103" => "subsumed control: a statement is entirely covered by another",
        "JL104" => "unused acl definition: defined but never referenced",
        "JL201" => "dangling reference: the spec names an unknown device, slot, or interface",
        "JL202" => "invalid binding: the spec binds an ACL inconsistently",
        "JL203" => "silent-allow path: traffic crosses the network unfiltered",
        "JL301" => "cross-tenant conflict: two tenants request opposite reachability on an overlapping flow space",
        "JL302" => "cross-tenant subsumption: one tenant's control duplicates or is covered by another tenant's",
        "JL303" => "priority preview: which tenant wins a contested region under the given priority order",
        "JL304" => "unresolved contest: a contested region between tenants with no relative priority",
        _ => "jinjing lint diagnostic",
    }
}

/// SARIF `level` for a severity. SARIF has no separate `info`-vs-`note`
/// split at this granularity; our `Note` maps to SARIF's `note`.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Render a report as a SARIF 2.1.0 log. Sort the report first — results
/// are emitted in report order, and the rule table lists each distinct
/// code once, in ascending code order. Byte-stable: same report, same
/// bytes, regardless of thread count or platform.
pub fn to_sarif(report: &LintReport) -> String {
    let mut codes: Vec<&'static str> = report.diagnostics().iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("$schema");
    w.string("https://json.schemastore.org/sarif-2.1.0.json");
    w.key("runs");
    w.begin_array();
    w.begin_object();
    w.key("results");
    w.begin_array();
    for d in report.diagnostics() {
        w.begin_object();
        w.key("level");
        w.string(level(d.severity));
        w.key("locations");
        w.begin_array();
        w.begin_object();
        w.key("logicalLocations");
        w.begin_array();
        w.begin_object();
        w.key("fullyQualifiedName");
        w.string(&d.location);
        w.end_object();
        w.end_array();
        w.end_object();
        w.end_array();
        w.key("message");
        w.begin_object();
        w.key("text");
        w.string(&d.message);
        w.end_object();
        let has_props = d.certainty.is_some() || d.suggestion.is_some() || d.tenant.is_some();
        if has_props {
            w.key("properties");
            w.begin_object();
            if let Some(c) = d.certainty {
                w.key("certainty");
                w.string(c.as_str());
            }
            if let Some(s) = &d.suggestion {
                w.key("suggestion");
                w.string(s);
            }
            if let Some(t) = &d.tenant {
                w.key("tenant");
                w.string(t);
            }
            w.end_object();
        }
        w.key("ruleId");
        w.string(d.code);
        w.end_object();
    }
    w.end_array();
    w.key("tool");
    w.begin_object();
    w.key("driver");
    w.begin_object();
    w.key("name");
    w.string("jinjing-lint");
    w.key("rules");
    w.begin_array();
    for code in codes {
        w.begin_object();
        w.key("id");
        w.string(code);
        w.key("shortDescription");
        w.begin_object();
        w.key("text");
        w.string(describe(code));
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("version");
    w.string(SCHEMA_VERSION);
    w.end_object();
    w.end_object();
    w.end_object();
    w.end_array();
    w.key("version");
    w.string("2.1.0");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Certainty, Diagnostic};

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(
                "JL301",
                Severity::Warning,
                "multi:alpha:control:0<->beta:control:0",
                "opposite reachability",
            )
            .with_certainty(Certainty::SolverConfirmed)
            .with_tenant("alpha,beta")
            .with_suggestion("partition the flow space"),
        );
        r.push(Diagnostic::new(
            "JL003",
            Severity::Note,
            "A:1-in:rule:2",
            "redundant rule",
        ));
        r.sort();
        r
    }

    #[test]
    fn sarif_shape_and_byte_stability() {
        let s = to_sarif(&sample());
        assert!(s.starts_with("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(s.ends_with("\"version\":\"2.1.0\"}"));
        assert!(s.contains("\"ruleId\":\"JL301\""));
        assert!(s.contains("\"fullyQualifiedName\":\"A:1-in:rule:2\""));
        assert!(s.contains("\"tenant\":\"alpha,beta\""));
        assert!(s.contains("\"certainty\":\"solver-confirmed\""));
        // Rule table: each distinct code once, ascending.
        let jl003 = s.find("\"id\":\"JL003\"").unwrap();
        let jl301 = s.find("\"id\":\"JL301\"").unwrap();
        assert!(jl003 < jl301);
        assert_eq!(s.matches("\"id\":\"JL301\"").count(), 1);
        assert_eq!(s, to_sarif(&sample()));
    }

    #[test]
    fn empty_report_has_empty_results_and_rules() {
        let s = to_sarif(&LintReport::new());
        assert!(s.contains("\"results\":[]"));
        assert!(s.contains("\"rules\":[]"));
    }

    #[test]
    fn every_registered_code_has_a_description() {
        for code in [
            "JL001", "JL002", "JL003", "JL004", "JL101", "JL102", "JL103", "JL104", "JL201",
            "JL202", "JL203", "JL301", "JL302", "JL303", "JL304",
        ] {
            assert_ne!(describe(code), "jinjing lint diagnostic", "{code}");
        }
        assert_eq!(describe("JL999"), "jinjing lint diagnostic");
    }

    #[test]
    fn results_follow_report_order() {
        let s = to_sarif(&sample());
        let first = s.find("\"ruleId\":\"JL003\"").unwrap();
        let second = s.find("\"ruleId\":\"JL301\"").unwrap();
        assert!(first < second);
    }
}
