//! The diagnostic model: severities, certainties, individual findings, and
//! the machine-readable [`LintReport`].
//!
//! Output follows rustc's conventions: every diagnostic carries a stable
//! *code* (`JL0xx` rule-level, `JL1xx` intent-level, `JL2xx` network-level),
//! a severity, a location string, a human message, and an optional suggested
//! fix. Reports render either as rustc-style text or as deterministic JSON
//! (sorted diagnostics, sorted keys) suitable for diffing in CI.

use jinjing_obs::json::JsonWriter;
use std::fmt;

/// Version of the machine-readable lint report format, rendered as the
/// top-level `schema_version` key of [`LintReport::to_json`] so downstream
/// parsers can gate on format changes. Bumped to `"2"` when diagnostics
/// gained the optional `tenant` attribution field and the JL3xx
/// cross-tenant family.
pub const SCHEMA_VERSION: &str = "2";

/// How serious a finding is.
///
/// `Error` means the input is broken (e.g. a dangling reference) and later
/// stages would fail on it; `Warning` flags likely mistakes; `Note` flags
/// hygiene issues that are probably intentional but worth knowing about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: legal and harmless, but worth a look.
    Note,
    /// Likely a mistake; the configuration still builds and runs.
    Warning,
    /// The input is inconsistent; downstream stages would reject it.
    Error,
}

impl Severity {
    /// Stable lowercase name used in JSON and text output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How sure the analysis is about a finding.
///
/// Most checks are exact consequences of the packet-set algebra, but the
/// full-shadow check (JL001) can additionally be *confirmed by the CDCL
/// solver* on the balanced-tree ACL encoding: the solver proves that no
/// packet reaches the shadowed rule. Findings that skipped the solver pass
/// are reported as [`Certainty::Heuristic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// The CDCL solver proved the finding (Unsat on its negation).
    SolverConfirmed,
    /// Derived from the set algebra / pattern analysis only.
    Heuristic,
}

impl Certainty {
    /// Stable name used in JSON and text output.
    pub fn as_str(self) -> &'static str {
        match self {
            Certainty::SolverConfirmed => "solver-confirmed",
            Certainty::Heuristic => "heuristic",
        }
    }
}

impl fmt::Display for Certainty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from the registry (`JL001`, `JL101`, …).
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// How sure the analysis is (only set by checks that distinguish
    /// solver-confirmed from heuristic findings).
    pub certainty: Option<Certainty>,
    /// Where the finding points: `"A:1-in:rule:3"`, `"lai:control:2"`,
    /// `"spec:links[0]"`, `"path:A:0->B:1"`, ….
    pub location: String,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix, when one exists.
    pub suggestion: Option<String>,
    /// Tenant attribution for multi-intent runs: which tenant's intent the
    /// finding belongs to, or a comma-joined pair (`"alpha,beta"`) for
    /// cross-tenant findings. `None` on single-program runs.
    pub tenant: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic without certainty or suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            certainty: None,
            location: location.into(),
            message: message.into(),
            suggestion: None,
            tenant: None,
        }
    }

    /// Attach a suggested fix.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Attach a certainty level.
    pub fn with_certainty(mut self, c: Certainty) -> Diagnostic {
        self.certainty = Some(c);
        self
    }

    /// Attach tenant attribution (multi-intent runs).
    pub fn with_tenant(mut self, t: impl Into<String>) -> Diagnostic {
        self.tenant = Some(t.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}\n  --> {}",
            self.severity, self.code, self.message, self.location
        )?;
        if let Some(t) = &self.tenant {
            write!(f, "\n  = note: tenant: {t}")?;
        }
        if let Some(c) = self.certainty {
            write!(f, "\n  = note: certainty: {c}")?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n  = help: {s}")?;
        }
        Ok(())
    }
}

/// Record a freshly emitted diagnostic in the run's metric store. Called at
/// emission time (not on merge) so merged sub-reports are not double
/// counted.
pub(crate) fn record(obs: &jinjing_obs::Collector, d: &Diagnostic) {
    obs.counter_add("lint.diagnostics", 1);
    obs.counter_add(&format!("lint.severity.{}", d.severity), 1);
    obs.counter_add(&format!("lint.code.{}", d.code), 1);
}

/// Intern a code string to its registry `&'static str`. [`Diagnostic`]
/// stores codes as static strings (they come from a closed registry), so
/// anything parsing diagnostics off a wire must map back through this
/// table; an unknown code is a schema violation, not a new finding.
pub fn static_code(code: &str) -> Option<&'static str> {
    const CODES: [&str; 15] = [
        "JL001", "JL002", "JL003", "JL004", "JL101", "JL102", "JL103", "JL104", "JL201", "JL202",
        "JL203", "JL301", "JL302", "JL303", "JL304",
    ];
    CODES.iter().copied().find(|c| *c == code)
}

/// An ordered collection of findings with deterministic serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Append one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Absorb another report's findings.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sort findings by `(location, code, tenant, message)` so output is
    /// stable no matter which analysis layer — or which tenant's program —
    /// ran first. Call once before rendering.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            a.location
                .cmp(&b.location)
                .then_with(|| a.code.cmp(b.code))
                .then_with(|| a.tenant.cmp(&b.tenant))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Attribute every not-yet-attributed finding to `tenant`. Used by the
    /// multi-intent engine entry point to tag each tenant's single-program
    /// findings before merging the per-tenant reports.
    pub fn attribute_tenant(&mut self, tenant: &str) {
        for d in &mut self.diagnostics {
            if d.tenant.is_none() {
                d.tenant = Some(tenant.to_string());
            }
        }
    }

    /// The findings, in current order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` when there are no findings.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at the given severity.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// `true` when any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// `true` when any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Deterministic JSON rendering: diagnostics in report order (sort
    /// first!) with alphabetically ordered keys, plus the
    /// [`SCHEMA_VERSION`] marker and a severity summary. Byte-stable
    /// across runs — no timestamps, no addresses.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("diagnostics");
        w.begin_array();
        for d in &self.diagnostics {
            w.begin_object();
            if let Some(c) = d.certainty {
                w.key("certainty");
                w.string(c.as_str());
            }
            w.key("code");
            w.string(d.code);
            w.key("location");
            w.string(&d.location);
            w.key("message");
            w.string(&d.message);
            w.key("severity");
            w.string(d.severity.as_str());
            if let Some(s) = &d.suggestion {
                w.key("suggestion");
                w.string(s);
            }
            if let Some(t) = &d.tenant {
                w.key("tenant");
                w.string(t);
            }
            w.end_object();
        }
        w.end_array();
        w.key("schema_version");
        w.string(SCHEMA_VERSION);
        w.key("summary");
        w.begin_object();
        w.key("error");
        w.u64(self.count(Severity::Error) as u64);
        w.key("note");
        w.u64(self.count(Severity::Note) as u64);
        w.key("total");
        w.u64(self.len() as u64);
        w.key("warning");
        w.u64(self.count(Severity::Warning) as u64);
        w.end_object();
        w.end_object();
        w.finish()
    }

    /// Parse a report back from its [`LintReport::to_json`] rendering —
    /// the wire format a shard backend returns to the coordinator. The
    /// summary and schema blocks are derived data and are not consulted;
    /// re-rendering the parsed report reproduces them (and the full
    /// document) byte-identically. Unknown codes, severities or
    /// certainties are schema violations and fail the parse.
    pub fn from_json(text: &str) -> Result<LintReport, String> {
        let root = jinjing_obs::json::parse(text)?;
        let diags = root
            .get("diagnostics")
            .ok_or_else(|| "lint report: missing \"diagnostics\"".to_string())?;
        let mut report = LintReport::new();
        for d in diags.elements() {
            let str_field = |key: &str| -> Result<String, String> {
                d.get(key)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("lint diagnostic: missing \"{key}\""))
            };
            let code_raw = str_field("code")?;
            let code = static_code(&code_raw)
                .ok_or_else(|| format!("lint diagnostic: unknown code {code_raw:?}"))?;
            let severity = match str_field("severity")?.as_str() {
                "note" => Severity::Note,
                "warning" => Severity::Warning,
                "error" => Severity::Error,
                other => return Err(format!("lint diagnostic: unknown severity {other:?}")),
            };
            let mut diag =
                Diagnostic::new(code, severity, str_field("location")?, str_field("message")?);
            match d.get("certainty").and_then(|v| v.as_str()) {
                Some("solver-confirmed") => diag.certainty = Some(Certainty::SolverConfirmed),
                Some("heuristic") => diag.certainty = Some(Certainty::Heuristic),
                Some(other) => {
                    return Err(format!("lint diagnostic: unknown certainty {other:?}"))
                }
                None => {}
            }
            if let Some(s) = d.get("suggestion").and_then(|v| v.as_str()) {
                diag.suggestion = Some(s.to_string());
            }
            if let Some(t) = d.get("tenant").and_then(|v| v.as_str()) {
                diag.tenant = Some(t.to_string());
            }
            report.push(diag);
        }
        Ok(report)
    }

    /// Rustc-style text rendering, one block per finding plus a summary
    /// line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        if self.is_empty() {
            out.push_str("lint: clean — no diagnostics\n");
        } else {
            let _ = writeln!(
                out,
                "lint: {} diagnostic(s) — {} error(s), {} warning(s), {} note(s)",
                self.len(),
                self.count(Severity::Error),
                self.count(Severity::Warning),
                self.count(Severity::Note)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new("JL003", Severity::Note, "A:1-in:rule:2", "redundant rule")
                .with_suggestion("delete it"),
        );
        r.push(
            Diagnostic::new("JL001", Severity::Warning, "A:1-in:rule:1", "shadowed rule")
                .with_certainty(Certainty::SolverConfirmed),
        );
        r.push(Diagnostic::new(
            "JL201",
            Severity::Error,
            "spec:links[0]",
            "unknown interface",
        ));
        r
    }

    #[test]
    fn sort_orders_by_location_then_code() {
        let mut r = sample();
        r.sort();
        let codes: Vec<&str> = r.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["JL001", "JL003", "JL201"]);
    }

    #[test]
    fn json_is_byte_stable_and_sorted_keys() {
        let mut r = sample();
        r.sort();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with(
            "{\"diagnostics\":[{\"certainty\":\"solver-confirmed\",\"code\":\"JL001\""
        ));
        assert!(a.contains("\"schema_version\":\"2\""));
        assert!(a.ends_with("\"summary\":{\"error\":1,\"note\":1,\"total\":3,\"warning\":1}}"));
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let mut r = sample();
        r.sort();
        let t = r.render_text();
        assert!(t.contains("warning[JL001]: shadowed rule"));
        assert!(t.contains("  --> A:1-in:rule:1"));
        assert!(t.contains("  = note: certainty: solver-confirmed"));
        assert!(t.contains("  = help: delete it"));
        assert!(t.contains("1 error(s), 1 warning(s), 1 note(s)"));
    }

    #[test]
    fn empty_report_is_clean() {
        let r = LintReport::new();
        assert!(!r.has_errors());
        assert!(r.is_empty());
        assert_eq!(
            r.to_json(),
            "{\"diagnostics\":[],\"schema_version\":\"2\",\
             \"summary\":{\"error\":0,\"note\":0,\"total\":0,\"warning\":0}}"
        );
        assert!(r.render_text().contains("clean"));
    }

    #[test]
    fn tenant_attribution_renders_and_sorts() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new("JL301", Severity::Warning, "multi:x", "conflict").with_tenant("b"));
        r.push(Diagnostic::new("JL301", Severity::Warning, "multi:x", "conflict").with_tenant("a"));
        r.sort();
        assert_eq!(r.diagnostics()[0].tenant.as_deref(), Some("a"));
        let json = r.to_json();
        assert!(json.contains("\"tenant\":\"a\""), "{json}");
        assert!(r.render_text().contains("= note: tenant: a"));
        // attribute_tenant only fills the blanks.
        let mut r = LintReport::new();
        r.push(Diagnostic::new("JL101", Severity::Warning, "lai:control:0", "m"));
        r.push(Diagnostic::new("JL301", Severity::Warning, "multi:x", "m").with_tenant("a,b"));
        r.attribute_tenant("alpha");
        assert_eq!(r.diagnostics()[0].tenant.as_deref(), Some("alpha"));
        assert_eq!(r.diagnostics()[1].tenant.as_deref(), Some("a,b"));
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let mut r = sample();
        r.push(Diagnostic::new("JL301", Severity::Warning, "multi:x", "conflict").with_tenant("a"));
        r.sort();
        let json = r.to_json();
        let back = LintReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json, "re-render must be byte-identical");
        // Empty reports round-trip too.
        let empty = LintReport::new();
        assert_eq!(
            LintReport::from_json(&empty.to_json()).unwrap().to_json(),
            empty.to_json()
        );
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(LintReport::from_json("{}").is_err(), "missing diagnostics");
        assert!(
            LintReport::from_json(
                "{\"diagnostics\":[{\"code\":\"JL999\",\"location\":\"x\",\
                 \"message\":\"m\",\"severity\":\"note\"}]}"
            )
            .is_err(),
            "unknown code"
        );
        assert!(
            LintReport::from_json(
                "{\"diagnostics\":[{\"code\":\"JL001\",\"location\":\"x\",\
                 \"message\":\"m\",\"severity\":\"fatal\"}]}"
            )
            .is_err(),
            "unknown severity"
        );
        assert!(LintReport::from_json("not json").is_err());
    }

    #[test]
    fn counts_and_codes() {
        let r = sample();
        assert!(r.has_errors());
        assert!(r.has_code("JL001"));
        assert!(!r.has_code("JL999"));
        assert_eq!(r.count(Severity::Warning), 1);
    }
}
