//! Cross-tenant conflict analysis (JL3xx): a multi-program static pass
//! over many concurrent LAI intents sharing one network.
//!
//! The single-program layers assume one operator at a time; in a
//! multi-tenant deployment independently-authored intents can each verify
//! in isolation and still fight each other the moment both are pushed.
//! This module takes a set of `(tenant, program)` pairs and statically
//! certifies — with the same tree encoding + CDCL solver the rule layer
//! uses — that the tenants do not contest any flow space:
//!
//! - **JL301** (warning, solver-certified): two tenants request *opposite*
//!   reachability (`isolate` vs `open`) for overlapping endpoint patterns
//!   and intersecting traffic regions. The solver independently re-proves
//!   the overlap on the header encoding and every finding carries a
//!   concrete **witness packet** — one both intents classify differently —
//!   plus the pair of source spans (`tenant:control:index` on each side).
//! - **JL302** (note): cross-tenant subsumption/shadowing — one tenant's
//!   clause repeats (or is entirely covered by) another tenant's clause
//!   with the same verb.
//! - **JL303** (note): priority-resolution previews. Given a tenant
//!   priority order, each contested region reports which tenant's intent
//!   wins, and a summary note states whether the merge is *total* (every
//!   contested region resolved).
//! - **JL304** (warning): a contested region between tenants with no
//!   relative priority — the merged policy is ambiguous there and the
//!   merge is not total.
//!
//! Determinism contract: tenants are analysed in name order (input order
//! is irrelevant), solver certification fans out over
//! [`jinjing_par::Pool`] with input-order folding, and the emitted report
//! is byte-identical at every thread count.

use crate::diag::{record, Certainty, Diagnostic, LintReport, Severity};
use crate::intent::{control_summary, header_set, pats_cover, pats_overlap, verbs_conflict};
use crate::LintConfig;
use jinjing_acl::{Packet, PacketSet};
use jinjing_lai::{ControlVerb, Program};
use jinjing_par::Pool;
use jinjing_solver::{CircuitBuilder, HeaderVars, SolveResult};

/// One tenant's intent: a name (unique per run) and its validated LAI
/// program.
#[derive(Debug, Clone)]
pub struct TenantIntent {
    /// Tenant name, used for attribution, spans, and priority resolution.
    pub tenant: String,
    /// The tenant's validated program.
    pub program: Program,
}

impl TenantIntent {
    /// Bundle a tenant name with its program.
    pub fn new(tenant: impl Into<String>, program: Program) -> TenantIntent {
        TenantIntent {
            tenant: tenant.into(),
            program,
        }
    }
}

/// A certified cross-tenant contradiction: two control statements from
/// different tenants requesting opposite reachability on an overlapping
/// flow space. Tenant `a` always sorts before tenant `b` by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// First tenant (lexicographically smaller name).
    pub tenant_a: String,
    /// Index of the conflicting control statement in tenant `a`'s program.
    pub stmt_a: usize,
    /// Tenant `a`'s verb on the contested region.
    pub verb_a: ControlVerb,
    /// Second tenant.
    pub tenant_b: String,
    /// Index of the conflicting control statement in tenant `b`'s program.
    pub stmt_b: usize,
    /// Tenant `b`'s verb on the contested region.
    pub verb_b: ControlVerb,
    /// The contested flow space (intersection of both traffic regions).
    pub region: PacketSet,
    /// A concrete packet inside the contested region — one the two intents
    /// classify differently (`verb_a` vs `verb_b`).
    pub witness: Packet,
    /// `true` when the CDCL solver re-proved the overlap on the header
    /// encoding (and decoded [`Conflict::witness`] from its model);
    /// `false` when the witness came from the set algebra only.
    pub certified: bool,
}

impl Conflict {
    /// Tenant `a`'s source span, `tenant:control:index`.
    pub fn span_a(&self) -> String {
        format!("{}:control:{}", self.tenant_a, self.stmt_a)
    }

    /// Tenant `b`'s source span, `tenant:control:index`.
    pub fn span_b(&self) -> String {
        format!("{}:control:{}", self.tenant_b, self.stmt_b)
    }

    /// The diagnostic location carrying both source spans.
    pub fn location(&self) -> String {
        format!("multi:{}<->{}", self.span_a(), self.span_b())
    }
}

/// Indices into `tenants`, sorted by tenant name so the analysis (and its
/// output) does not depend on input order.
fn name_order(tenants: &[TenantIntent]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tenants.len()).collect();
    order.sort_by(|&x, &y| {
        tenants[x]
            .tenant
            .cmp(&tenants[y].tenant)
            .then_with(|| x.cmp(&y))
    });
    order
}

/// Ask the CDCL solver to independently prove the two traffic regions
/// overlap: assert membership in *both* (not in their pre-computed
/// intersection), solve, and decode the model into a witness packet.
fn certify_overlap(a: &PacketSet, b: &PacketSet, obs: &jinjing_obs::Collector) -> Option<Packet> {
    let _span = obs.span("lint.multi.certify");
    let mut c = CircuitBuilder::new();
    c.set_obs(obs.clone());
    let h = HeaderVars::new(&mut c);
    let in_a = h.in_set(&mut c, a);
    let in_b = h.in_set(&mut c, b);
    c.assert(in_a);
    c.assert(in_b);
    match c.solve() {
        SolveResult::Sat => Some(h.decode(&c)),
        _ => None,
    }
}

/// Find every cross-tenant contradiction: for each pair of tenants (in
/// name order) and each pair of their control statements, a conflict is a
/// pair with opposite verbs (`isolate` vs `open`), overlapping endpoint
/// patterns on both sides, and intersecting traffic regions. With
/// [`LintConfig::solver_confirm`] the overlap is re-proved by the solver
/// (fanned out over [`LintConfig::threads`] workers, deterministically);
/// otherwise the witness is sampled from the set algebra. Either way every
/// returned conflict carries a witness packet.
pub fn cross_conflicts(tenants: &[TenantIntent], cfg: &LintConfig) -> Vec<Conflict> {
    let span = cfg.obs.span("lint.multi.conflicts");
    let order = name_order(tenants);
    // Candidate generation is pure set algebra — cheap and serial.
    struct Cand {
        a: usize,
        sa: usize,
        b: usize,
        sb: usize,
        set_a: PacketSet,
        set_b: PacketSet,
    }
    let mut cands: Vec<Cand> = Vec::new();
    let mut pairs = 0u64;
    for (xi, &x) in order.iter().enumerate() {
        for &y in &order[xi + 1..] {
            let (ta, tb) = (&tenants[x], &tenants[y]);
            for (i, ca) in ta.program.controls.iter().enumerate() {
                for (j, cb) in tb.program.controls.iter().enumerate() {
                    pairs += 1;
                    if !verbs_conflict(ca.verb, cb.verb) {
                        continue;
                    }
                    if !(pats_overlap(&ca.from, &cb.from) && pats_overlap(&ca.to, &cb.to)) {
                        continue;
                    }
                    let set_a = header_set(&ca.header);
                    let set_b = header_set(&cb.header);
                    if !set_a.intersects(&set_b) {
                        continue;
                    }
                    cands.push(Cand {
                        a: x,
                        sa: i,
                        b: y,
                        sb: j,
                        set_a,
                        set_b,
                    });
                }
            }
        }
    }
    cfg.obs.counter_add("lint.multi.stmt_pairs", pairs);
    // Certification is solver work — fan it out. par_map folds results in
    // input order, so the conflict list (and everything derived from it)
    // is identical at every thread count.
    let pool = Pool::new(cfg.threads);
    let witnesses: Vec<Option<(Packet, bool)>> = pool.par_map(&cands, |_i, cand| {
        if cfg.solver_confirm {
            certify_overlap(&cand.set_a, &cand.set_b, &cfg.obs).map(|w| (w, true))
        } else {
            cand.set_a.intersect(&cand.set_b).sample().map(|w| (w, false))
        }
    });
    let mut out = Vec::with_capacity(cands.len());
    for (cand, w) in cands.iter().zip(witnesses) {
        // A candidate the solver cannot realize is dropped (defensive: the
        // set algebra already proved the intersection non-empty).
        let Some((witness, certified)) = w else {
            continue;
        };
        let (ta, tb) = (&tenants[cand.a], &tenants[cand.b]);
        out.push(Conflict {
            tenant_a: ta.tenant.clone(),
            stmt_a: cand.sa,
            verb_a: ta.program.controls[cand.sa].verb,
            tenant_b: tb.tenant.clone(),
            stmt_b: cand.sb,
            verb_b: tb.program.controls[cand.sb].verb,
            region: cand.set_a.intersect(&cand.set_b),
            witness,
            certified,
        });
    }
    span.finish();
    out
}

/// Past-tense verb for witness prose ("isolated by `alpha`").
fn verb_past(v: ControlVerb) -> &'static str {
    match v {
        ControlVerb::Isolate => "isolated",
        ControlVerb::Open => "opened",
        ControlVerb::Maintain => "maintained",
    }
}

/// Lint a set of tenant intents against each other.
///
/// Emits the JL301–JL304 family described in the module docs. `priority`
/// is the tenant priority order (earlier wins); an empty slice means no
/// order was given, so every contested region is unresolved. The caller
/// is responsible for per-tenant single-program lint
/// ([`crate::lint_program`]) — this pass only reports *cross*-tenant
/// findings.
pub fn lint_multi(tenants: &[TenantIntent], priority: &[String], cfg: &LintConfig) -> LintReport {
    let span = cfg.obs.span("lint.multi");
    let mut report = LintReport::new();
    cfg.obs
        .counter_add("lint.multi.tenants", tenants.len() as u64);
    let order = name_order(tenants);

    // JL302: cross-tenant subsumption / duplication, same verb only.
    for (xi, &x) in order.iter().enumerate() {
        for &y in &order[xi + 1..] {
            let (ta, tb) = (&tenants[x], &tenants[y]);
            for (i, ca) in ta.program.controls.iter().enumerate() {
                for (j, cb) in tb.program.controls.iter().enumerate() {
                    if ca.verb != cb.verb {
                        continue;
                    }
                    let a_covers_b = pats_cover(&ca.from, &cb.from)
                        && pats_cover(&ca.to, &cb.to)
                        && header_set(&cb.header).is_subset(&header_set(&ca.header));
                    let b_covers_a = pats_cover(&cb.from, &ca.from)
                        && pats_cover(&cb.to, &ca.to)
                        && header_set(&ca.header).is_subset(&header_set(&cb.header));
                    let loc = format!(
                        "multi:{}:control:{i}<->{}:control:{j}",
                        ta.tenant, tb.tenant
                    );
                    let d = if a_covers_b && b_covers_a {
                        Diagnostic::new(
                            "JL302",
                            Severity::Note,
                            loc,
                            format!(
                                "tenants `{}` and `{}` declare duplicate controls: {i} `{}` and {j} `{}` are equivalent",
                                ta.tenant,
                                tb.tenant,
                                control_summary(ca),
                                control_summary(cb)
                            ),
                        )
                        .with_tenant(format!("{},{}", ta.tenant, tb.tenant))
                        .with_suggestion("move the shared policy into one tenant's intent")
                    } else if a_covers_b {
                        Diagnostic::new(
                            "JL302",
                            Severity::Note,
                            loc,
                            format!(
                                "tenant `{}` control {j} `{}` is subsumed by tenant `{}` control {i} `{}`",
                                tb.tenant,
                                control_summary(cb),
                                ta.tenant,
                                control_summary(ca)
                            ),
                        )
                        .with_tenant(tb.tenant.clone())
                        .with_suggestion("delete the narrower statement or narrow the wider one")
                    } else if b_covers_a {
                        Diagnostic::new(
                            "JL302",
                            Severity::Note,
                            loc,
                            format!(
                                "tenant `{}` control {i} `{}` is subsumed by tenant `{}` control {j} `{}`",
                                ta.tenant,
                                control_summary(ca),
                                tb.tenant,
                                control_summary(cb)
                            ),
                        )
                        .with_tenant(ta.tenant.clone())
                        .with_suggestion("delete the narrower statement or narrow the wider one")
                    } else {
                        continue;
                    };
                    cfg.obs.counter_add("lint.multi.subsumed", 1);
                    record(&cfg.obs, &d);
                    report.push(d);
                }
            }
        }
    }

    // JL301 + the JL303/JL304 priority preview.
    let conflicts = cross_conflicts(tenants, cfg);
    cfg.obs
        .counter_add("lint.multi.conflicts", conflicts.len() as u64);
    let rank = |t: &str| priority.iter().position(|p| p == t);
    let (mut resolved, mut unresolved) = (0u64, 0u64);
    for c in &conflicts {
        let d = Diagnostic::new(
            "JL301",
            Severity::Warning,
            c.location(),
            format!(
                "tenant `{}` control {} `{}` and tenant `{}` control {} `{}` request opposite \
                 reachability on an overlapping flow space ({} packet(s) contested); witness \
                 packet {} is {} by `{}` but {} by `{}`",
                c.tenant_a,
                c.stmt_a,
                control_summary(&tenants[order_index(tenants, &c.tenant_a)].program.controls[c.stmt_a]),
                c.tenant_b,
                c.stmt_b,
                control_summary(&tenants[order_index(tenants, &c.tenant_b)].program.controls[c.stmt_b]),
                c.region.count(),
                c.witness,
                verb_past(c.verb_a),
                c.tenant_a,
                verb_past(c.verb_b),
                c.tenant_b
            ),
        )
        .with_certainty(if c.certified {
            Certainty::SolverConfirmed
        } else {
            Certainty::Heuristic
        })
        .with_tenant(format!("{},{}", c.tenant_a, c.tenant_b))
        .with_suggestion(
            "partition the contested flow space between the tenants or give --priority an order that covers both",
        );
        if c.certified {
            cfg.obs.counter_add("lint.multi.certified", 1);
        }
        record(&cfg.obs, &d);
        report.push(d);

        match (rank(&c.tenant_a), rank(&c.tenant_b)) {
            (Some(ra), Some(rb)) if ra != rb => {
                resolved += 1;
                let (winner, wr, wverb) = if ra < rb {
                    (&c.tenant_a, ra, c.verb_a)
                } else {
                    (&c.tenant_b, rb, c.verb_b)
                };
                let d = Diagnostic::new(
                    "JL303",
                    Severity::Note,
                    c.location(),
                    format!(
                        "priority preview: tenant `{winner}` (priority {wr}) wins the contested \
                         region — the merged policy {}s it ({} packet(s))",
                        wverb,
                        c.region.count()
                    ),
                )
                .with_tenant(winner.clone());
                record(&cfg.obs, &d);
                report.push(d);
            }
            _ => {
                unresolved += 1;
                let d = Diagnostic::new(
                    "JL304",
                    Severity::Warning,
                    c.location(),
                    format!(
                        "contested region between tenants `{}` and `{}` has no relative priority; \
                         the merged policy is ambiguous here",
                        c.tenant_a, c.tenant_b
                    ),
                )
                .with_tenant(format!("{},{}", c.tenant_a, c.tenant_b))
                .with_suggestion("list both tenants in the --priority order");
                record(&cfg.obs, &d);
                report.push(d);
            }
        }
    }
    cfg.obs.counter_add("lint.multi.resolved", resolved);
    cfg.obs.counter_add("lint.multi.unresolved", unresolved);
    if !conflicts.is_empty() {
        let total = unresolved == 0;
        let d = Diagnostic::new(
            "JL303",
            if total { Severity::Note } else { Severity::Warning },
            "multi:priority",
            format!(
                "merge preview: {} contested region(s), {resolved} resolved by the priority \
                 order, {unresolved} unresolved — the merge is {}",
                conflicts.len(),
                if total { "total" } else { "not total" }
            ),
        );
        record(&cfg.obs, &d);
        report.push(d);
    }
    span.finish();
    report
}

/// Index of the tenant with the given name (names are unique per run).
fn order_index(tenants: &[TenantIntent], name: &str) -> usize {
    tenants
        .iter()
        .position(|t| t.tenant == name)
        .expect("conflict names a tenant from this run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_lai::{parse_program, validate};

    fn tenant(name: &str, src: &str) -> TenantIntent {
        TenantIntent::new(name, validate(parse_program(src).unwrap()).unwrap())
    }

    const ISOLATE: &str = "scope A:*, B:*, D:*\ncontrol A:* -> D:* isolate dst 1.0.0.0/8\ncheck\n";
    const OPEN: &str = "scope A:*, D:*\ncontrol A:1 -> D:* open dst 1.2.0.0/16\ncheck\n";
    const DISJOINT: &str = "scope B:*, C:*\ncontrol B:* -> C:* isolate dst 2.0.0.0/8\ncheck\n";

    #[test]
    fn conflicting_tenants_yield_a_certified_witness() {
        let ts = [tenant("alpha", ISOLATE), tenant("beta", OPEN)];
        let cs = cross_conflicts(&ts, &LintConfig::default());
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert!(c.certified);
        assert_eq!((c.tenant_a.as_str(), c.tenant_b.as_str()), ("alpha", "beta"));
        assert_eq!(c.location(), "multi:alpha:control:0<->beta:control:0");
        // The witness lies in both traffic regions, which the two verbs
        // classify differently.
        assert!(c.region.contains(&c.witness));
        assert!(verbs_conflict(c.verb_a, c.verb_b));
    }

    #[test]
    fn conflicts_are_input_order_independent() {
        let a = [tenant("alpha", ISOLATE), tenant("beta", OPEN)];
        let b = [tenant("beta", OPEN), tenant("alpha", ISOLATE)];
        let cfg = LintConfig::default();
        assert_eq!(cross_conflicts(&a, &cfg), cross_conflicts(&b, &cfg));
        let mut ra = lint_multi(&a, &[], &cfg);
        let mut rb = lint_multi(&b, &[], &cfg);
        ra.sort();
        rb.sort();
        assert_eq!(ra.to_json(), rb.to_json());
    }

    #[test]
    fn heuristic_mode_still_carries_a_witness() {
        let cfg = LintConfig {
            solver_confirm: false,
            ..LintConfig::default()
        };
        let ts = [tenant("alpha", ISOLATE), tenant("beta", OPEN)];
        let cs = cross_conflicts(&ts, &cfg);
        assert_eq!(cs.len(), 1);
        assert!(!cs[0].certified);
        assert!(cs[0].region.contains(&cs[0].witness));
    }

    #[test]
    fn disjoint_tenants_are_clean() {
        let ts = [tenant("alpha", ISOLATE), tenant("gamma", DISJOINT)];
        let r = lint_multi(&ts, &[], &LintConfig::default());
        assert!(r.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn priority_resolves_the_merge() {
        let ts = [tenant("alpha", ISOLATE), tenant("beta", OPEN)];
        let pri = vec!["alpha".to_string(), "beta".to_string()];
        let mut r = lint_multi(&ts, &pri, &LintConfig::default());
        r.sort();
        assert!(r.has_code("JL301"));
        assert!(r.has_code("JL303"));
        assert!(!r.has_code("JL304"));
        let summary = r
            .diagnostics()
            .iter()
            .find(|d| d.location == "multi:priority")
            .unwrap();
        assert!(summary.message.contains("the merge is total"), "{}", summary.message);
        let preview = r
            .diagnostics()
            .iter()
            .find(|d| d.code == "JL303" && d.location != "multi:priority")
            .unwrap();
        assert!(preview.message.contains("`alpha` (priority 0) wins"));
    }

    #[test]
    fn missing_priority_leaves_the_merge_partial() {
        let ts = [tenant("alpha", ISOLATE), tenant("beta", OPEN)];
        let pri = vec!["alpha".to_string()]; // beta unranked
        let r = lint_multi(&ts, &pri, &LintConfig::default());
        assert!(r.has_code("JL304"), "{}", r.render_text());
        let summary = r
            .diagnostics()
            .iter()
            .find(|d| d.location == "multi:priority")
            .unwrap();
        assert!(summary.message.contains("not total"));
        assert_eq!(summary.severity, Severity::Warning);
    }

    #[test]
    fn cross_tenant_subsumption_is_jl302() {
        let wide = "scope A:*, D:*\ncontrol A:* -> D:* isolate dst 1.0.0.0/8\ncheck\n";
        let narrow = "scope A:*, D:*\ncontrol A:1 -> D:2 isolate dst 1.2.0.0/16\ncheck\n";
        let ts = [tenant("alpha", wide), tenant("beta", narrow)];
        let r = lint_multi(&ts, &[], &LintConfig::default());
        let d = r.diagnostics().iter().find(|d| d.code == "JL302").unwrap();
        assert!(d.message.contains("`beta` control 0"), "{}", d.message);
        assert_eq!(d.tenant.as_deref(), Some("beta"));
        assert!(!r.has_code("JL301"));
    }

    #[test]
    fn duplicate_controls_are_reported_once() {
        let ts = [tenant("alpha", ISOLATE), tenant("beta", ISOLATE)];
        let r = lint_multi(&ts, &[], &LintConfig::default());
        let dups: Vec<_> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "JL302")
            .collect();
        assert_eq!(dups.len(), 1);
        assert!(dups[0].message.contains("duplicate"), "{}", dups[0].message);
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let ts = [
            tenant("alpha", ISOLATE),
            tenant("beta", OPEN),
            tenant("gamma", DISJOINT),
            tenant(
                "delta",
                "scope A:*, D:*\ncontrol A:* -> D:1 open dst 1.0.0.0/9\ncheck\n",
            ),
        ];
        let render = |threads: usize| {
            let cfg = LintConfig {
                threads,
                ..LintConfig::default()
            };
            let mut r = lint_multi(&ts, &["alpha".to_string(), "delta".to_string()], &cfg);
            r.sort();
            r.to_json()
        };
        let serial = render(1);
        assert_eq!(serial, render(4));
        assert_eq!(serial, render(8));
    }
}
