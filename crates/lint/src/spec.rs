//! Spec-level analysis (JL201/JL202) over *raw* JSON specifications, before
//! any network is built.
//!
//! [`jinjing_net::spec::NetworkSpec::build`] fails fast on the first
//! problem; the linter instead walks the whole spec and collects **every**
//! dangling reference and invalid binding, so an operator fixes the file in
//! one round trip instead of one error per attempt.

use crate::diag::{record, Diagnostic, LintReport, Severity};
use crate::LintConfig;
use jinjing_acl::parse::{parse_acl, parse_prefix};
use jinjing_net::spec::{AclConfigSpec, NetworkSpec};
use std::collections::{BTreeMap, BTreeSet};

fn dangling(loc: String, message: String) -> Diagnostic {
    Diagnostic::new("JL201", Severity::Error, loc, message)
        .with_suggestion("fix the reference or declare the missing device/interface")
}

fn invalid(loc: String, message: String) -> Diagnostic {
    Diagnostic::new("JL202", Severity::Error, loc, message)
}

/// Lint a network spec and ACL spec pair without building them.
///
/// Emits:
/// - **JL201** (error) — dangling references: links, announcements, routes,
///   traffic-matrix entries, or ACL slots naming a device or interface the
///   spec never declares (or malformed `device:iface` references).
/// - **JL202** (error) — invalid bindings and values: duplicate
///   device/interface names, an interface in more than one link, an
///   announcement on an internal (linked) interface, a route whose output
///   interface belongs to another device, bad directions, duplicate ACL
///   slots, and unparsable prefixes or ACL text.
///
/// Every problem in the pair is reported; `build()` would stop at the
/// first.
pub fn lint_specs(net: &NetworkSpec, acls: &AclConfigSpec, cfg: &LintConfig) -> LintReport {
    let span = cfg.obs.span("lint.spec");
    let mut report = LintReport::new();
    let mut push = |report: &mut LintReport, d: Diagnostic| {
        record(&cfg.obs, &d);
        report.push(d);
    };

    // Symbol tables (+ duplicate detection).
    let mut devices: BTreeSet<&str> = BTreeSet::new();
    let mut ifaces: BTreeMap<String, &str> = BTreeMap::new(); // "dev:iface" -> dev
    for (k, d) in net.devices.iter().enumerate() {
        if !devices.insert(&d.name) {
            push(
                &mut report,
                invalid(
                    format!("spec:devices[{k}]"),
                    format!("duplicate device name {:?}", d.name),
                ),
            );
        }
        for i in &d.interfaces {
            let full = format!("{}:{}", d.name, i);
            if ifaces.insert(full.clone(), &d.name).is_some() {
                push(
                    &mut report,
                    invalid(
                        format!("spec:devices[{k}]"),
                        format!("duplicate interface {full:?}"),
                    ),
                );
            }
        }
    }

    // Links: both ends must exist; an interface joins at most one link.
    let mut linked: BTreeSet<&str> = BTreeSet::new();
    for (k, (a, b)) in net.links.iter().enumerate() {
        for end in [a, b] {
            if !ifaces.contains_key(end) {
                push(
                    &mut report,
                    dangling(
                        format!("spec:links[{k}]"),
                        format!("link references unknown interface {end:?}"),
                    ),
                );
            } else if !linked.insert(end) {
                push(
                    &mut report,
                    invalid(
                        format!("spec:links[{k}]"),
                        format!("interface {end:?} appears in more than one link"),
                    ),
                );
            }
        }
    }

    // Announcements: known, *external* (unlinked) interface, parsable
    // prefix.
    for (k, a) in net.announcements.iter().enumerate() {
        let loc = || format!("spec:announcements[{k}]");
        if !ifaces.contains_key(&a.interface) {
            push(
                &mut report,
                dangling(
                    loc(),
                    format!(
                        "announcement references unknown interface {:?}",
                        a.interface
                    ),
                ),
            );
        } else if linked.contains(a.interface.as_str()) {
            push(
                &mut report,
                invalid(
                    loc(),
                    format!(
                        "announcement binds to internal (linked) interface {:?}; announcements belong on border interfaces",
                        a.interface
                    ),
                ),
            );
        }
        if let Err(e) = parse_prefix(&a.prefix) {
            push(
                &mut report,
                invalid(loc(), format!("unparsable prefix {:?}: {e}", a.prefix)),
            );
        }
    }

    // Static routes: known device, known output interface owned by that
    // device, parsable prefix.
    for (k, r) in net.routes.iter().enumerate() {
        let loc = || format!("spec:routes[{k}]");
        if !devices.contains(r.device.as_str()) {
            push(
                &mut report,
                dangling(
                    loc(),
                    format!("route references unknown device {:?}", r.device),
                ),
            );
        }
        match ifaces.get(&r.out) {
            None => push(
                &mut report,
                dangling(
                    loc(),
                    format!("route references unknown output interface {:?}", r.out),
                ),
            ),
            Some(owner) if devices.contains(r.device.as_str()) && *owner != r.device => push(
                &mut report,
                invalid(
                    loc(),
                    format!(
                        "route output {:?} belongs to device {owner:?}, not {:?}",
                        r.out, r.device
                    ),
                ),
            ),
            Some(_) => {}
        }
        if let Err(e) = parse_prefix(&r.prefix) {
            push(
                &mut report,
                invalid(loc(), format!("unparsable prefix {:?}: {e}", r.prefix)),
            );
        }
    }

    // Traffic matrix: known interface, parsable prefixes.
    for (k, e) in net.entering.iter().enumerate() {
        let loc = || format!("spec:entering[{k}]");
        if !ifaces.contains_key(&e.interface) {
            push(
                &mut report,
                dangling(
                    loc(),
                    format!(
                        "traffic-matrix entry references unknown interface {:?}",
                        e.interface
                    ),
                ),
            );
        }
        for p in &e.dst_prefixes {
            if let Err(err) = parse_prefix(p) {
                push(
                    &mut report,
                    invalid(loc(), format!("unparsable prefix {p:?}: {err}")),
                );
            }
        }
    }

    // ACL slots: known interface, valid direction, parsable ACL text, no
    // duplicate (interface, direction) bindings.
    let mut bound: BTreeSet<(String, String)> = BTreeSet::new();
    for (k, s) in acls.slots.iter().enumerate() {
        let loc = || format!("acls:slots[{k}]");
        if !ifaces.contains_key(&s.interface) {
            push(
                &mut report,
                dangling(
                    loc(),
                    format!("ACL slot references unknown interface {:?}", s.interface),
                ),
            );
        }
        if s.direction != "in" && s.direction != "out" {
            push(
                &mut report,
                invalid(
                    loc(),
                    format!("direction must be \"in\" or \"out\", got {:?}", s.direction),
                ),
            );
        }
        if !bound.insert((s.interface.clone(), s.direction.clone())) {
            push(
                &mut report,
                invalid(
                    loc(),
                    format!(
                        "duplicate ACL binding for {}-{} (an earlier slot already configured it)",
                        s.interface, s.direction
                    ),
                ),
            );
        }
        if let Err(e) = parse_acl(&s.acl.join("\n")) {
            push(
                &mut report,
                invalid(loc(), format!("unparsable ACL at {}: {e}", s.interface)),
            );
        }
    }

    span.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_net::spec::{AclSlotSpec, AnnouncementSpec, DeviceSpec, EnteringSpec, RouteSpec};

    fn base() -> NetworkSpec {
        NetworkSpec {
            devices: vec![
                DeviceSpec {
                    name: "A".into(),
                    interfaces: vec!["0".into(), "1".into()],
                },
                DeviceSpec {
                    name: "B".into(),
                    interfaces: vec!["0".into(), "1".into()],
                },
            ],
            links: vec![("A:1".into(), "B:0".into())],
            announcements: vec![AnnouncementSpec {
                prefix: "1.0.0.0/8".into(),
                interface: "B:1".into(),
            }],
            routes: Vec::new(),
            entering: vec![EnteringSpec {
                interface: "A:0".into(),
                dst_prefixes: vec!["1.0.0.0/8".into()],
            }],
        }
    }

    fn acl_slot(interface: &str, dir: &str) -> AclSlotSpec {
        AclSlotSpec {
            interface: interface.into(),
            direction: dir.into(),
            acl: vec!["deny dst 1.2.0.0/16".into(), "default permit".into()],
        }
    }

    fn lint(net: &NetworkSpec, acls: &AclConfigSpec) -> LintReport {
        let mut r = lint_specs(net, acls, &LintConfig::default());
        r.sort();
        r
    }

    #[test]
    fn clean_specs_are_clean() {
        let acls = AclConfigSpec {
            slots: vec![acl_slot("A:0", "in")],
        };
        let r = lint(&base(), &acls);
        assert!(r.is_empty(), "{:?}", r.diagnostics());
    }

    #[test]
    fn all_dangling_references_are_collected_at_once() {
        let mut net = base();
        net.links.push(("A:9".into(), "B:9".into()));
        net.announcements.push(AnnouncementSpec {
            prefix: "2.0.0.0/8".into(),
            interface: "C:0".into(),
        });
        net.entering.push(EnteringSpec {
            interface: "Z:0".into(),
            dst_prefixes: vec!["3.0.0.0/8".into()],
        });
        let acls = AclConfigSpec {
            slots: vec![acl_slot("A:7", "in")],
        };
        let r = lint(&net, &acls);
        // build() would stop at the first; the linter reports all five.
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "JL201").count(),
            5
        );
        assert!(r.has_errors());
    }

    #[test]
    fn invalid_bindings_are_jl202() {
        let mut net = base();
        net.routes.push(RouteSpec {
            device: "A".into(),
            prefix: "9.0.0.0/8".into(),
            out: "B:1".into(), // wrong device
        });
        net.announcements.push(AnnouncementSpec {
            prefix: "4.0.0.0/8".into(),
            interface: "A:1".into(), // internal (linked)
        });
        let acls = AclConfigSpec {
            slots: vec![
                acl_slot("A:0", "in"),
                acl_slot("A:0", "in"), // duplicate binding
                acl_slot("B:0", "sideways"),
            ],
        };
        let r = lint(&net, &acls);
        let jl202: Vec<&str> = r
            .diagnostics()
            .iter()
            .filter(|d| d.code == "JL202")
            .map(|d| d.location.as_str())
            .collect();
        assert_eq!(
            jl202,
            vec![
                "acls:slots[1]",
                "acls:slots[2]",
                "spec:announcements[1]",
                "spec:routes[0]"
            ]
        );
    }

    #[test]
    fn unparsable_text_is_reported_per_site() {
        let mut net = base();
        net.announcements[0].prefix = "not-a-prefix".into();
        let acls = AclConfigSpec {
            slots: vec![AclSlotSpec {
                interface: "A:0".into(),
                direction: "in".into(),
                acl: vec!["frobnicate everything".into()],
            }],
        };
        let r = lint(&net, &acls);
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "JL202").count(),
            2
        );
    }

    #[test]
    fn duplicate_names_are_jl202() {
        let mut net = base();
        net.devices.push(DeviceSpec {
            name: "A".into(),
            interfaces: vec!["0".into()],
        });
        let r = lint(&net, &AclConfigSpec { slots: Vec::new() });
        // Duplicate device A and (via it) duplicate interface A:0.
        assert_eq!(
            r.diagnostics().iter().filter(|d| d.code == "JL202").count(),
            2
        );
    }
}
