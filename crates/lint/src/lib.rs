#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # jinjing-lint
//!
//! A solver-backed static analysis pass over everything Jinjing already
//! parses: ACLs, LAI intent programs, and network/ACL specifications. The
//! check/fix/generate pipeline only speaks up after an update is proposed;
//! the classic defects behind the paper's war stories — shadowed rules,
//! conflicting operator intents, drifted configs — are *static* and can be
//! caught before any update plan is computed.
//!
//! Diagnostics follow rustc's conventions: a stable code, a severity, a
//! location, a message, and a suggested fix, rendered as text or as
//! deterministic (byte-stable) JSON. Three analysis layers:
//!
//! | layer | codes | checks |
//! |-------|-------|--------|
//! | rule ([`rules`]) | `JL001`–`JL004` | full shadow (solver-confirmed), partial shadow, redundancy, action conflicts |
//! | intent ([`intent`]) | `JL101`–`JL104` | contradictory controls, vacuous clauses, subsumed clauses, unused ACL defs |
//! | network ([`network`], [`spec`]) | `JL201`–`JL203` | dangling references, invalid bindings, silent-allow paths |
//! | multi-tenant ([`multi`]) | `JL301`–`JL304` | cross-tenant conflicts (solver-certified with witness packets), cross-tenant subsumption, priority previews, unresolved contests |
//!
//! The rule layer reuses the seed's substrates end to end: candidate search
//! through the §5.5 [`jinjing_acl::rtree::RuleTree`], exact decisions from
//! the packet-set algebra, and full-shadow certification through the CDCL
//! solver on the balanced-tree ACL encoding
//! ([`jinjing_solver::aclenc::Encoding::Tree`]).

pub mod diag;
pub mod intent;
pub mod multi;
pub mod network;
pub mod rules;
pub mod sarif;
#[cfg(feature = "spec")]
pub mod spec;

pub use crate::diag::{Certainty, Diagnostic, LintReport, Severity, SCHEMA_VERSION};
pub use crate::intent::lint_program;
pub use crate::multi::{cross_conflicts, lint_multi, Conflict, TenantIntent};
pub use crate::network::lint_config;
pub use crate::rules::lint_acl;
pub use crate::sarif::to_sarif;
#[cfg(feature = "spec")]
pub use crate::spec::lint_specs;

/// Tunables for a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Re-prove every full-shadow finding (JL001) with the CDCL solver on
    /// the balanced-tree encoding, upgrading its certainty to
    /// [`Certainty::SolverConfirmed`]. On by default; turn off for raw
    /// throughput.
    pub solver_confirm: bool,
    /// Cap on reported opposite-action overlap pairs (JL004) per ACL,
    /// keeping the output readable on rule sets with systematic overlap.
    /// The kept pairs are the largest by exact overlap volume.
    pub max_conflicts_per_acl: usize,
    /// Worker threads for the cross-tenant certification fan-out
    /// ([`multi::cross_conflicts`]): `0` defers to `JINJING_THREADS` (then
    /// serial), exactly like [`jinjing_par::Pool::new`]. Output bytes are
    /// identical at every thread count.
    pub threads: usize,
    /// The run's observability collector: `lint.*` spans and counters land
    /// here.
    pub obs: jinjing_obs::Collector,
    /// Restrict this run to the work owned by one shard of a
    /// consistent-hash partition. Per-slot analysis is keyed by slot name
    /// ([`jinjing_acl::shard::ShardSpec::owns_str`]); partition-global
    /// passes (the JL203 silent-allow sweep, intent-program lint) run only
    /// on the primary shard so they are emitted exactly once. `None` — the
    /// default — lints everything.
    pub shard: Option<jinjing_acl::shard::ShardSpec>,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            solver_confirm: true,
            max_conflicts_per_acl: 5,
            threads: 0,
            obs: jinjing_obs::Collector::default(),
            shard: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let cfg = LintConfig::default();
        assert!(cfg.solver_confirm);
        assert_eq!(cfg.max_conflicts_per_acl, 5);
        assert_eq!(cfg.threads, 0);
    }

    #[test]
    fn reports_from_all_layers_merge_and_sort_deterministically() {
        let cfg = LintConfig::default();
        let acl = jinjing_acl::AclBuilder::default_permit()
            .deny_dst("1.0.0.0/8")
            .deny_dst("1.2.0.0/16")
            .build();
        let mut a = lint_acl("B:0-in", &acl, &cfg);
        let b = lint_acl("A:0-in", &acl, &cfg);
        a.merge(b);
        a.sort();
        let json1 = a.to_json();
        let locs: Vec<&str> = a
            .diagnostics()
            .iter()
            .map(|d| d.location.as_str())
            .collect();
        assert_eq!(locs, vec!["A:0-in:rule:1", "B:0-in:rule:1"]);
        // Byte-stable: rebuilding the same report renders identically.
        let mut c = lint_acl("A:0-in", &acl, &cfg);
        c.merge(lint_acl("B:0-in", &acl, &cfg));
        c.sort();
        assert_eq!(json1, c.to_json());
    }
}
