//! Network-level analysis (JL2xx) over a *built* network and its ACL
//! configuration: rule-level lint of every configured slot, plus the
//! silent-allow surface — traffic that crosses the whole scope without
//! traversing a single ACL.
//!
//! (The dangling-reference checks over raw JSON specs live in
//! [`crate::spec`], behind the `spec` feature, because a dangling reference
//! by definition prevents the network from being built at all.)

use crate::diag::{record, Diagnostic, LintReport, Severity};
use crate::rules::lint_acl;
use crate::LintConfig;
use jinjing_net::{AclConfig, Network, Scope};
use std::collections::BTreeSet;

/// Lint a built network + configuration.
///
/// Emits:
/// - All **JL0xx** rule-level findings for every configured slot (located
///   at `{device}:{iface}-{dir}:rule:{i}`).
/// - **JL203** (warning) — a path some entering traffic can take from an
///   ingress border interface to an egress border interface that traverses
///   *no configured ACL slot at all*: every packet the matrix admits there
///   is silently allowed. One finding per (ingress, egress) pair. The path
///   enumeration unions over the (possibly coarse) entering class, so this
///   is a sound over-approximation of the silent-allow surface.
pub fn lint_config(net: &Network, config: &AclConfig, cfg: &LintConfig) -> LintReport {
    let span = cfg.obs.span("lint.config");
    let mut report = LintReport::new();
    let topo = net.topology();

    // Rule-level lint of every configured slot, in deterministic slot
    // order. Under a shard spec each slot is linted by exactly the shard
    // that owns its name, so the per-shard reports partition this pass.
    for slot in config.slots() {
        if let Some(acl) = config.get(slot) {
            let name = format!("{}-{}", topo.iface_name(slot.iface), slot.dir);
            if cfg.shard.as_ref().map_or(true, |s| s.owns_str(&name)) {
                report.merge(lint_acl(&name, acl, cfg));
            }
        }
    }

    // JL203: silent-allow paths across the whole-network scope. A
    // network-wide pass: under a shard spec only the primary emits it,
    // so the merged report carries each finding exactly once.
    if cfg.shard.as_ref().is_some_and(|s| !s.is_primary()) {
        span.finish();
        return report;
    }
    let scope = Scope::whole(topo);
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (iface, traffic) in net.entering_traffic(&scope) {
        for path in net.paths_for_class(&scope, iface, &traffic) {
            if !config.configured_slots_on(&path).is_empty() {
                continue;
            }
            let ingress = topo.iface_name(path.ingress());
            let egress = topo.iface_name(path.egress());
            if !seen.insert((ingress.clone(), egress.clone())) {
                continue;
            }
            let d = Diagnostic::new(
                "JL203",
                Severity::Warning,
                format!("path:{ingress}->{egress}"),
                format!(
                    "traffic entering at {ingress} reaches {egress} along {} without traversing any ACL",
                    path.display(topo)
                ),
            )
            .with_suggestion(
                "attach an ACL to a slot on this path if the traffic must be controlled",
            );
            record(&cfg.obs, &d);
            report.push(d);
        }
    }

    span.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use jinjing_acl::{Acl, AclBuilder};
    use jinjing_net::{Dir, Slot, TopologyBuilder};

    /// A -0in-> A -1-> B -0-> B:1 out, with 1.0.0.0/8 announced behind B:1.
    fn chain() -> (Network, Slot, Slot) {
        let mut tb = TopologyBuilder::new();
        let a = tb.device("A");
        let a0 = tb.iface(a, "0");
        let a1 = tb.iface(a, "1");
        let b = tb.device("B");
        let b0 = tb.iface(b, "0");
        let b1 = tb.iface(b, "1");
        tb.link(a1, b0);
        let mut net = Network::new(tb.build());
        net.announce(jinjing_acl::parse::parse_prefix("1.0.0.0/8").unwrap(), b1);
        net.compute_routes();
        (
            net,
            Slot {
                iface: a0,
                dir: Dir::In,
            },
            Slot {
                iface: b1,
                dir: Dir::Out,
            },
        )
    }

    #[test]
    fn unguarded_path_is_jl203() {
        let (net, _, _) = chain();
        let config = AclConfig::new();
        let mut r = lint_config(&net, &config, &LintConfig::default());
        r.sort();
        let d = r.diagnostics().iter().find(|d| d.code == "JL203").unwrap();
        assert_eq!(d.location, "path:A:0->B:1");
        assert!(d.message.contains("without traversing any ACL"));
    }

    #[test]
    fn any_acl_on_the_path_silences_jl203() {
        let (net, ingress, _) = chain();
        let mut config = AclConfig::new();
        config.set(
            ingress,
            AclBuilder::default_permit().deny_dst("9.9.0.0/16").build(),
        );
        let r = lint_config(&net, &config, &LintConfig::default());
        assert!(!r.has_code("JL203"), "{:?}", r.diagnostics());
    }

    #[test]
    fn configured_slots_are_rule_linted_with_slot_locations() {
        let (net, ingress, _) = chain();
        let mut config = AclConfig::new();
        config.set(
            ingress,
            AclBuilder::default_permit()
                .deny_dst("1.0.0.0/8")
                .deny_dst("1.2.0.0/16")
                .build(),
        );
        let mut r = lint_config(&net, &config, &LintConfig::default());
        r.sort();
        let d = r.diagnostics().iter().find(|d| d.code == "JL001").unwrap();
        assert_eq!(d.location, "A:0-in:rule:1");
    }

    #[test]
    fn permit_all_slot_counts_as_an_acl() {
        // An explicitly configured (even if vacuous) ACL still means the
        // path is not *silently* allowed — the operator wrote something.
        let (net, ingress, _) = chain();
        let mut config = AclConfig::new();
        config.set(ingress, Acl::permit_all());
        let r = lint_config(&net, &config, &LintConfig::default());
        assert!(!r.has_code("JL203"));
    }
}
